//! End-to-end streaming detection sessions against a live server: the
//! wire protocol round trip, the in-session verb rules, the metrics
//! accounting, and drain/disconnect teardown.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gbd_core::params::SystemParams;
use gbd_engine::Engine;
use gbd_serve::{Json, ServeConfig, Server, ServerHandle};
use gbd_sim::config::SimConfig;
use gbd_sim::engine::run_trial;
use gbd_sim::reports::DetectionReport;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn boot() -> (String, ServerHandle, JoinHandle<std::io::Result<()>>) {
    let server =
        Server::bind(ServeConfig::default(), Arc::new(Engine::new())).expect("bind server");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Conn {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "connection closed mid-conversation");
        Json::parse(line.trim()).expect("response is JSON")
    }
}

fn u(json: &Json, key: &str) -> u64 {
    json.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing u64 `{key}` in {}", json.render()))
}

fn error_code(json: &Json) -> String {
    json.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("not an error response: {}", json.render()))
        .to_string()
}

/// The `results/time_to_detection.csv` scenario (M = 10, N = 240, k = 3,
/// seed 2008), same as the gbd-stream replay tests.
fn scenario() -> (SystemParams, SimConfig) {
    let params = SystemParams::paper_defaults()
        .with_m_periods(10)
        .with_n_sensors(240)
        .with_k(3);
    let config = SimConfig::new(params).with_seed(2008);
    (params, config)
}

fn report_json(report: &DetectionReport) -> Json {
    Json::obj(vec![
        ("sensor".to_string(), Json::from(report.sensor.0)),
        ("period".to_string(), Json::from(report.period)),
        ("x".to_string(), Json::from(report.position.x)),
        ("y".to_string(), Json::from(report.position.y)),
    ])
}

/// Renders a `report` verb carrying one period's worth of reports.
fn report_line(id: u64, reports: &[DetectionReport]) -> String {
    Json::obj(vec![
        ("id".to_string(), Json::from(id)),
        ("verb".to_string(), Json::from("report")),
        (
            "reports".to_string(),
            Json::Arr(reports.iter().map(report_json).collect()),
        ),
    ])
    .render()
}

const OPEN_LINE: &str =
    r#"{"id":1,"verb":"stream_open","params":{"n":240,"m":10,"k":3},"boundary":"torus"}"#;

#[test]
fn session_round_trip_replays_the_simulator() {
    let (params, config) = scenario();
    // A trial the simulator detects, so the session must emit events.
    let outcome = (0..64)
        .map(|trial| run_trial(&config, trial))
        .find(|o| o.first_detection_period(params.k()).is_some())
        .expect("scenario produces detections");
    let expected_first = outcome.first_detection_period(params.k());

    let (addr, handle, thread) = boot();
    let mut conn = Conn::connect(&addr);

    conn.send(OPEN_LINE);
    let ack = conn.recv();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(ack.get("streaming").and_then(Json::as_bool), Some(true));
    assert_eq!(u(&ack, "k"), 3);
    assert_eq!(u(&ack, "m"), 10);

    // Control verbs answer through the session; eval/watch/reopen do not.
    conn.send(r#"{"id":2,"verb":"ping"}"#);
    let pong = conn.recv();
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(u(&pong, "id"), 2);
    conn.send(r#"{"id":3,"verb":"eval"}"#);
    assert_eq!(error_code(&conn.recv()), "bad_request");
    conn.send(r#"{"id":4,"verb":"watch"}"#);
    assert_eq!(error_code(&conn.recv()), "bad_request");
    conn.send(OPEN_LINE);
    assert_eq!(error_code(&conn.recv()), "bad_request");

    // Feed the trial period by period; collect pushed detection events.
    let mut sent = 0u64;
    let mut events: Vec<(u64, u64)> = Vec::new(); // (seq, period)
    let mut next_id = 100u64;
    let mut i = 0;
    while i < outcome.reports.len() {
        let period = outcome.reports[i].period;
        let mut j = i;
        while j < outcome.reports.len() && outcome.reports[j].period == period {
            j += 1;
        }
        conn.send(&report_line(next_id, &outcome.reports[i..j]));
        let ack = conn.recv();
        assert_eq!(u(&ack, "id"), next_id, "acks arrive in order");
        assert_eq!(u(&ack, "ingested"), (j - i) as u64);
        assert_eq!(u(&ack, "late"), 0);
        sent += (j - i) as u64;
        for _ in 0..u(&ack, "events") {
            let line = conn.recv();
            // Events are tagged with the stream_open id.
            assert_eq!(u(&line, "id"), 1);
            let event = line.get("event").expect("event body");
            events.push((u(event, "seq"), u(event, "period")));
        }
        next_id += 1;
        i = j;
    }
    assert!(!events.is_empty(), "detected trial must emit events");
    assert_eq!(
        events.first().map(|&(_, p)| p as usize),
        expected_first,
        "first streamed event must match the simulator's first-detection period"
    );
    let seqs: Vec<u64> = events.iter().map(|&(s, _)| s).collect();
    assert_eq!(
        seqs,
        (0..events.len() as u64).collect::<Vec<_>>(),
        "event sequence numbers are dense and ordered"
    );

    conn.send(r#"{"id":9,"verb":"stream_close"}"#);
    let end = conn.recv();
    assert_eq!(end.get("stream_end").and_then(Json::as_bool), Some(true));
    assert_eq!(u(&end, "reports"), sent);
    assert_eq!(u(&end, "events"), events.len() as u64);

    // The connection reverts to plain request/response after the close.
    conn.send(r#"{"id":10,"verb":"eval","params":{"n":120}}"#);
    let eval = conn.recv();
    assert_eq!(
        eval.get("ok").and_then(Json::as_bool),
        Some(true),
        "eval after stream_close: {}",
        eval.render()
    );

    // The stream metrics section accounts every report and event.
    let mut probe = Conn::connect(&addr);
    probe.send(r#"{"id":11,"verb":"metrics","sections":["stream"]}"#);
    let metrics = probe.recv();
    let stream = metrics
        .get("metrics")
        .and_then(|m| m.get("stream"))
        .expect("stream section");
    assert_eq!(u(stream, "sessions_opened"), 1);
    assert_eq!(u(stream, "sessions_closed"), 1);
    assert_eq!(u(stream, "sessions_aborted"), 0);
    assert_eq!(u(stream, "open_sessions"), 0);
    assert_eq!(u(stream, "reports"), sent);
    assert_eq!(u(stream, "events"), events.len() as u64);
    assert_eq!(u(stream, "tracks_live"), 0, "closed session frees tracks");

    handle.shutdown();
    thread.join().expect("server thread").expect("server run");
}

#[test]
fn disconnect_and_drain_both_account_open_sessions() {
    let (_, config) = scenario();
    let outcome = run_trial(&config, 0);
    let (addr, handle, thread) = boot();

    // Session A: ingest one batch, then vanish without stream_close.
    {
        let mut conn = Conn::connect(&addr);
        conn.send(OPEN_LINE);
        conn.recv();
        let first_period_end = outcome
            .reports
            .iter()
            .position(|r| r.period != outcome.reports[0].period)
            .unwrap_or(outcome.reports.len());
        conn.send(&report_line(50, &outcome.reports[..first_period_end]));
        conn.recv();
    } // dropped: socket closes with the session open

    let metrics = handle.metrics();
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.stream_sessions_aborted.get() < 1 {
        assert!(
            Instant::now() < deadline,
            "disconnected session never reaped"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(metrics.stream_open_sessions.load(Ordering::Relaxed), 0);
    assert_eq!(
        metrics.stream_tracks_live.load(Ordering::Relaxed),
        0,
        "aborted session must return its tracks"
    );

    // Session B: still open when the server drains; shutdown is answered
    // through the session channel, then teardown aborts the session.
    let mut conn = Conn::connect(&addr);
    conn.send(OPEN_LINE);
    conn.recv();
    conn.send(r#"{"id":60,"verb":"shutdown"}"#);
    let ack = conn.recv();
    assert_eq!(ack.get("shutting_down").and_then(Json::as_bool), Some(true));
    thread.join().expect("server thread").expect("server run");

    assert_eq!(metrics.stream_sessions_opened.get(), 2);
    assert_eq!(metrics.stream_sessions_closed.get(), 0);
    assert_eq!(metrics.stream_sessions_aborted.get(), 2);
    assert_eq!(metrics.stream_open_sessions.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.stream_tracks_live.load(Ordering::Relaxed), 0);
}
