//! `gbd-serve` — the network serving layer of the group-based-detection
//! stack: a std-only, thread-per-connection TCP server speaking a
//! JSON-lines protocol that maps 1:1 onto
//! [`gbd_engine`]'s [`EvalRequest`](gbd_engine::EvalRequest) /
//! [`EvalResponse`](gbd_engine::EvalResponse) pair.
//!
//! The paper's deployment story is detection-as-a-service: a base station
//! answering `P_M[X ≥ k]` queries for many operating points. This crate
//! is that base station. Its center is the micro-batching
//! [`Coalescer`]: requests from all connections are queued centrally and
//! flushed to [`Engine::evaluate_batch`](gbd_engine::Engine::evaluate_batch)
//! together, so the engine's worker pool and warm caches amortize across
//! concurrent small callers. Around it: admission control with explicit
//! load shedding, per-connection limits and backpressure, a `stats`
//! introspection verb, and graceful drain on shutdown or SIGTERM/ctrl-c.
//!
//! The wire protocol is documented in `docs/SERVING.md`.
//!
//! ```no_run
//! use gbd_engine::Engine;
//! use gbd_serve::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::new());
//! let server = Server::bind(ServeConfig::default(), engine)?;
//! println!("listening on {}", server.local_addr());
//! server.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod coalescer;
pub mod conn;
pub mod json;
pub mod metrics;
pub mod protocol;
mod replica;
pub mod server;
pub mod signals;
mod stream_session;

pub use coalescer::{Coalescer, CoalescerConfig, SubmitError};
pub use json::{Json, JsonError};
pub use metrics::{
    render_window, ClusterSnapshot, MetricsSnapshot, ServerMetrics, StoreSnapshot,
    StreamSnapshot, BACKENDS, METRICS_SCHEMA_VERSION, VERBS,
};
pub use protocol::{Envelope, ErrorCode, Section, StreamOpenSpec, Verb, WireError};
pub use server::{ServeConfig, Server, ServerHandle};
