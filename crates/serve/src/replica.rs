//! The standby side of store replication: a TCP listener that accepts
//! log-shipping connections from primaries and applies every record to
//! this process's engine.
//!
//! Each connection is one [`gbd_store::Follower`] stream: the store
//! header's schema version and identity tag are validated against this
//! engine's codec before a single record is applied, then records warm
//! the cache layers (and this process's own store) through
//! [`Engine::apply_replicated_record`]. A standby promoted by the router
//! therefore serves the dead shard's keys from a warm cache — zero cold
//! stages — and `store_loads` counts exactly what replication delivered.
//!
//! Multiple primaries may feed one standby: the engine's key space is
//! global (keys carry the full request identity), so the union of several
//! shards' records is simply a broader warm set.

use gbd_engine::Engine;
use gbd_obs::Counter;
use gbd_store::{Follower, FollowerError};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A running replica listener; stop on drain via
/// [`ReplicaListener::stop`].
pub(crate) struct ReplicaListener {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ReplicaListener {
    /// Binds `addr` (`:0` picks an ephemeral port) and starts accepting
    /// replication streams in the background, applying records to
    /// `engine` and counting into `applied`/`apply_errors`.
    pub(crate) fn bind(
        addr: &str,
        engine: Arc<Engine>,
        applied: Arc<Counter>,
        apply_errors: Arc<Counter>,
    ) -> io::Result<ReplicaListener> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("gbd-replica-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, &accept_stop, &engine, &applied, &apply_errors);
            })?;
        Ok(ReplicaListener {
            local_addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (resolves `:0`).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting new streams. Streams already connected finish on
    /// their own when their primary disconnects; records they apply after
    /// this point are harmless (cache seeding is idempotent).
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = self
            .accept_thread
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    engine: &Arc<Engine>,
    applied: &Arc<Counter>,
    apply_errors: &Arc<Counter>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(engine);
                let applied = Arc::clone(applied);
                let apply_errors = Arc::clone(apply_errors);
                let spawned = std::thread::Builder::new()
                    .name("gbd-replica-apply".to_string())
                    .spawn(move || apply_stream(stream, &engine, &applied, &apply_errors));
                if spawned.is_err() {
                    // Could not spawn; drop the stream — the primary will
                    // reconnect and replay.
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Applies one primary's stream until it ends. Header or identity
/// failures reject the whole stream (one apply error); a corrupt frame
/// ends it (the primary reconnects and replays); a clean disconnect is
/// the normal end of a primary's life.
fn apply_stream(stream: TcpStream, engine: &Engine, applied: &Counter, apply_errors: &Counter) {
    let reader = BufReader::new(stream);
    let mut follower = match Follower::accept(reader, Engine::store_identity()) {
        Ok(follower) => follower,
        Err(FollowerError::Io(_)) => return,
        Err(_) => {
            apply_errors.inc();
            return;
        }
    };
    loop {
        match follower.next_record() {
            Ok(Some(record)) => {
                if engine.apply_replicated_record(record.kind, &record.key, &record.value) {
                    applied.inc();
                } else {
                    apply_errors.inc();
                }
            }
            Ok(None) | Err(FollowerError::Io(_)) => return,
            Err(_) => {
                apply_errors.inc();
                return;
            }
        }
    }
}
