//! Minimal async-signal-safe SIGINT/SIGTERM latch.
//!
//! The workspace vendors no `libc`/`signal-hook`, so this goes straight to
//! the C runtime: `signal(2)` installs a handler that does the only
//! async-signal-safe thing worth doing — set an atomic flag. The server's
//! accept loop polls [`triggered`] and runs the ordinary graceful-shutdown
//! path from safe code.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

extern "C" fn latch(_signum: i32) {
    // Only async-signal-safe operation here: one atomic store.
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Installs the latch for SIGINT (ctrl-c) and SIGTERM. Idempotent; safe to
/// call from any thread. No-op on non-unix targets.
pub fn install() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal` with a plain function pointer of the correct C
        // ABI is the documented libc contract; the handler touches only a
        // static atomic.
        unsafe {
            signal(SIGINT, latch);
            signal(SIGTERM, latch);
        }
    }
}

/// Whether a latched signal has arrived since process start.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Test hook: raises the latch as if a signal had been delivered.
#[doc(hidden)]
pub fn trigger_for_test() {
    TRIGGERED.store(true, Ordering::SeqCst);
}
