//! Server-side counters and a lock-free latency histogram, exposed
//! through the `stats` protocol verb.

use crate::json::Json;
use gbd_engine::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two microsecond buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs (bucket 0 holds `[0, 2)`). 40 buckets cover up to
/// ~12.7 days, far beyond any deadline the engine accepts.
const BUCKETS: usize = 40;

/// A log-bucketed histogram of request latencies.
///
/// Recording is a single relaxed fetch-add, so the per-request cost is
/// negligible next to an engine evaluation. Percentiles are read as the
/// upper bound of the bucket containing the rank — an upper estimate with
/// at most 2× resolution error, which is plenty for load-test reporting.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`); `None` when nothing was recorded.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1, capped at the
                // observed max so p100 never exceeds reality.
                let bound = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Some(bound.min(self.max_us()));
            }
        }
        Some(self.max_us())
    }
}

/// All counters the `stats` verb reports.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections_total: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Eval requests admitted into the coalescer queue.
    pub admitted: AtomicU64,
    /// Eval requests evaluated by the engine (across all batches).
    pub evaluated: AtomicU64,
    /// Eval requests shed by admission control (`overloaded`).
    pub shed: AtomicU64,
    /// Request lines rejected before admission (`bad_request`,
    /// `line_too_long`, `conn_limit`, `shutting_down`).
    pub rejected: AtomicU64,
    /// Batches flushed to the engine.
    pub batches_flushed: AtomicU64,
    /// Flushes triggered by reaching the batch-size threshold.
    pub flushes_by_size: AtomicU64,
    /// Flushes triggered by the flush-interval timer (or drain).
    pub flushes_by_timer: AtomicU64,
    /// End-to-end latency (admission to response ready) of eval requests.
    pub latency: LatencyHistogram,
    /// Queue-wait component: admission to the batch flush that carried the
    /// request. Dominated by the flush interval under light load and by
    /// backlog under heavy load.
    pub queue_wait: LatencyHistogram,
    /// Compute component: batch flush to that request's response being
    /// ready. `latency ≈ queue_wait + compute` per request.
    pub compute: LatencyHistogram,
}

impl ServerMetrics {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Mean requests per flushed batch; 0 when nothing flushed yet.
    pub fn coalescing_factor(&self) -> f64 {
        let batches = Self::read(&self.batches_flushed);
        if batches == 0 {
            return 0.0;
        }
        Self::read(&self.evaluated) as f64 / batches as f64
    }

    /// Renders the `stats` verb's payload. `queue_depth` is sampled by the
    /// caller (it lives behind the coalescer's lock); `cache` comes from
    /// the engine.
    pub fn render(&self, id: u64, queue_depth: usize, cache: CacheStats) -> Json {
        let lookups = cache.lookups();
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            cache.hits as f64 / lookups as f64
        };
        let histogram = |h: &LatencyHistogram| {
            let q = |p: f64| h.quantile_us(p).map_or(Json::Null, Json::from);
            Json::obj(vec![
                ("count".to_string(), Json::from(h.count())),
                ("p50".to_string(), q(0.50)),
                ("p95".to_string(), q(0.95)),
                ("p99".to_string(), q(0.99)),
                ("max".to_string(), Json::from(h.max_us())),
            ])
        };
        Json::obj(vec![
            ("id".to_string(), Json::Int(id as i64)),
            ("ok".to_string(), Json::Bool(true)),
            (
                "stats".to_string(),
                Json::obj(vec![
                    ("queue_depth".to_string(), Json::from(queue_depth)),
                    (
                        "connections_total".to_string(),
                        Json::from(Self::read(&self.connections_total)),
                    ),
                    (
                        "connections_active".to_string(),
                        Json::from(Self::read(&self.connections_active)),
                    ),
                    (
                        "admitted".to_string(),
                        Json::from(Self::read(&self.admitted)),
                    ),
                    (
                        "evaluated".to_string(),
                        Json::from(Self::read(&self.evaluated)),
                    ),
                    ("shed".to_string(), Json::from(Self::read(&self.shed))),
                    (
                        "rejected".to_string(),
                        Json::from(Self::read(&self.rejected)),
                    ),
                    (
                        "batches_flushed".to_string(),
                        Json::from(Self::read(&self.batches_flushed)),
                    ),
                    (
                        "flushes_by_size".to_string(),
                        Json::from(Self::read(&self.flushes_by_size)),
                    ),
                    (
                        "flushes_by_timer".to_string(),
                        Json::from(Self::read(&self.flushes_by_timer)),
                    ),
                    (
                        "coalescing_factor".to_string(),
                        Json::Num(self.coalescing_factor()),
                    ),
                    (
                        "cache".to_string(),
                        Json::obj(vec![
                            ("hits".to_string(), Json::from(cache.hits)),
                            ("misses".to_string(), Json::from(cache.misses)),
                            ("evictions".to_string(), Json::from(cache.evictions)),
                            ("hit_rate".to_string(), Json::Num(hit_rate)),
                        ]),
                    ),
                    ("latency_us".to_string(), histogram(&self.latency)),
                    ("queue_wait_us".to_string(), histogram(&self.queue_wait)),
                    ("compute_us".to_string(), histogram(&self.compute)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        for us in [10u64, 20, 40, 80, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_us(), 1000);
        let p50 = h.quantile_us(0.5).unwrap();
        // The median sample is 40µs; its bucket [32,64) reports 63.
        assert!((40..=63).contains(&p50), "p50 = {p50}");
        // p100 is capped at the observed max rather than the bucket bound.
        assert_eq!(h.quantile_us(1.0), Some(1000));
        assert!(h.quantile_us(0.0).unwrap() <= p50);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(100_000));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(0.0).unwrap() <= 1);
        assert_eq!(h.quantile_us(1.0), Some(100_000_000_000));
    }

    #[test]
    fn coalescing_factor_is_requests_per_batch() {
        let m = ServerMetrics::default();
        assert_eq!(m.coalescing_factor(), 0.0);
        m.evaluated.store(12, Ordering::Relaxed);
        m.batches_flushed.store(3, Ordering::Relaxed);
        assert_eq!(m.coalescing_factor(), 4.0);
    }

    #[test]
    fn stats_render_shape() {
        let m = ServerMetrics::default();
        m.latency.record(Duration::from_micros(100));
        let v = m.render(
            5,
            2,
            CacheStats {
                hits: 3,
                misses: 1,
                ..CacheStats::default()
            },
        );
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(5));
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("queue_depth").and_then(Json::as_usize), Some(2));
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(0.75));
        let lat = stats.get("latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(1));
        assert!(lat.get("p99").unwrap().as_u64().is_some());
        // The queue-wait/compute split has the same shape; unrecorded
        // histograms render null percentiles, not absent keys.
        for key in ["queue_wait_us", "compute_us"] {
            let split = stats.get(key).unwrap();
            assert_eq!(split.get("count").and_then(Json::as_u64), Some(0));
            assert_eq!(split.get("p50"), Some(&Json::Null));
        }
    }

    #[test]
    fn queue_wait_and_compute_sum_to_latency() {
        let m = ServerMetrics::default();
        m.latency.record(Duration::from_micros(900));
        m.queue_wait.record(Duration::from_micros(500));
        m.compute.record(Duration::from_micros(400));
        let v = m.render(1, 0, CacheStats::default());
        let stats = v.get("stats").unwrap();
        let p100 = |key: &str| {
            stats
                .get(key)
                .and_then(|h| h.get("max"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(
            p100("queue_wait_us") + p100("compute_us"),
            p100("latency_us")
        );
    }
}
