//! Server-side instruments and the typed [`MetricsSnapshot`] every
//! report renders from.
//!
//! The counters and histograms live in a [`gbd_obs::Registry`], so the
//! same series back the versioned `metrics` verb, the deprecated
//! `stats`/`store` aliases, the streaming `watch` windows, and the
//! Prometheus text endpoint. Reports never read live atomics mid-render:
//! [`ServerMetrics::snapshot`] reads everything once into a plain-data
//! snapshot, and the renderers are pure functions of it.

use crate::json::Json;
use crate::protocol::Section;
use gbd_engine::{CacheStats, Engine};
use gbd_obs::{Counter, Histogram, HistogramSnapshot, Registry, WatchMsg, WatchStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Current `metrics` verb payload schema. Bump on breaking shape changes.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Verbs with a per-verb request counter, in registration order.
pub const VERBS: [&str; 11] = [
    "eval",
    "metrics",
    "stats",
    "store",
    "watch",
    "unwatch",
    "ping",
    "shutdown",
    "stream_open",
    "report",
    "stream_close",
];

/// Engine backends with a per-backend serve-latency histogram.
pub const BACKENDS: [&str; 6] = ["ms", "s", "exact", "t", "poisson", "sim"];

/// All instruments the serving layer records into, registered on one
/// shared [`Registry`].
pub struct ServerMetrics {
    registry: Arc<Registry>,
    /// Connections accepted over the server's lifetime.
    pub connections_total: Arc<Counter>,
    /// Connections currently open (inc/dec — registered as a gauge, not a
    /// windowed counter).
    pub connections_active: Arc<AtomicU64>,
    /// Eval requests admitted into the coalescer queue.
    pub admitted: Arc<Counter>,
    /// Eval requests evaluated by the engine (across all batches).
    pub evaluated: Arc<Counter>,
    /// Eval requests shed by admission control (`overloaded`).
    pub shed: Arc<Counter>,
    /// Request lines rejected before admission (`bad_request`,
    /// `line_too_long`, `conn_limit`, `shutting_down`).
    pub rejected: Arc<Counter>,
    /// Batches flushed to the engine.
    pub batches_flushed: Arc<Counter>,
    /// Flushes triggered by reaching the batch-size threshold.
    pub flushes_by_size: Arc<Counter>,
    /// Flushes triggered by the flush-interval timer (or drain).
    pub flushes_by_timer: Arc<Counter>,
    /// End-to-end latency (admission to response ready) of eval requests.
    pub latency: Arc<Histogram>,
    /// Queue-wait component: admission to the batch flush that carried the
    /// request. Dominated by the flush interval under light load and by
    /// backlog under heavy load.
    pub queue_wait: Arc<Histogram>,
    /// Compute component: batch flush to that request's response being
    /// ready. `latency ≈ queue_wait + compute` per request.
    pub compute: Arc<Histogram>,
    /// Response lines that failed to reach the client (write or flush I/O
    /// error in the per-connection writer). Before this counter existed a
    /// failed write silently dropped the connection with no metric.
    pub write_errors: Arc<Counter>,
    /// Calls to the byte-compatible deprecated `stats`/`store` aliases,
    /// so the migration documented in docs/SERVING.md is observable.
    pub deprecated_verb_calls: Arc<Counter>,
    /// Replicated store records applied by this process's replica
    /// listener (standby role).
    pub replica_applied: Arc<Counter>,
    /// Replicated records that failed to decode or re-append.
    pub replica_apply_errors: Arc<Counter>,
    /// Streaming detection sessions opened (`stream_open`).
    pub stream_sessions_opened: Arc<Counter>,
    /// Sessions closed cleanly by `stream_close`.
    pub stream_sessions_closed: Arc<Counter>,
    /// Sessions torn down by disconnect or server drain instead of a
    /// `stream_close`.
    pub stream_sessions_aborted: Arc<Counter>,
    /// Node reports accepted into session detectors.
    pub stream_reports: Arc<Counter>,
    /// Reports dropped because they predated their session's frontier.
    pub stream_reports_late: Arc<Counter>,
    /// Detection events emitted across all sessions.
    pub stream_events: Arc<Counter>,
    /// DP entries reaped by the sliding window (lossless).
    pub stream_tracks_expired: Arc<Counter>,
    /// DP entries evicted by the per-session track cap (counted
    /// degradation).
    pub stream_tracks_evicted: Arc<Counter>,
    /// Sessions open right now (inc/dec gauge).
    pub stream_open_sessions: Arc<AtomicU64>,
    /// Live DP entries across all open sessions (gauge).
    pub stream_tracks_live: Arc<AtomicU64>,
    /// Report ingestion → detection-event emission latency.
    pub stream_event_latency: Arc<Histogram>,
    verbs: Vec<(&'static str, Arc<Counter>)>,
    backends: Vec<(&'static str, Arc<Histogram>)>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Creates the full instrument set on a fresh registry.
    pub fn new() -> ServerMetrics {
        let registry = Arc::new(Registry::new());
        let connections_active = Arc::new(AtomicU64::new(0));
        let active_probe = Arc::clone(&connections_active);
        registry.gauge("connections_active", move || {
            active_probe.load(Ordering::Relaxed) as f64
        });
        let stream_open_sessions = Arc::new(AtomicU64::new(0));
        let open_probe = Arc::clone(&stream_open_sessions);
        registry.gauge("stream_open_sessions", move || {
            open_probe.load(Ordering::Relaxed) as f64
        });
        let stream_tracks_live = Arc::new(AtomicU64::new(0));
        let tracks_probe = Arc::clone(&stream_tracks_live);
        registry.gauge("stream_tracks_live", move || {
            tracks_probe.load(Ordering::Relaxed) as f64
        });
        ServerMetrics {
            connections_total: registry.counter("connections_total"),
            connections_active,
            admitted: registry.counter("admitted"),
            evaluated: registry.counter("evaluated"),
            shed: registry.counter("shed"),
            rejected: registry.counter("rejected"),
            batches_flushed: registry.counter("batches_flushed"),
            flushes_by_size: registry.counter("flushes_by_size"),
            flushes_by_timer: registry.counter("flushes_by_timer"),
            latency: registry.histogram("latency_us"),
            queue_wait: registry.histogram("queue_wait_us"),
            compute: registry.histogram("compute_us"),
            write_errors: registry.counter("server_write_errors"),
            deprecated_verb_calls: registry.counter("deprecated_verb_calls"),
            replica_applied: registry.counter("replica_applied_records"),
            replica_apply_errors: registry.counter("replica_apply_errors"),
            stream_sessions_opened: registry.counter("stream_sessions_opened"),
            stream_sessions_closed: registry.counter("stream_sessions_closed"),
            stream_sessions_aborted: registry.counter("stream_sessions_aborted"),
            stream_reports: registry.counter("stream_reports"),
            stream_reports_late: registry.counter("stream_reports_late"),
            stream_events: registry.counter("stream_events"),
            stream_tracks_expired: registry.counter("stream_tracks_expired"),
            stream_tracks_evicted: registry.counter("stream_tracks_evicted"),
            stream_open_sessions,
            stream_tracks_live,
            stream_event_latency: registry.histogram("stream_event_latency_us"),
            verbs: VERBS
                .iter()
                .map(|&v| (v, registry.counter(&format!("requests_{v}"))))
                .collect(),
            backends: BACKENDS
                .iter()
                .map(|&b| (b, registry.histogram(&format!("backend_{b}_latency_us"))))
                .collect(),
            registry,
        }
    }

    /// The registry behind these instruments — the watch/ticker/exposition
    /// surface.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Bumps the per-verb request counter for `verb` (a [`VERBS`] name).
    pub fn record_verb(&self, verb: &str) {
        if let Some((_, c)) = self.verbs.iter().find(|(v, _)| *v == verb) {
            c.inc();
        }
    }

    /// The serve-latency histogram of the backend that actually served a
    /// response (`EvalResponse::served_by`).
    pub fn backend_latency(&self, served_by: &str) -> Option<&Arc<Histogram>> {
        self.backends
            .iter()
            .find(|(b, _)| *b == served_by)
            .map(|(_, h)| h)
    }

    /// Mean requests per flushed batch; 0 when nothing flushed yet.
    pub fn coalescing_factor(&self) -> f64 {
        let batches = self.batches_flushed.get();
        if batches == 0 {
            return 0.0;
        }
        self.evaluated.get() as f64 / batches as f64
    }

    /// Reads every instrument once into a [`MetricsSnapshot`].
    /// `queue_depth` is sampled by the caller (it lives behind the
    /// coalescer's lock); cache and store state come from the engine;
    /// `cluster` is this process's shard identity and replication state
    /// (None outside cluster mode).
    pub fn snapshot(
        &self,
        queue_depth: usize,
        engine: &Engine,
        cluster: Option<ClusterSnapshot>,
    ) -> MetricsSnapshot {
        let cache = engine.cache_stats();
        let digest = engine.store_digest();
        let store = engine.store_stats().map(|stats| StoreSnapshot {
            live_entries: stats.live_entries,
            loaded_records: stats.loaded_records,
            torn_bytes_discarded: stats.torn_bytes_discarded,
            appended_records: stats.appended_records,
            compactions: stats.compactions,
            file_bytes: stats.file_bytes,
            loads: cache.store_loads,
            spills: cache.store_spills,
            spill_errors: stats.append_errors + engine.store_spill_errors(),
            digest: digest.unwrap_or(0),
        });
        MetricsSnapshot {
            queue_depth,
            connections_total: self.connections_total.get(),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            admitted: self.admitted.get(),
            evaluated: self.evaluated.get(),
            shed: self.shed.get(),
            rejected: self.rejected.get(),
            batches_flushed: self.batches_flushed.get(),
            flushes_by_size: self.flushes_by_size.get(),
            flushes_by_timer: self.flushes_by_timer.get(),
            coalescing_factor: self.coalescing_factor(),
            verbs: self.verbs.iter().map(|(v, c)| (*v, c.get())).collect(),
            cache,
            store,
            latency_us: self.latency.snapshot(),
            queue_wait_us: self.queue_wait.snapshot(),
            compute_us: self.compute.snapshot(),
            backends: self
                .backends
                .iter()
                .map(|(b, h)| (*b, h.snapshot()))
                .collect(),
            watch: self.registry.watch_stats(),
            cluster,
            stream: StreamSnapshot {
                open_sessions: self.stream_open_sessions.load(Ordering::Relaxed),
                sessions_opened: self.stream_sessions_opened.get(),
                sessions_closed: self.stream_sessions_closed.get(),
                sessions_aborted: self.stream_sessions_aborted.get(),
                reports: self.stream_reports.get(),
                reports_late: self.stream_reports_late.get(),
                events: self.stream_events.get(),
                tracks_live: self.stream_tracks_live.load(Ordering::Relaxed),
                tracks_expired: self.stream_tracks_expired.get(),
                tracks_evicted: self.stream_tracks_evicted.get(),
                event_latency_us: self.stream_event_latency.snapshot(),
            },
        }
    }
}

/// Streaming-session state at snapshot time, rendered as the `stream`
/// section when a client requests it explicitly.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Sessions open at snapshot time.
    pub open_sessions: u64,
    /// Sessions opened over the server's lifetime.
    pub sessions_opened: u64,
    /// Sessions closed cleanly by `stream_close`.
    pub sessions_closed: u64,
    /// Sessions torn down by disconnect or drain.
    pub sessions_aborted: u64,
    /// Reports accepted into session detectors.
    pub reports: u64,
    /// Reports dropped as late.
    pub reports_late: u64,
    /// Detection events emitted.
    pub events: u64,
    /// Live DP entries across open sessions at snapshot time.
    pub tracks_live: u64,
    /// Entries reaped by the sliding window.
    pub tracks_expired: u64,
    /// Entries evicted by the track cap.
    pub tracks_evicted: u64,
    /// Report ingestion → event emission latency.
    pub event_latency_us: HistogramSnapshot,
}

/// Shard identity and store-replication state at snapshot time, rendered
/// as the `cluster` section when a client requests it explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// This process's shard identity (`--shard-id`, or the listen address
    /// when unset).
    pub shard_id: String,
    /// `"primary"` when shipping appends to a follower, `"standby"` when
    /// applying a primary's log, `"single"` otherwise.
    pub role: &'static str,
    /// Records shipped to the follower (initial sync included).
    pub shipped_records: u64,
    /// Records that could not be shipped (queue overflow or a dead
    /// follower past the reconnect budget).
    pub ship_errors: u64,
    /// Times the shipper (re)connected to the follower.
    pub ship_connects: u64,
    /// Replicated records applied by this process's replica listener.
    pub applied_records: u64,
    /// Replicated records that failed to decode or re-append.
    pub apply_errors: u64,
}

/// Persistent-store status at snapshot time (present when a store is
/// attached).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Distinct results the store currently holds.
    pub live_entries: u64,
    /// Records replayed at warm start.
    pub loaded_records: u64,
    /// Bytes of torn tail discarded at warm start.
    pub torn_bytes_discarded: u64,
    /// Records appended since open.
    pub appended_records: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
    /// Current log size in bytes.
    pub file_bytes: u64,
    /// Cache entries seeded from the store at engine construction.
    pub loads: u64,
    /// Freshly computed entries spilled to the store.
    pub spills: u64,
    /// Failed spills (store-side append errors plus engine-side failures).
    pub spill_errors: u64,
    /// CRC32 digest of the live index (order-independent XOR over entry
    /// records) — anti-entropy groundwork: a standby proves convergence by
    /// matching its primary's digest instead of inferring it from applied
    /// counts.
    pub digest: u32,
}

/// Every series the serving layer reports, read once — the single source
/// all renderers (JSON verbs and tests alike) consume.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests queued in the coalescer at snapshot time.
    pub queue_depth: usize,
    /// Connections accepted over the server's lifetime.
    pub connections_total: u64,
    /// Connections open at snapshot time.
    pub connections_active: u64,
    /// Eval requests admitted into the coalescer queue.
    pub admitted: u64,
    /// Eval requests evaluated by the engine.
    pub evaluated: u64,
    /// Eval requests shed by admission control.
    pub shed: u64,
    /// Request lines rejected before admission.
    pub rejected: u64,
    /// Batches flushed to the engine.
    pub batches_flushed: u64,
    /// Flushes triggered by batch size.
    pub flushes_by_size: u64,
    /// Flushes triggered by the timer (or drain).
    pub flushes_by_timer: u64,
    /// Mean requests per flushed batch.
    pub coalescing_factor: f64,
    /// Per-verb request counts, in [`VERBS`] order.
    pub verbs: Vec<(&'static str, u64)>,
    /// Engine cache counters.
    pub cache: CacheStats,
    /// Store status; `None` when the engine runs memory-only.
    pub store: Option<StoreSnapshot>,
    /// End-to-end eval latency.
    pub latency_us: HistogramSnapshot,
    /// Queue-wait component.
    pub queue_wait_us: HistogramSnapshot,
    /// Compute component.
    pub compute_us: HistogramSnapshot,
    /// Per-backend serve latency, in [`BACKENDS`] order.
    pub backends: Vec<(&'static str, HistogramSnapshot)>,
    /// Watch-subscription health.
    pub watch: WatchStats,
    /// Shard identity and replication state; `None` outside cluster mode.
    pub cluster: Option<ClusterSnapshot>,
    /// Streaming-session state.
    pub stream: StreamSnapshot,
}

/// `count`/`p50`/`p95`/`p99`/`max` summary — the legacy `stats` histogram
/// shape. An empty histogram renders every statistic as `null` (`max`
/// included: a raw `0` was indistinguishable from a genuine 0µs sample).
fn histogram_brief(h: &HistogramSnapshot) -> Json {
    let q = |p: f64| h.quantile_us(p).map_or(Json::Null, Json::from);
    Json::obj(vec![
        ("count".to_string(), Json::from(h.count)),
        ("p50".to_string(), q(0.50)),
        ("p95".to_string(), q(0.95)),
        ("p99".to_string(), q(0.99)),
        ("max".to_string(), h.max().map_or(Json::Null, Json::from)),
    ])
}

/// The brief shape plus `sum_us`/`mean_us`, for the `histograms` section.
fn histogram_full(h: &HistogramSnapshot) -> Json {
    let Json::Obj(mut fields) = histogram_brief(h) else {
        unreachable!("histogram_brief always renders an object");
    };
    fields.insert(1, ("sum_us".to_string(), Json::from(h.sum_us)));
    fields.insert(
        2,
        (
            "mean_us".to_string(),
            h.mean_us().map_or(Json::Null, Json::Num),
        ),
    );
    Json::Obj(fields)
}

fn cache_brief(cache: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits".to_string(), Json::from(cache.hits)),
        ("misses".to_string(), Json::from(cache.misses)),
        ("evictions".to_string(), Json::from(cache.evictions)),
        ("hit_rate".to_string(), Json::Num(cache.hit_rate())),
    ])
}

fn store_body(store: Option<&StoreSnapshot>) -> Json {
    match store {
        None => Json::obj(vec![("attached".to_string(), Json::Bool(false))]),
        Some(s) => Json::obj(vec![
            ("attached".to_string(), Json::Bool(true)),
            ("live_entries".to_string(), Json::from(s.live_entries)),
            ("loaded_records".to_string(), Json::from(s.loaded_records)),
            (
                "torn_bytes_discarded".to_string(),
                Json::from(s.torn_bytes_discarded),
            ),
            (
                "appended_records".to_string(),
                Json::from(s.appended_records),
            ),
            ("compactions".to_string(), Json::from(s.compactions)),
            ("file_bytes".to_string(), Json::from(s.file_bytes)),
            ("loads".to_string(), Json::from(s.loads)),
            ("spills".to_string(), Json::from(s.spills)),
            ("spill_errors".to_string(), Json::from(s.spill_errors)),
            ("digest".to_string(), Json::from(u64::from(s.digest))),
        ]),
    }
}

impl MetricsSnapshot {
    /// Renders the deprecated `stats` verb: the pre-redesign payload, key
    /// for key, plus the top-level `deprecated` flag. New clients should
    /// use `metrics` with `sections: ["server", "cache", "histograms"]`.
    pub fn render_stats(&self, id: u64) -> Json {
        Json::obj(vec![
            ("id".to_string(), Json::Int(id as i64)),
            ("ok".to_string(), Json::Bool(true)),
            ("deprecated".to_string(), Json::Bool(true)),
            (
                "stats".to_string(),
                Json::obj(vec![
                    ("queue_depth".to_string(), Json::from(self.queue_depth)),
                    (
                        "connections_total".to_string(),
                        Json::from(self.connections_total),
                    ),
                    (
                        "connections_active".to_string(),
                        Json::from(self.connections_active),
                    ),
                    ("admitted".to_string(), Json::from(self.admitted)),
                    ("evaluated".to_string(), Json::from(self.evaluated)),
                    ("shed".to_string(), Json::from(self.shed)),
                    ("rejected".to_string(), Json::from(self.rejected)),
                    (
                        "batches_flushed".to_string(),
                        Json::from(self.batches_flushed),
                    ),
                    (
                        "flushes_by_size".to_string(),
                        Json::from(self.flushes_by_size),
                    ),
                    (
                        "flushes_by_timer".to_string(),
                        Json::from(self.flushes_by_timer),
                    ),
                    (
                        "coalescing_factor".to_string(),
                        Json::Num(self.coalescing_factor),
                    ),
                    ("cache".to_string(), cache_brief(&self.cache)),
                    ("latency_us".to_string(), histogram_brief(&self.latency_us)),
                    (
                        "queue_wait_us".to_string(),
                        histogram_brief(&self.queue_wait_us),
                    ),
                    ("compute_us".to_string(), histogram_brief(&self.compute_us)),
                ]),
            ),
        ])
    }

    /// Renders the deprecated `store` verb: the pre-redesign payload plus
    /// the `deprecated` flag. New clients should use `metrics` with
    /// `sections: ["store"]`.
    pub fn render_store(&self, id: u64) -> Json {
        Json::obj(vec![
            ("id".to_string(), Json::Int(id as i64)),
            ("ok".to_string(), Json::Bool(true)),
            ("deprecated".to_string(), Json::Bool(true)),
            ("store".to_string(), store_body(self.store.as_ref())),
        ])
    }

    /// Renders the versioned `metrics` verb. `sections` selects which
    /// sections appear (empty = all), in canonical order regardless of the
    /// request's order.
    pub fn render_metrics(&self, id: u64, sections: &[Section]) -> Json {
        let wants = |s: Section| sections.is_empty() || sections.contains(&s);
        let mut body = Vec::new();
        if wants(Section::Server) {
            body.push((
                "server".to_string(),
                Json::obj(vec![
                    ("queue_depth".to_string(), Json::from(self.queue_depth)),
                    (
                        "connections_total".to_string(),
                        Json::from(self.connections_total),
                    ),
                    (
                        "connections_active".to_string(),
                        Json::from(self.connections_active),
                    ),
                    ("admitted".to_string(), Json::from(self.admitted)),
                    ("evaluated".to_string(), Json::from(self.evaluated)),
                    ("shed".to_string(), Json::from(self.shed)),
                    ("rejected".to_string(), Json::from(self.rejected)),
                    (
                        "batches_flushed".to_string(),
                        Json::from(self.batches_flushed),
                    ),
                    (
                        "flushes_by_size".to_string(),
                        Json::from(self.flushes_by_size),
                    ),
                    (
                        "flushes_by_timer".to_string(),
                        Json::from(self.flushes_by_timer),
                    ),
                    (
                        "coalescing_factor".to_string(),
                        Json::Num(self.coalescing_factor),
                    ),
                    (
                        "verbs".to_string(),
                        Json::Obj(
                            self.verbs
                                .iter()
                                .map(|&(v, n)| (v.to_string(), Json::from(n)))
                                .collect(),
                        ),
                    ),
                    (
                        "watch".to_string(),
                        Json::obj(vec![
                            ("watchers".to_string(), Json::from(self.watch.watchers)),
                            (
                                "windows_sampled".to_string(),
                                Json::from(self.watch.windows_sampled),
                            ),
                            (
                                "windows_dropped".to_string(),
                                Json::from(self.watch.windows_dropped),
                            ),
                        ]),
                    ),
                ]),
            ));
        }
        if wants(Section::Cache) {
            body.push((
                "cache".to_string(),
                Json::obj(vec![
                    ("hits".to_string(), Json::from(self.cache.hits)),
                    ("misses".to_string(), Json::from(self.cache.misses)),
                    ("evictions".to_string(), Json::from(self.cache.evictions)),
                    (
                        "poisoned_recoveries".to_string(),
                        Json::from(self.cache.poisoned_recoveries),
                    ),
                    (
                        "store_loads".to_string(),
                        Json::from(self.cache.store_loads),
                    ),
                    (
                        "store_spills".to_string(),
                        Json::from(self.cache.store_spills),
                    ),
                    ("hit_rate".to_string(), Json::Num(self.cache.hit_rate())),
                ]),
            ));
        }
        if wants(Section::Store) {
            body.push(("store".to_string(), store_body(self.store.as_ref())));
        }
        if wants(Section::Histograms) {
            body.push((
                "histograms".to_string(),
                Json::obj(vec![
                    ("latency_us".to_string(), histogram_full(&self.latency_us)),
                    (
                        "queue_wait_us".to_string(),
                        histogram_full(&self.queue_wait_us),
                    ),
                    ("compute_us".to_string(), histogram_full(&self.compute_us)),
                    (
                        "backends".to_string(),
                        Json::Obj(
                            self.backends
                                .iter()
                                .map(|(b, h)| (b.to_string(), histogram_full(h)))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        // The cluster section is opt-in only: an empty selector means "all
        // pre-cluster sections", so default payloads keep their shape and
        // single-process deployments never see cluster noise.
        if sections.contains(&Section::Cluster) {
            let fields = match &self.cluster {
                None => vec![("enabled".to_string(), Json::Bool(false))],
                Some(c) => vec![
                    ("enabled".to_string(), Json::Bool(true)),
                    ("shard_id".to_string(), Json::from(c.shard_id.as_str())),
                    ("role".to_string(), Json::from(c.role)),
                    (
                        "replication".to_string(),
                        Json::obj(vec![
                            ("shipped_records".to_string(), Json::from(c.shipped_records)),
                            ("ship_errors".to_string(), Json::from(c.ship_errors)),
                            ("ship_connects".to_string(), Json::from(c.ship_connects)),
                            ("applied_records".to_string(), Json::from(c.applied_records)),
                            ("apply_errors".to_string(), Json::from(c.apply_errors)),
                        ]),
                    ),
                ],
            };
            body.push(("cluster".to_string(), Json::obj(fields)));
        }
        // The stream section is opt-in only, for the same reason as
        // `cluster`: default payloads keep their shape and non-streaming
        // deployments never see session noise.
        if sections.contains(&Section::Stream) {
            let s = &self.stream;
            body.push((
                "stream".to_string(),
                Json::obj(vec![
                    ("open_sessions".to_string(), Json::from(s.open_sessions)),
                    ("sessions_opened".to_string(), Json::from(s.sessions_opened)),
                    ("sessions_closed".to_string(), Json::from(s.sessions_closed)),
                    (
                        "sessions_aborted".to_string(),
                        Json::from(s.sessions_aborted),
                    ),
                    ("reports".to_string(), Json::from(s.reports)),
                    ("reports_late".to_string(), Json::from(s.reports_late)),
                    ("events".to_string(), Json::from(s.events)),
                    ("tracks_live".to_string(), Json::from(s.tracks_live)),
                    ("tracks_expired".to_string(), Json::from(s.tracks_expired)),
                    ("tracks_evicted".to_string(), Json::from(s.tracks_evicted)),
                    (
                        "event_latency_us".to_string(),
                        histogram_full(&s.event_latency_us),
                    ),
                ]),
            ));
        }
        Json::obj(vec![
            ("id".to_string(), Json::Int(id as i64)),
            ("ok".to_string(), Json::Bool(true)),
            (
                "schema_version".to_string(),
                Json::from(METRICS_SCHEMA_VERSION),
            ),
            ("metrics".to_string(), Json::Obj(body)),
        ])
    }
}

/// Renders one `watch` stream line: the window's per-series deltas and
/// totals, plus how many windows this watcher missed right before it.
pub fn render_window(id: u64, msg: &WatchMsg) -> Json {
    let w = &msg.window;
    let counters: Vec<(String, Json)> = w
        .schema
        .counters
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (
                name.clone(),
                Json::obj(vec![
                    ("delta".to_string(), Json::from(w.counter_deltas[i])),
                    ("total".to_string(), Json::from(w.counter_totals[i])),
                ]),
            )
        })
        .collect();
    let histograms: Vec<(String, Json)> = w
        .schema
        .histograms
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (
                name.clone(),
                Json::obj(vec![
                    (
                        "count_delta".to_string(),
                        Json::from(w.hist_count_deltas[i]),
                    ),
                    (
                        "sum_delta_us".to_string(),
                        Json::from(w.hist_sum_deltas_us[i]),
                    ),
                    (
                        "count_total".to_string(),
                        Json::from(w.hist_count_totals[i]),
                    ),
                ]),
            )
        })
        .collect();
    Json::obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        (
            "window".to_string(),
            Json::obj(vec![
                ("seq".to_string(), Json::from(w.seq)),
                ("duration_ms".to_string(), Json::from(w.duration_ms)),
                ("counters".to_string(), Json::Obj(counters)),
                ("histograms".to_string(), Json::Obj(histograms)),
            ]),
        ),
        ("lagged".to_string(), Json::from(msg.lagged)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn snapshot(m: &ServerMetrics, queue_depth: usize) -> MetricsSnapshot {
        let engine = Engine::with_workers(1);
        m.snapshot(queue_depth, &engine, None)
    }

    #[test]
    fn coalescing_factor_is_requests_per_batch() {
        let m = ServerMetrics::new();
        assert_eq!(m.coalescing_factor(), 0.0);
        m.evaluated.add(12);
        m.batches_flushed.add(3);
        assert_eq!(m.coalescing_factor(), 4.0);
    }

    #[test]
    fn stats_render_shape() {
        let m = ServerMetrics::new();
        m.latency.record(Duration::from_micros(100));
        let mut snap = snapshot(&m, 2);
        snap.cache = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        let v = snap.render_stats(5);
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("deprecated").and_then(Json::as_bool), Some(true));
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("queue_depth").and_then(Json::as_usize), Some(2));
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(0.75));
        let lat = stats.get("latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(1));
        assert!(lat.get("p99").unwrap().as_u64().is_some());
        // Unrecorded histograms render null percentiles AND a null max —
        // an empty histogram is unambiguous, not a fake 0µs maximum.
        for key in ["queue_wait_us", "compute_us"] {
            let split = stats.get(key).unwrap();
            assert_eq!(split.get("count").and_then(Json::as_u64), Some(0));
            assert_eq!(split.get("p50"), Some(&Json::Null));
            assert_eq!(split.get("max"), Some(&Json::Null));
        }
    }

    #[test]
    fn queue_wait_and_compute_sum_to_latency() {
        let m = ServerMetrics::new();
        m.latency.record(Duration::from_micros(900));
        m.queue_wait.record(Duration::from_micros(500));
        m.compute.record(Duration::from_micros(400));
        let v = snapshot(&m, 0).render_stats(1);
        let stats = v.get("stats").unwrap();
        let p100 = |key: &str| {
            stats
                .get(key)
                .and_then(|h| h.get("max"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(
            p100("queue_wait_us") + p100("compute_us"),
            p100("latency_us")
        );
    }

    #[test]
    fn metrics_render_selects_sections() {
        let m = ServerMetrics::new();
        m.record_verb("eval");
        m.record_verb("eval");
        m.record_verb("ping");
        if let Some(h) = m.backend_latency("poisson") {
            h.record(Duration::from_micros(50));
        }
        let snap = snapshot(&m, 1);
        let all = snap.render_metrics(9, &[]);
        assert_eq!(all.get("schema_version").and_then(Json::as_u64), Some(1));
        let body = all.get("metrics").unwrap();
        for section in ["server", "cache", "store", "histograms"] {
            assert!(body.get(section).is_some(), "missing {section}");
        }
        let server = body.get("server").unwrap();
        let verbs = server.get("verbs").unwrap();
        assert_eq!(verbs.get("eval").and_then(Json::as_u64), Some(2));
        assert_eq!(verbs.get("ping").and_then(Json::as_u64), Some(1));
        let hist = body.get("histograms").unwrap();
        let poisson = hist.get("backends").and_then(|b| b.get("poisson")).unwrap();
        assert_eq!(poisson.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(poisson.get("sum_us").and_then(Json::as_u64), Some(50));
        // No store attached: the section reports that explicitly.
        let store = body.get("store").unwrap();
        assert_eq!(store.get("attached").and_then(Json::as_bool), Some(false));

        let only_cache = snap.render_metrics(9, &[Section::Cache]);
        let body = only_cache.get("metrics").unwrap();
        assert!(body.get("cache").is_some());
        assert!(body.get("server").is_none());
        assert!(body.get("histograms").is_none());
    }

    #[test]
    fn cluster_section_renders_only_when_requested() {
        let m = ServerMetrics::new();
        let mut snap = snapshot(&m, 0);
        // Empty selector means "all pre-cluster sections" — no cluster key.
        let all = snap.render_metrics(1, &[]);
        assert!(all.get("metrics").unwrap().get("cluster").is_none());
        // Explicit request outside cluster mode reports enabled: false.
        let v = snap.render_metrics(1, &[Section::Cluster]);
        let cluster = v.get("metrics").unwrap().get("cluster").unwrap();
        assert_eq!(cluster.get("enabled").and_then(Json::as_bool), Some(false));
        snap.cluster = Some(ClusterSnapshot {
            shard_id: "shard0".to_string(),
            role: "primary",
            shipped_records: 7,
            ship_errors: 1,
            ship_connects: 2,
            applied_records: 0,
            apply_errors: 0,
        });
        let v = snap.render_metrics(1, &[Section::Cluster]);
        let cluster = v.get("metrics").unwrap().get("cluster").unwrap();
        assert_eq!(cluster.get("enabled").and_then(Json::as_bool), Some(true));
        assert_eq!(
            cluster.get("shard_id").and_then(Json::as_str),
            Some("shard0")
        );
        assert_eq!(cluster.get("role").and_then(Json::as_str), Some("primary"));
        let rep = cluster.get("replication").unwrap();
        assert_eq!(rep.get("shipped_records").and_then(Json::as_u64), Some(7));
        assert_eq!(rep.get("ship_connects").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn stream_section_renders_only_when_requested() {
        let m = ServerMetrics::new();
        m.stream_sessions_opened.inc();
        m.stream_reports.add(12);
        m.stream_events.add(3);
        m.stream_open_sessions.store(1, Ordering::Relaxed);
        m.stream_tracks_live.store(12, Ordering::Relaxed);
        m.stream_event_latency.record(Duration::from_micros(40));
        let snap = snapshot(&m, 0);
        // Empty selector means "all pre-stream sections" — no stream key.
        let all = snap.render_metrics(1, &[]);
        assert!(all.get("metrics").unwrap().get("stream").is_none());
        let v = snap.render_metrics(1, &[Section::Stream]);
        let stream = v.get("metrics").unwrap().get("stream").unwrap();
        assert_eq!(stream.get("open_sessions").and_then(Json::as_u64), Some(1));
        assert_eq!(
            stream.get("sessions_opened").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(stream.get("reports").and_then(Json::as_u64), Some(12));
        assert_eq!(stream.get("events").and_then(Json::as_u64), Some(3));
        assert_eq!(stream.get("tracks_live").and_then(Json::as_u64), Some(12));
        let lat = stream.get("event_latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(lat.get("sum_us").and_then(Json::as_u64), Some(40));
    }

    #[test]
    fn store_digest_rides_the_store_section() {
        let m = ServerMetrics::new();
        let mut snap = snapshot(&m, 0);
        snap.store = Some(StoreSnapshot {
            live_entries: 2,
            loaded_records: 0,
            torn_bytes_discarded: 0,
            appended_records: 2,
            compactions: 0,
            file_bytes: 64,
            loads: 0,
            spills: 2,
            spill_errors: 0,
            digest: 0xDEAD_BEEF,
        });
        let v = snap.render_metrics(4, &[Section::Store]);
        let store = v.get("metrics").unwrap().get("store").unwrap();
        assert_eq!(
            store.get("digest").and_then(Json::as_u64),
            Some(0xDEAD_BEEF)
        );
        // The deprecated store verb carries it too (same body renderer).
        let v = snap.render_store(4);
        let store = v.get("store").unwrap();
        assert_eq!(
            store.get("digest").and_then(Json::as_u64),
            Some(0xDEAD_BEEF)
        );
    }

    #[test]
    fn window_render_carries_deltas_and_lag() {
        let m = ServerMetrics::new();
        m.evaluated.add(4);
        m.latency.record(Duration::from_micros(30));
        let window = m.registry().sample_window();
        let v = render_window(3, &WatchMsg { window, lagged: 2 });
        assert_eq!(v.get("lagged").and_then(Json::as_u64), Some(2));
        let w = v.get("window").unwrap();
        assert_eq!(w.get("seq").and_then(Json::as_u64), Some(1));
        let evaluated = w.get("counters").and_then(|c| c.get("evaluated")).unwrap();
        assert_eq!(evaluated.get("delta").and_then(Json::as_u64), Some(4));
        assert_eq!(evaluated.get("total").and_then(Json::as_u64), Some(4));
        let lat = w
            .get("histograms")
            .and_then(|h| h.get("latency_us"))
            .unwrap();
        assert_eq!(lat.get("count_delta").and_then(Json::as_u64), Some(1));
        assert_eq!(lat.get("sum_delta_us").and_then(Json::as_u64), Some(30));
    }
}
