//! The micro-batching coalescer: a bounded central queue that gathers
//! eval requests from every connection and flushes them to
//! [`Engine::evaluate_batch_with`] as one batch.
//!
//! A flush happens when the queue reaches the batch-size threshold
//! (`batch_max`) or when the oldest queued request has waited
//! `flush_interval` — whichever comes first. Coalescing turns many
//! single-request callers into engine batches, so the worker pool and the
//! warm caches amortize across connections, at a bounded latency cost of
//! at most one flush interval.
//!
//! Admission control is the queue bound: when `queue_depth` requests are
//! already waiting, new submissions are shed immediately with
//! [`SubmitError::Overloaded`] instead of growing an unbounded backlog.
//! Responses travel back on a per-request rendezvous channel; the engine's
//! streaming `notify` callback sends each one the moment its evaluation
//! finishes, so fast requests in a batch are not held hostage by slow
//! ones.

use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::protocol;
use gbd_engine::{Engine, EvalRequest};
use std::collections::VecDeque;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Coalescer tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CoalescerConfig {
    /// Flush as soon as this many requests are queued (min 1).
    pub batch_max: usize,
    /// Flush when the oldest queued request has waited this long.
    pub flush_interval: Duration,
    /// Admission bound: submissions beyond this many queued requests are
    /// shed (min 1).
    pub queue_depth: usize,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig {
            batch_max: 32,
            flush_interval: Duration::from_micros(500),
            queue_depth: 1024,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at `queue_depth`; the request was shed.
    Overloaded,
    /// The coalescer is draining for shutdown.
    ShuttingDown,
}

/// One admitted request waiting in the queue.
struct Pending {
    /// Wire correlation id, echoed on the response.
    id: u64,
    request: EvalRequest,
    /// Rendezvous back to the submitting connection's writer.
    tx: SyncSender<Json>,
    enqueued_at: Instant,
}

struct Queue {
    pending: VecDeque<Pending>,
    draining: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
    config: CoalescerConfig,
    engine: Arc<Engine>,
    metrics: Arc<ServerMetrics>,
}

/// The running coalescer: submission front end plus its flusher thread.
pub struct Coalescer {
    shared: Arc<Shared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

fn lock_queue(shared: &Shared) -> MutexGuard<'_, Queue> {
    // A panic while holding the queue lock cannot leave the protected
    // state half-updated in a way that matters (the queue is a VecDeque of
    // owned items), so recover the guard instead of propagating poison.
    shared
        .queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Coalescer {
    /// Starts the coalescer and its flusher thread.
    pub fn start(
        engine: Arc<Engine>,
        metrics: Arc<ServerMetrics>,
        config: CoalescerConfig,
    ) -> Arc<Coalescer> {
        let config = CoalescerConfig {
            batch_max: config.batch_max.max(1),
            queue_depth: config.queue_depth.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            config,
            engine,
            metrics,
        });
        let worker_shared = Arc::clone(&shared);
        // Thread spawn failing at startup leaves an empty coalescer;
        // submissions will queue and the drain on shutdown flushes
        // them inline. In practice spawn only fails under resource
        // exhaustion, where the listener would have failed first.
        let flusher = std::thread::Builder::new()
            .name("gbd-flusher".to_string())
            .spawn(move || flusher_loop(&worker_shared))
            .ok();
        Arc::new(Coalescer {
            shared,
            flusher: Mutex::new(flusher),
        })
    }

    /// Submits one eval request. On admission, returns the receiver the
    /// response JSON will arrive on once its evaluation completes.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full (the request is
    /// shed, not queued), [`SubmitError::ShuttingDown`] once draining has
    /// begun.
    pub fn submit(&self, id: u64, request: EvalRequest) -> Result<Receiver<Json>, SubmitError> {
        let mut queue = lock_queue(&self.shared);
        if queue.draining {
            return Err(SubmitError::ShuttingDown);
        }
        if queue.pending.len() >= self.shared.config.queue_depth {
            self.shared.metrics.shed.inc();
            return Err(SubmitError::Overloaded);
        }
        // Capacity 1 and exactly one send per request: the flusher's send
        // never blocks, whether or not the client is still listening.
        let (tx, rx) = mpsc::sync_channel(1);
        queue.pending.push_back(Pending {
            id,
            request,
            tx,
            enqueued_at: Instant::now(),
        });
        self.shared.metrics.admitted.inc();
        drop(queue);
        self.shared.wake.notify_one();
        Ok(rx)
    }

    /// Requests currently queued (not yet handed to the engine).
    pub fn queue_depth(&self) -> usize {
        lock_queue(&self.shared).pending.len()
    }

    /// Begins draining: rejects new submissions, flushes everything still
    /// queued, and joins the flusher thread. Every admitted request gets
    /// its response before this returns. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut queue = lock_queue(&self.shared);
            queue.draining = true;
        }
        self.shared.wake.notify_all();
        let handle = self
            .flusher
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(handle) = handle {
            // The flusher only exits by finishing the drain; a panic there
            // would already have been isolated per-request by the engine.
            let _ = handle.join();
        } else {
            // No flusher thread (spawn failed at startup): drain inline.
            drain_inline(&self.shared);
        }
    }
}

/// What triggered a flush (for the stats counters).
enum FlushCause {
    Size,
    Timer,
}

fn flusher_loop(shared: &Shared) {
    loop {
        let Some((batch, cause)) = next_batch(shared) else {
            return;
        };
        flush(shared, batch, &cause);
    }
}

/// Blocks until a flush is due and takes up to `batch_max` requests, or
/// returns `None` when draining completes with an empty queue.
fn next_batch(shared: &Shared) -> Option<(Vec<Pending>, FlushCause)> {
    let config = &shared.config;
    let mut queue = lock_queue(shared);
    loop {
        if queue.pending.len() >= config.batch_max {
            return Some((take_batch(&mut queue, config.batch_max), FlushCause::Size));
        }
        if queue.draining {
            if queue.pending.is_empty() {
                return None;
            }
            return Some((take_batch(&mut queue, config.batch_max), FlushCause::Timer));
        }
        let Some(oldest) = queue.pending.front() else {
            queue = shared
                .wake
                .wait(queue)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            continue;
        };
        let deadline = oldest.enqueued_at + config.flush_interval;
        let now = Instant::now();
        if now >= deadline {
            return Some((take_batch(&mut queue, config.batch_max), FlushCause::Timer));
        }
        queue = shared
            .wake
            .wait_timeout(queue, deadline - now)
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .0;
    }
}

fn take_batch(queue: &mut Queue, batch_max: usize) -> Vec<Pending> {
    let take = queue.pending.len().min(batch_max);
    queue.pending.drain(..take).collect()
}

/// Evaluates one batch, streaming each response back to its connection as
/// the engine finishes it.
fn flush(shared: &Shared, batch: Vec<Pending>, cause: &FlushCause) {
    let metrics = &shared.metrics;
    metrics.batches_flushed.inc();
    match cause {
        FlushCause::Size => metrics.flushes_by_size.inc(),
        FlushCause::Timer => metrics.flushes_by_timer.inc(),
    }
    metrics.evaluated.add(batch.len() as u64);
    let requests: Vec<EvalRequest> = batch.iter().map(|p| p.request.clone()).collect();
    // Split the end-to-end latency at the flush boundary: everything
    // before `flushed_at` is queue wait (admission control + coalescing
    // delay), everything after is engine compute for this batch.
    let flushed_at = Instant::now();
    // `notify` runs on engine worker threads; `response.index` is the
    // request's position in this batch, which indexes `batch` directly.
    shared.engine.evaluate_batch_with(&requests, |response| {
        let Some(pending) = batch.get(response.index) else {
            return;
        };
        metrics.latency.record(pending.enqueued_at.elapsed());
        metrics
            .queue_wait
            .record(flushed_at.saturating_duration_since(pending.enqueued_at));
        metrics.compute.record(flushed_at.elapsed());
        if let Some(backend) = metrics.backend_latency(response.served_by) {
            backend.record(flushed_at.elapsed());
        }
        let rendered = protocol::render_response(pending.id, response);
        // A send only fails when the connection died while the request was
        // in flight; the result is simply dropped.
        let _ = pending.tx.send(rendered);
    });
}

/// Fallback drain used only when the flusher thread could not be spawned.
fn drain_inline(shared: &Shared) {
    loop {
        let batch = {
            let mut queue = lock_queue(shared);
            if queue.pending.is_empty() {
                return;
            }
            take_batch(&mut queue, shared.config.batch_max)
        };
        flush(shared, batch, &FlushCause::Timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_core::params::SystemParams;
    use gbd_engine::BackendSpec;

    fn request(n: usize) -> EvalRequest {
        EvalRequest::new(
            SystemParams::paper_defaults().with_n_sensors(n),
            BackendSpec::Poisson,
        )
    }

    fn start(config: CoalescerConfig) -> (Arc<Coalescer>, Arc<ServerMetrics>) {
        let metrics = Arc::new(ServerMetrics::new());
        let engine = Arc::new(Engine::with_workers(2));
        (
            Coalescer::start(engine, Arc::clone(&metrics), config),
            metrics,
        )
    }

    #[test]
    fn coalesces_concurrent_submissions_into_one_batch() {
        let (coalescer, metrics) = start(CoalescerConfig {
            batch_max: 8,
            flush_interval: Duration::from_millis(200),
            queue_depth: 64,
        });
        // Submit 8 requests inside one flush interval: the size threshold
        // fires and they ride a single batch.
        let receivers: Vec<_> = (0..8)
            .map(|i| coalescer.submit(i as u64, request(100 + i)).unwrap())
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let response = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(response.get("id").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        }
        assert_eq!(metrics.batches_flushed.get(), 1);
        assert_eq!(metrics.evaluated.get(), 8);
        assert_eq!(metrics.coalescing_factor(), 8.0);
        assert_eq!(metrics.flushes_by_size.get(), 1);
        // Every request in the batch was served by the poisson backend;
        // its per-backend histogram saw all 8.
        assert_eq!(metrics.backend_latency("poisson").unwrap().count(), 8);
        coalescer.shutdown();
    }

    #[test]
    fn timer_flushes_partial_batches() {
        let (coalescer, metrics) = start(CoalescerConfig {
            batch_max: 1000,
            flush_interval: Duration::from_millis(5),
            queue_depth: 64,
        });
        let rx = coalescer.submit(7, request(50)).unwrap();
        let response = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(metrics.flushes_by_timer.get(), 1);
        coalescer.shutdown();
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let (coalescer, metrics) = start(CoalescerConfig {
            batch_max: 1000,
            // Long enough that nothing flushes while we overfill.
            flush_interval: Duration::from_secs(60),
            queue_depth: 3,
        });
        let kept: Vec<_> = (0..3)
            .map(|i| coalescer.submit(i, request(40)).unwrap())
            .collect();
        assert_eq!(
            coalescer.submit(99, request(40)).unwrap_err(),
            SubmitError::Overloaded
        );
        assert_eq!(metrics.shed.get(), 1);
        assert_eq!(coalescer.queue_depth(), 3);
        // Shutdown drains the admitted three; each still gets its answer.
        coalescer.shutdown();
        for rx in kept {
            assert!(rx.recv_timeout(Duration::from_secs(30)).is_ok());
        }
    }

    #[test]
    fn shutdown_rejects_new_work_and_is_idempotent() {
        let (coalescer, _metrics) = start(CoalescerConfig::default());
        coalescer.shutdown();
        assert_eq!(
            coalescer.submit(1, request(40)).unwrap_err(),
            SubmitError::ShuttingDown
        );
        coalescer.shutdown();
    }
}
