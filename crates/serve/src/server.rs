//! The TCP server: accept loop, connection lifecycle, and graceful
//! shutdown.
//!
//! Shutdown (via the `shutdown` verb, [`ServerHandle::shutdown`], or a
//! latched SIGINT/SIGTERM) proceeds in drain order: stop accepting, drain
//! the coalescer (every admitted request gets its response), close the
//! live sockets to wake blocked readers, then join the connection
//! threads.

use crate::coalescer::{Coalescer, CoalescerConfig};
use crate::conn;
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::signals;
use gbd_engine::Engine;
use gbd_obs::{TextEndpoint, Ticker};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything configurable about a server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7070` (`:0` picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// Coalescer: flush when this many requests are queued.
    pub batch_max: usize,
    /// Coalescer: flush when the oldest queued request has waited this
    /// long.
    pub flush_interval: Duration,
    /// Admission bound: queued requests beyond this are shed with an
    /// `overloaded` error.
    pub queue_depth: usize,
    /// Per-connection pipelining bound: a connection with this many
    /// responses outstanding stops being read (TCP backpressure).
    pub max_inflight_per_conn: usize,
    /// Eval requests a single connection may submit over its lifetime
    /// (`conn_limit` errors after); 0 = unlimited.
    pub max_requests_per_conn: u64,
    /// Longest accepted request line in bytes; longer lines are discarded
    /// with a `line_too_long` error.
    pub max_line_bytes: usize,
    /// Watch for SIGINT/SIGTERM and shut down gracefully when one
    /// arrives.
    pub handle_signals: bool,
    /// Address for the plain-text Prometheus exposition endpoint
    /// (`None` disables it; `:0` picks an ephemeral port, reported by
    /// [`Server::metrics_local_addr`]).
    pub metrics_addr: Option<String>,
    /// Windowed-delta resolution: the observability ticker closes one
    /// window per interval.
    pub obs_window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            batch_max: 32,
            flush_interval: Duration::from_micros(500),
            queue_depth: 1024,
            max_inflight_per_conn: 64,
            max_requests_per_conn: 0,
            max_line_bytes: 1 << 20,
            handle_signals: false,
            metrics_addr: None,
            obs_window: Duration::from_secs(1),
        }
    }
}

/// State shared by the accept loop, the connections, and the coalescer.
pub(crate) struct ServerShared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) coalescer: Arc<Coalescer>,
    pub(crate) config: ServeConfig,
    shutdown: AtomicBool,
}

impl ServerShared {
    /// Flips the shutdown flag; the accept loop notices within one poll
    /// tick and runs the drain sequence.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Reads every instrument once (see [`ServerMetrics::snapshot`]).
    pub(crate) fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.coalescer.queue_depth(), &self.engine)
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A handle for observing and stopping a running server from another
/// thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl ServerHandle {
    /// Triggers the same graceful shutdown as the `shutdown` verb.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// The server's metrics (live).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }
}

/// A bound server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    conns: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
    ticker: Mutex<Option<Ticker>>,
    exposition: Mutex<Option<TextEndpoint>>,
    metrics_addr: Option<SocketAddr>,
}

impl Server {
    /// Binds the listener and starts the coalescer (but accepts nothing
    /// until [`run`](Server::run)).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, bad address syntax,
    /// privileged port, …).
    pub fn bind(config: ServeConfig, engine: Arc<Engine>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        if config.handle_signals {
            signals::install();
        }
        let metrics = Arc::new(ServerMetrics::new());
        engine.register_observability(metrics.registry());
        let coalescer = Coalescer::start(
            Arc::clone(&engine),
            Arc::clone(&metrics),
            CoalescerConfig {
                batch_max: config.batch_max,
                flush_interval: config.flush_interval,
                queue_depth: config.queue_depth,
            },
        );
        let depth_probe = Arc::clone(&coalescer);
        metrics
            .registry()
            .gauge("queue_depth", move || depth_probe.queue_depth() as f64);
        let ticker = Ticker::start(Arc::clone(metrics.registry()), config.obs_window);
        let exposition = match &config.metrics_addr {
            None => None,
            Some(addr) => Some(TextEndpoint::bind(
                addr.as_str(),
                Arc::clone(metrics.registry()),
            )?),
        };
        let metrics_addr = exposition.as_ref().map(TextEndpoint::local_addr);
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(ServerShared {
                engine,
                metrics,
                coalescer,
                config,
                shutdown: AtomicBool::new(false),
            }),
            conns: Mutex::new(Vec::new()),
            ticker: Mutex::new(Some(ticker)),
            exposition: Mutex::new(exposition),
            metrics_addr,
        })
    }

    /// The exposition endpoint's bound address (resolves `:0`), when
    /// [`ServeConfig::metrics_addr`] was set.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable handle for shutting the server down from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves connections until shutdown is requested, then
    /// drains and returns. The polling accept loop (rather than a blocking
    /// one) is what lets the shutdown flag and signal latch interrupt it
    /// without self-pipes or platform APIs.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept-loop I/O failures; `WouldBlock` and
    /// per-connection errors are handled internally.
    pub fn run(self) -> io::Result<()> {
        loop {
            if self.shared.shutting_down()
                || (self.shared.config.handle_signals && signals::triggered())
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.spawn_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.reap_finished();
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (e.g. the peer
                // reset before we got to it) should not kill the server.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    continue
                }
                Err(e) => {
                    self.drain();
                    return Err(e);
                }
            }
        }
        self.drain();
        Ok(())
    }

    fn spawn_conn(&self, stream: TcpStream) {
        let metrics = &self.shared.metrics;
        metrics.connections_total.inc();
        metrics.connections_active.fetch_add(1, Ordering::Relaxed);
        let Ok(track) = stream.try_clone() else {
            metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
            return;
        };
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name("gbd-conn".to_string())
            .spawn(move || {
                conn::handle(stream, &shared);
                shared
                    .metrics
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            });
        match spawned {
            Ok(handle) => self
                .conns
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push((track, handle)),
            Err(_) => {
                // Could not spawn a thread for it; drop the connection.
                let _ = track.shutdown(Shutdown::Both);
                metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Frees bookkeeping for connections that already hung up.
    fn reap_finished(&self) {
        let mut conns = self
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut live = Vec::with_capacity(conns.len());
        for (stream, handle) in conns.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push((stream, handle));
            }
        }
        *conns = live;
    }

    /// The drain sequence. Order matters:
    /// 1. The coalescer drains first, so every admitted request resolves
    ///    its response channel — writers finish their queued tails.
    /// 2. The persistent store (if attached) is snapshotted while the
    ///    engine is quiescent, so a restart warm-starts from a compact,
    ///    fsynced log.
    /// 3. The observability ticker stops after one final window (so the
    ///    last partial window's deltas are not lost), the exposition
    ///    endpoint closes, and every watch subscription is reaped — which
    ///    unblocks writers still streaming unbounded watches.
    /// 4. Sockets are then closed read-side, waking readers blocked in
    ///    `read` with EOF.
    /// 5. Connection threads join (their writers already ran dry).
    fn drain(&self) {
        self.shared.coalescer.shutdown();
        // Non-fatal on failure: every spill already hit the append log, so
        // the worst case is a warm start from an uncompacted log.
        if let Some(Err(e)) = self.shared.engine.snapshot_store() {
            eprintln!("gbd-serve: store snapshot on drain failed: {e}");
        }
        let registry = self.shared.metrics.registry();
        registry.sample_window();
        if let Some(mut ticker) = self
            .ticker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            ticker.stop();
        }
        if let Some(mut endpoint) = self
            .exposition
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            endpoint.stop();
        }
        registry.reap_all();
        let mut conns = self
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (stream, _) in conns.iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (_, handle) in conns.drain(..) {
            let _ = handle.join();
        }
    }
}
