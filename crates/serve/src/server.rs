//! The TCP server: accept loop, connection lifecycle, and graceful
//! shutdown.
//!
//! Shutdown (via the `shutdown` verb, [`ServerHandle::shutdown`], or a
//! latched SIGINT/SIGTERM) proceeds in drain order: stop accepting, drain
//! the coalescer (every admitted request gets its response), close the
//! live sockets to wake blocked readers, then join the connection
//! threads.

use crate::coalescer::{Coalescer, CoalescerConfig};
use crate::conn;
use crate::metrics::{ClusterSnapshot, MetricsSnapshot, ServerMetrics};
use crate::replica::ReplicaListener;
use crate::signals;
use gbd_engine::Engine;
use gbd_obs::{TextEndpoint, Ticker};
use gbd_store::Shipper;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything configurable about a server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7070` (`:0` picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// Coalescer: flush when this many requests are queued.
    pub batch_max: usize,
    /// Coalescer: flush when the oldest queued request has waited this
    /// long.
    pub flush_interval: Duration,
    /// Admission bound: queued requests beyond this are shed with an
    /// `overloaded` error.
    pub queue_depth: usize,
    /// Per-connection pipelining bound: a connection with this many
    /// responses outstanding stops being read (TCP backpressure).
    pub max_inflight_per_conn: usize,
    /// Eval requests a single connection may submit over its lifetime
    /// (`conn_limit` errors after); 0 = unlimited.
    pub max_requests_per_conn: u64,
    /// Longest accepted request line in bytes; longer lines are discarded
    /// with a `line_too_long` error.
    pub max_line_bytes: usize,
    /// Watch for SIGINT/SIGTERM and shut down gracefully when one
    /// arrives.
    pub handle_signals: bool,
    /// Address for the plain-text Prometheus exposition endpoint
    /// (`None` disables it; `:0` picks an ephemeral port, reported by
    /// [`Server::metrics_local_addr`]).
    pub metrics_addr: Option<String>,
    /// Windowed-delta resolution: the observability ticker closes one
    /// window per interval.
    pub obs_window: Duration,
    /// Stable shard identity reported in the `metrics` verb's `cluster`
    /// section (defaults to the bound address when unset). Setting any of
    /// the three cluster fields enables the section.
    pub shard_id: Option<String>,
    /// Ship every store append to a standby's replica listener at this
    /// address (requires the engine to have a store attached).
    pub replicate_to: Option<String>,
    /// Accept replicated store records on this address and apply them to
    /// this engine (`:0` picks an ephemeral port, reported by
    /// [`Server::replica_local_addr`]).
    pub replica_listen: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            batch_max: 32,
            flush_interval: Duration::from_micros(500),
            queue_depth: 1024,
            max_inflight_per_conn: 64,
            max_requests_per_conn: 0,
            max_line_bytes: 1 << 20,
            handle_signals: false,
            metrics_addr: None,
            obs_window: Duration::from_secs(1),
            shard_id: None,
            replicate_to: None,
            replica_listen: None,
        }
    }
}

/// Cluster-mode state a shard carries when any of the cluster config
/// fields is set: identity, role, and the outbound shipper (when this
/// shard replicates to a standby).
pub(crate) struct ClusterState {
    shard_id: String,
    role: &'static str,
    shipper: Option<Arc<Shipper>>,
}

/// State shared by the accept loop, the connections, and the coalescer.
pub(crate) struct ServerShared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) coalescer: Arc<Coalescer>,
    pub(crate) config: ServeConfig,
    cluster: Option<ClusterState>,
    shutdown: AtomicBool,
}

impl ServerShared {
    /// Flips the shutdown flag; the accept loop notices within one poll
    /// tick and runs the drain sequence.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Reads every instrument once (see [`ServerMetrics::snapshot`]).
    pub(crate) fn metrics_snapshot(&self) -> MetricsSnapshot {
        let cluster = self.cluster.as_ref().map(|state| {
            let ship = state
                .shipper
                .as_deref()
                .map(Shipper::stats)
                .unwrap_or_default();
            ClusterSnapshot {
                shard_id: state.shard_id.clone(),
                role: state.role,
                shipped_records: ship.shipped_records,
                ship_errors: ship.dropped_records,
                ship_connects: ship.connects,
                applied_records: self.metrics.replica_applied.get(),
                apply_errors: self.metrics.replica_apply_errors.get(),
            }
        });
        self.metrics
            .snapshot(self.coalescer.queue_depth(), &self.engine, cluster)
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A handle for observing and stopping a running server from another
/// thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl ServerHandle {
    /// Triggers the same graceful shutdown as the `shutdown` verb.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// The server's metrics (live).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }
}

/// A bound server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    conns: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
    ticker: Mutex<Option<Ticker>>,
    exposition: Mutex<Option<TextEndpoint>>,
    metrics_addr: Option<SocketAddr>,
    replica: Mutex<Option<ReplicaListener>>,
    replica_addr: Option<SocketAddr>,
}

impl Server {
    /// Binds the listener and starts the coalescer (but accepts nothing
    /// until [`run`](Server::run)).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, bad address syntax,
    /// privileged port, …).
    pub fn bind(config: ServeConfig, engine: Arc<Engine>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        if config.handle_signals {
            signals::install();
        }
        let metrics = Arc::new(ServerMetrics::new());
        engine.register_observability(metrics.registry());
        let coalescer = Coalescer::start(
            Arc::clone(&engine),
            Arc::clone(&metrics),
            CoalescerConfig {
                batch_max: config.batch_max,
                flush_interval: config.flush_interval,
                queue_depth: config.queue_depth,
            },
        );
        let depth_probe = Arc::clone(&coalescer);
        metrics
            .registry()
            .gauge("queue_depth", move || depth_probe.queue_depth() as f64);
        let ticker = Ticker::start(Arc::clone(metrics.registry()), config.obs_window);
        let exposition = match &config.metrics_addr {
            None => None,
            Some(addr) => Some(TextEndpoint::bind(
                addr.as_str(),
                Arc::clone(metrics.registry()),
            )?),
        };
        let metrics_addr = exposition.as_ref().map(TextEndpoint::local_addr);

        let replica = match &config.replica_listen {
            None => None,
            Some(addr) => Some(ReplicaListener::bind(
                addr.as_str(),
                Arc::clone(&engine),
                Arc::clone(&metrics.replica_applied),
                Arc::clone(&metrics.replica_apply_errors),
            )?),
        };
        let replica_addr = replica.as_ref().map(ReplicaListener::local_addr);

        let shipper = match &config.replicate_to {
            None => None,
            Some(target) => {
                let Some(store) = engine.store_handle() else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "replicate-to requires the engine to have a store attached",
                    ));
                };
                let shipper = Shipper::start(Arc::clone(store), target.as_str(), 4096)?;
                // The tee catches appends from here on; the resync request
                // makes the shipper replay the live index on its next pass,
                // closing the race with appends that landed before the tee.
                let tee = Arc::clone(&shipper);
                store.set_tee(move |kind, key, value| tee.ship(kind, key, value));
                shipper.request_resync();
                let probe = Arc::clone(&shipper);
                metrics
                    .registry()
                    .polled_counter("replica_shipped_records", move || {
                        probe.stats().shipped_records
                    });
                let probe = Arc::clone(&shipper);
                metrics
                    .registry()
                    .polled_counter("replica_dropped_records", move || {
                        probe.stats().dropped_records
                    });
                let probe = Arc::clone(&shipper);
                metrics
                    .registry()
                    .polled_counter("replica_connects", move || probe.stats().connects);
                Some(shipper)
            }
        };

        let in_cluster = config.shard_id.is_some()
            || config.replicate_to.is_some()
            || config.replica_listen.is_some();
        let cluster = in_cluster.then(|| ClusterState {
            shard_id: config
                .shard_id
                .clone()
                .unwrap_or_else(|| local_addr.to_string()),
            role: if shipper.is_some() {
                "primary"
            } else if replica.is_some() {
                "standby"
            } else {
                "single"
            },
            shipper,
        });

        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(ServerShared {
                engine,
                metrics,
                coalescer,
                config,
                cluster,
                shutdown: AtomicBool::new(false),
            }),
            conns: Mutex::new(Vec::new()),
            ticker: Mutex::new(Some(ticker)),
            exposition: Mutex::new(exposition),
            metrics_addr,
            replica: Mutex::new(replica),
            replica_addr,
        })
    }

    /// The replica listener's bound address (resolves `:0`), when
    /// [`ServeConfig::replica_listen`] was set.
    pub fn replica_local_addr(&self) -> Option<SocketAddr> {
        self.replica_addr
    }

    /// The exposition endpoint's bound address (resolves `:0`), when
    /// [`ServeConfig::metrics_addr`] was set.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable handle for shutting the server down from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves connections until shutdown is requested, then
    /// drains and returns. The polling accept loop (rather than a blocking
    /// one) is what lets the shutdown flag and signal latch interrupt it
    /// without self-pipes or platform APIs.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept-loop I/O failures; `WouldBlock` and
    /// per-connection errors are handled internally.
    pub fn run(self) -> io::Result<()> {
        loop {
            if self.shared.shutting_down()
                || (self.shared.config.handle_signals && signals::triggered())
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.spawn_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.reap_finished();
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (e.g. the peer
                // reset before we got to it) should not kill the server.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    continue
                }
                Err(e) => {
                    self.drain();
                    return Err(e);
                }
            }
        }
        self.drain();
        Ok(())
    }

    fn spawn_conn(&self, stream: TcpStream) {
        // Responses and pushed stream events are small single-line writes;
        // Nagle would park each behind the peer's delayed ACK.
        let _ = stream.set_nodelay(true);
        let metrics = &self.shared.metrics;
        metrics.connections_total.inc();
        metrics.connections_active.fetch_add(1, Ordering::Relaxed);
        let Ok(track) = stream.try_clone() else {
            metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
            return;
        };
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name("gbd-conn".to_string())
            .spawn(move || {
                conn::handle(stream, &shared);
                shared
                    .metrics
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            });
        match spawned {
            Ok(handle) => self
                .conns
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push((track, handle)),
            Err(_) => {
                // Could not spawn a thread for it; drop the connection.
                let _ = track.shutdown(Shutdown::Both);
                metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Frees bookkeeping for connections that already hung up.
    fn reap_finished(&self) {
        let mut conns = self
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut live = Vec::with_capacity(conns.len());
        for (stream, handle) in conns.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push((stream, handle));
            }
        }
        *conns = live;
    }

    /// The drain sequence. Order matters:
    /// 1. The coalescer drains first, so every admitted request resolves
    ///    its response channel — writers finish their queued tails.
    /// 2. The persistent store (if attached) is snapshotted while the
    ///    engine is quiescent, so a restart warm-starts from a compact,
    ///    fsynced log.
    /// 3. Replication winds down: the shipper's queued tail is flushed to
    ///    the standby (bounded), the store tee detaches, and the replica
    ///    listener (if any) stops accepting.
    /// 4. The observability ticker stops after one final window (so the
    ///    last partial window's deltas are not lost), the exposition
    ///    endpoint closes, and every watch subscription is reaped — which
    ///    unblocks writers still streaming unbounded watches.
    /// 5. Sockets are then closed read-side, waking readers blocked in
    ///    `read` with EOF.
    /// 6. Connection threads join (their writers already ran dry).
    fn drain(&self) {
        self.shared.coalescer.shutdown();
        // Non-fatal on failure: every spill already hit the append log, so
        // the worst case is a warm start from an uncompacted log.
        if let Some(Err(e)) = self.shared.engine.snapshot_store() {
            eprintln!("gbd-serve: store snapshot on drain failed: {e}");
        }
        // Replication winds down after the last batch resolved: push the
        // queued tail to the standby (bounded wait — a dead standby must
        // not stall the drain), detach the tee, then stop both ends.
        if let Some(cluster) = &self.shared.cluster {
            if let Some(shipper) = &cluster.shipper {
                let _ = shipper.flush(Duration::from_secs(2));
                if let Some(store) = self.shared.engine.store_handle() {
                    store.clear_tee();
                }
                shipper.stop();
            }
        }
        if let Some(replica) = self
            .replica
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            replica.stop();
        }
        let registry = self.shared.metrics.registry();
        registry.sample_window();
        if let Some(mut ticker) = self
            .ticker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            ticker.stop();
        }
        if let Some(mut endpoint) = self
            .exposition
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            endpoint.stop();
        }
        registry.reap_all();
        let mut conns = self
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (stream, _) in conns.iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (_, handle) in conns.drain(..) {
            let _ = handle.join();
        }
    }
}
