//! JSON values for the wire protocol: a strict recursive-descent parser
//! and a deterministic renderer.
//!
//! The workspace has no serialization dependency, and the protocol is a
//! handful of flat schemas — a small value tree is all that is needed.
//! The parser is strict RFC-8259 (no trailing commas, no comments, no
//! `NaN`), rejects input deeper than [`MAX_DEPTH`] (protocol messages are
//! nearly flat; deep nesting is an attack, not a request), and reports
//! errors with a byte offset. The renderer emits keys in insertion order
//! and floats with Rust's shortest round-trip formatting, so a float that
//! crosses the wire and comes back parses to the bit-identical value.

use std::fmt::Write as _;

/// Maximum container nesting the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal that fits `i64` (kept exact, not routed through
    /// `f64`).
    Int(i64),
    /// Any other number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys (duplicates are rejected by
    /// the parser).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(value)
    }

    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys, if this is an object.
    pub fn keys(&self) -> Option<impl Iterator<Item = &str>> {
        match self {
            Json::Obj(fields) => Some(fields.iter().map(|(k, _)| k.as_str())),
            _ => None,
        }
    }

    /// Numeric view (`Int` or `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// Exact integer view (`Int` only — `1.5` is not an integer, and
    /// `1.0` arrived as a float on purpose or by mistake; reject both).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Non-negative exact integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Non-negative exact integer view as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the bytes
                    // are valid UTF-8 by construction).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the four hex digits after `\u` (the `\u` itself already
    /// consumed), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        if (0xD800..0xDC00).contains(&unit) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.err("invalid codepoint"));
                }
            }
            Err(self.err("unpaired surrogate"))
        } else if (0xDC00..0xE000).contains(&unit) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(unit).ok_or_else(|| self.err("invalid codepoint"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_shapes() {
        let v = Json::parse(r#"{"id":7,"verb":"eval","params":{"n":120,"pd":0.9}}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("verb").and_then(Json::as_str), Some("eval"));
        let params = v.get("params").unwrap();
        assert_eq!(params.get("n").and_then(Json::as_usize), Some(120));
        assert_eq!(params.get("pd").and_then(Json::as_f64), Some(0.9));
    }

    #[test]
    fn round_trips_floats_bit_exactly() {
        for x in [
            0.1 + 0.2,
            1.0 / 3.0,
            0.937_216_431,
            f64::MIN_POSITIVE,
            1e300,
        ] {
            let rendered = Json::Num(x).render();
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9_007_199_254_740_993));
        assert_eq!(v.render(), "9007199254740993");
        // Out-of-range integers degrade to floats rather than erroring.
        assert!(matches!(
            Json::parse("99999999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "truee",
            "01",
            "1.",
            "-",
            "\"unterminated",
            "\"bad\\q\"",
            "{\"a\":1,\"a\":2}",
            "[1] []",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quote\" back\\slash \t ünïcode 🛰";
        let rendered = Json::Str(original.to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(original));
        // \u escapes, including a surrogate pair.
        let v = Json::parse(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn renders_deterministically() {
        let v = Json::obj(vec![
            ("ok".into(), true.into()),
            ("p".into(), 0.5.into()),
            ("tags".into(), Json::Arr(vec![Json::Null, 3i64.into()])),
        ]);
        assert_eq!(v.render(), r#"{"ok":true,"p":0.5,"tags":[null,3]}"#);
    }

    #[test]
    fn accessors_are_type_strict() {
        let v = Json::parse(r#"{"n":3.5,"m":-1,"s":"x"}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_usize), None);
        assert_eq!(v.get("m").and_then(Json::as_u64), None);
        assert_eq!(v.get("m").and_then(Json::as_i64), Some(-1));
        assert_eq!(v.get("s").and_then(Json::as_f64), None);
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.5));
    }
}
