//! The JSON-lines wire protocol: one request object per line in, one
//! response object per line out.
//!
//! Requests map 1:1 onto [`gbd_engine::EvalRequest`] — backend selection,
//! fallback chains, deadlines, and sim retries all cross the wire. Parsing
//! is strict: unknown fields, wrong types, and duplicate keys are rejected
//! with a [`ErrorCode::BadRequest`] carrying the offending detail, so a
//! client typo cannot silently evaluate the wrong operating point.
//!
//! See `docs/SERVING.md` for the full schema reference.

use crate::json::Json;
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_core::s_approach::SOptions;
use gbd_engine::{
    BackendSpec, EvalError, EvalOptions, EvalRequest, EvalResponse, RetryPolicy, SimulationSpec,
};
use gbd_field::sensor::SensorId;
use gbd_geometry::point::Point;
use gbd_sim::config::{BoundaryPolicy, DeploymentSpec, MotionSpec};
use gbd_sim::reports::{DetectionReport, ReportKind};
use std::time::Duration;

/// Paper-default system parameters a request's `params` object overrides
/// field by field (the same defaults the CLI uses).
pub mod defaults {
    /// Square field side in meters.
    pub const FIELD_M: f64 = 32_000.0;
    /// Deployed sensors.
    pub const N_SENSORS: usize = 240;
    /// Sensing range in meters.
    pub const SENSING_RANGE_M: f64 = 1_000.0;
    /// Target speed in m/s.
    pub const SPEED_MPS: f64 = 10.0;
    /// Period length in seconds.
    pub const PERIOD_S: f64 = 60.0;
    /// Per-period detection probability.
    pub const PD: f64 = 0.9;
    /// Observation periods.
    pub const M_PERIODS: usize = 20;
    /// Report threshold.
    pub const K: usize = 5;
}

/// Machine-readable error classes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line failed to parse or validate.
    BadRequest,
    /// The request line exceeded the configured byte limit.
    LineTooLong,
    /// The admission queue was full; the request was shed unevaluated.
    Overloaded,
    /// The server is draining; no new requests are admitted.
    ShuttingDown,
    /// The connection reached its configured per-connection request limit.
    ConnLimit,
    /// The backend (and every fallback) rejected the request or failed.
    EvalFailed,
    /// The request's evaluation panicked (isolated to this request).
    WorkerPanicked,
    /// The request's deadline passed before evaluation finished.
    DeadlineExceeded,
    /// The shard this request hashes to is down and no standby could
    /// serve it; the request was shed unevaluated and is safe to retry.
    ShardUnavailable,
}

impl ErrorCode {
    /// The stable string clients match on.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::ConnLimit => "conn_limit",
            ErrorCode::EvalFailed => "eval_failed",
            ErrorCode::WorkerPanicked => "worker_panicked",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShardUnavailable => "shard_unavailable",
        }
    }
}

/// A selectable section of the `metrics` verb's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Server counters: admission, batching, connections, per-verb counts.
    Server,
    /// Engine cache counters.
    Cache,
    /// Persistent-store status.
    Store,
    /// Latency/queue-wait/compute and per-backend histograms.
    Histograms,
    /// Cluster membership: shard identity and store replication. Rendered
    /// only when requested explicitly, so the default payload keeps its
    /// pre-cluster shape.
    Cluster,
    /// Streaming detection sessions: open sessions, reports ingested,
    /// live/expired/evicted tracks, events emitted, report→event latency.
    /// Rendered only when requested explicitly, like [`Section::Cluster`].
    Stream,
}

impl Section {
    /// Parses a wire section name.
    pub fn from_name(name: &str) -> Option<Section> {
        match name {
            "server" => Some(Section::Server),
            "cache" => Some(Section::Cache),
            "store" => Some(Section::Store),
            "histograms" => Some(Section::Histograms),
            "cluster" => Some(Section::Cluster),
            "stream" => Some(Section::Stream),
            _ => None,
        }
    }
}

/// What a well-formed request line asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// Evaluate one detection-probability request through the engine.
    Eval(Box<EvalRequest>),
    /// Report the versioned metrics payload (selected [`Section`]s; empty
    /// means all).
    Metrics {
        /// Requested sections; empty selects every section.
        sections: Vec<Section>,
    },
    /// Stream windowed metric deltas until cancelled or disconnected.
    Watch {
        /// Stop after this many windows; 0 streams until `unwatch` or
        /// disconnect.
        windows: u64,
        /// Replay the retained window ring before streaming live windows.
        replay: bool,
    },
    /// Cancel every `watch` stream on this connection.
    Unwatch,
    /// Deprecated alias: the pre-redesign server counters payload.
    Stats,
    /// Deprecated alias: the pre-redesign persistent-store payload.
    Store,
    /// Liveness probe; answers immediately, bypassing the coalescer.
    Ping,
    /// Begin graceful shutdown (drain in-flight batches, then exit).
    Shutdown,
    /// Open a streaming detection session on this connection.
    StreamOpen(Box<StreamOpenSpec>),
    /// Ingest a batch of node reports into this connection's open session.
    Report {
        /// The batched reports (kind is always `TrueDetection` on the wire:
        /// a base station has no ground truth — filtering clutter is the
        /// detector's job).
        reports: Vec<DetectionReport>,
    },
    /// Close this connection's open streaming session.
    StreamClose,
}

/// Parameters of a `stream_open` request: the system parameters define the
/// velocity-feasibility rule (`speed`, `period_s`, `rs`), the group size
/// `k`, and the window `m`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOpenSpec {
    /// System parameters (same `params` object as `eval`).
    pub params: SystemParams,
    /// Whether track distances wrap around the field torus (matches the
    /// simulator's default boundary policy).
    pub torus: bool,
    /// Cap on live DP entries for the session; 0 selects the default.
    pub max_tracks: usize,
}

/// A parsed request line: client-chosen correlation id plus the verb.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Echoed verbatim on the response so clients can pipeline.
    pub id: u64,
    /// The requested operation.
    pub verb: Verb,
}

/// A request rejection, carrying whatever id could be salvaged.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// The request's `id` if it parsed far enough to extract one.
    pub id: Option<u64>,
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Parses one request line into an [`Envelope`].
///
/// # Errors
///
/// Returns a [`WireError`] (always [`ErrorCode::BadRequest`] from this
/// function) naming the first malformed field; the error echoes the `id`
/// when the line parsed far enough to contain a valid one.
pub fn parse_line(line: &str) -> Result<Envelope, WireError> {
    let root = Json::parse(line).map_err(|e| WireError {
        id: None,
        code: ErrorCode::BadRequest,
        message: format!("invalid JSON: {e}"),
    })?;
    // Salvage the id before strict validation so even a rejected request
    // gets a correlatable error.
    let salvaged_id = root.get("id").and_then(Json::as_u64);
    let fail = |message: String| WireError {
        id: salvaged_id,
        code: ErrorCode::BadRequest,
        message,
    };
    if !matches!(root, Json::Obj(_)) {
        return Err(fail("request must be a JSON object".to_string()));
    }
    let id = match root.get("id") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| fail("`id` must be a non-negative integer".to_string()))?,
        None => return Err(fail("missing `id`".to_string())),
    };
    let verb_name = match root.get("verb") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| fail("`verb` must be a string".to_string()))?,
        None => return Err(fail("missing `verb`".to_string())),
    };
    let verb = match verb_name {
        "eval" => {
            check_fields(
                &root,
                &["id", "verb", "params", "backend", "fallbacks", "options"],
            )
            .map_err(&fail)?;
            let request = parse_eval(&root).map_err(&fail)?;
            Verb::Eval(Box::new(request))
        }
        "metrics" => {
            check_fields(&root, &["id", "verb", "sections"]).map_err(&fail)?;
            let sections = match root.get("sections") {
                None => Vec::new(),
                Some(list) => {
                    let items = list
                        .as_arr()
                        .ok_or_else(|| fail("`sections` must be an array".to_string()))?;
                    items
                        .iter()
                        .map(|v| {
                            v.as_str().and_then(Section::from_name).ok_or_else(|| {
                                fail(
                                    "`sections` entries must be one of: server, cache, \
                                         store, histograms, cluster, stream"
                                        .to_string(),
                                )
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            Verb::Metrics { sections }
        }
        "watch" => {
            check_fields(&root, &["id", "verb", "windows", "replay"]).map_err(&fail)?;
            Verb::Watch {
                windows: get_u64(&root, "windows", 0).map_err(&fail)?,
                replay: get_bool(&root, "replay", false).map_err(&fail)?,
            }
        }
        "stream_open" => {
            check_fields(&root, &["id", "verb", "params", "boundary", "max_tracks"])
                .map_err(&fail)?;
            let params = match root.get("params") {
                None => params_from(&Json::Obj(Vec::new())).map_err(&fail)?,
                Some(obj) => params_from(obj).map_err(&fail)?,
            };
            let torus = match root.get("boundary").map(Json::as_str) {
                None | Some(Some("torus")) => true,
                Some(Some("bounded")) => false,
                Some(_) => {
                    return Err(fail(
                        "`boundary` must be \"bounded\" or \"torus\"".to_string(),
                    ))
                }
            };
            Verb::StreamOpen(Box::new(StreamOpenSpec {
                params,
                torus,
                max_tracks: get_usize(&root, "max_tracks", 0).map_err(&fail)?,
            }))
        }
        "report" => {
            check_fields(&root, &["id", "verb", "reports"]).map_err(&fail)?;
            let items = root
                .get("reports")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail("`reports` must be an array".to_string()))?;
            let reports = items
                .iter()
                .map(parse_report)
                .collect::<Result<Vec<_>, _>>()
                .map_err(&fail)?;
            Verb::Report { reports }
        }
        "stats" | "store" | "ping" | "shutdown" | "unwatch" | "stream_close" => {
            check_fields(&root, &["id", "verb"]).map_err(&fail)?;
            match verb_name {
                "stats" => Verb::Stats,
                "store" => Verb::Store,
                "ping" => Verb::Ping,
                "unwatch" => Verb::Unwatch,
                "stream_close" => Verb::StreamClose,
                _ => Verb::Shutdown,
            }
        }
        other => {
            return Err(fail(format!(
                "unknown verb `{other}` (expected eval, metrics, watch, unwatch, stats, \
                 store, ping, shutdown, stream_open, report, or stream_close)"
            )))
        }
    };
    Ok(Envelope { id, verb })
}

/// Parses one wire report: `{"sensor":<id>,"period":<p>,"x":<m>,"y":<m>}`.
/// All four fields are required — a report with a defaulted position or
/// period would silently corrupt the track state.
fn parse_report(obj: &Json) -> Result<DetectionReport, String> {
    check_fields(obj, &["sensor", "period", "x", "y"])?;
    let sensor = obj
        .get("sensor")
        .and_then(Json::as_usize)
        .ok_or_else(|| "report `sensor` must be a non-negative integer".to_string())?;
    let period = obj
        .get("period")
        .and_then(Json::as_usize)
        .filter(|&p| p > 0)
        .ok_or_else(|| "report `period` must be a positive integer".to_string())?;
    let coord = |key: &str| {
        obj.get(key)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite())
            .ok_or_else(|| format!("report `{key}` must be a finite number"))
    };
    let x = coord("x")?;
    let y = coord("y")?;
    Ok(DetectionReport::new(
        SensorId(sensor),
        period,
        Point::new(x, y),
        ReportKind::TrueDetection,
    ))
}

/// Rejects any object key outside `allowed`, so client typos surface as
/// errors instead of silently evaluating defaults.
fn check_fields(obj: &Json, allowed: &[&str]) -> Result<(), String> {
    let Some(keys) = obj.keys() else {
        return Err("expected a JSON object".to_string());
    };
    for key in keys {
        if !allowed.contains(&key) {
            return Err(format!(
                "unknown field `{key}` (expected one of: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn get_f64(obj: &Json, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

fn get_usize(obj: &Json, key: &str, default: usize) -> Result<usize, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn get_u64(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn get_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn parse_eval(root: &Json) -> Result<EvalRequest, String> {
    let params = match root.get("params") {
        None => params_from(&Json::Obj(Vec::new()))?,
        Some(obj) => params_from(obj)?,
    };
    let backend = match root.get("backend") {
        None => BackendSpec::ms_default(),
        Some(spec) => backend_from(spec)?,
    };
    let fallbacks = match root.get("fallbacks") {
        None => Vec::new(),
        Some(list) => {
            let items = list
                .as_arr()
                .ok_or_else(|| "`fallbacks` must be an array".to_string())?;
            items
                .iter()
                .map(backend_from)
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    let options = match root.get("options") {
        None => EvalOptions::default(),
        Some(obj) => options_from(obj)?,
    };
    Ok(EvalRequest {
        params,
        backend,
        fallbacks,
        options,
    })
}

fn params_from(obj: &Json) -> Result<SystemParams, String> {
    check_fields(
        obj,
        &[
            "field",
            "field_width",
            "field_height",
            "n",
            "rs",
            "speed",
            "period_s",
            "pd",
            "m",
            "k",
        ],
    )?;
    let field = get_f64(obj, "field", defaults::FIELD_M)?;
    let width = get_f64(obj, "field_width", field)?;
    let height = get_f64(obj, "field_height", field)?;
    SystemParams::new(
        width,
        height,
        get_usize(obj, "n", defaults::N_SENSORS)?,
        get_f64(obj, "rs", defaults::SENSING_RANGE_M)?,
        get_f64(obj, "speed", defaults::SPEED_MPS)?,
        get_f64(obj, "period_s", defaults::PERIOD_S)?,
        get_f64(obj, "pd", defaults::PD)?,
        get_usize(obj, "m", defaults::M_PERIODS)?,
        get_usize(obj, "k", defaults::K)?,
    )
    .map_err(|e| format!("invalid params: {e}"))
}

fn backend_from(spec: &Json) -> Result<BackendSpec, String> {
    let kind = spec
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "backend needs a string `kind`".to_string())?;
    match kind {
        "ms" => {
            check_fields(spec, &["kind", "g", "gh", "eps"])?;
            let d = MsOptions::default();
            Ok(BackendSpec::Ms(MsOptions {
                g: get_usize(spec, "g", d.g)?,
                gh: get_usize(spec, "gh", d.gh)?,
                eps: get_f64(spec, "eps", d.eps)?,
            }))
        }
        "s" => {
            check_fields(spec, &["kind", "cap"])?;
            Ok(BackendSpec::S(SOptions {
                cap_sensors: get_usize(spec, "cap", SOptions::default().cap_sensors)?,
            }))
        }
        "exact" => {
            check_fields(spec, &["kind", "cap"])?;
            Ok(BackendSpec::Exact {
                saturation_cap: get_usize(spec, "cap", 0)?,
            })
        }
        "t" => {
            check_fields(spec, &["kind", "g", "gh", "max_states"])?;
            let d = MsOptions::default();
            Ok(BackendSpec::T {
                opts: MsOptions {
                    g: get_usize(spec, "g", d.g)?,
                    gh: get_usize(spec, "gh", d.gh)?,
                    eps: d.eps,
                },
                max_states: get_usize(spec, "max_states", 2_000_000)?,
            })
        }
        "poisson" => {
            check_fields(spec, &["kind"])?;
            Ok(BackendSpec::Poisson)
        }
        "sim" => {
            check_fields(
                spec,
                &[
                    "kind",
                    "trials",
                    "seed",
                    "motion",
                    "boundary",
                    "false_alarm_rate",
                    "awake_probability",
                    "deployment",
                    "threads",
                ],
            )?;
            let d = SimulationSpec::default();
            let motion = match spec.get("motion") {
                None => d.motion,
                Some(m) => motion_from(m)?,
            };
            let boundary = match spec.get("boundary").map(Json::as_str) {
                None => d.boundary,
                Some(Some("bounded")) => BoundaryPolicy::Bounded,
                Some(Some("torus")) => BoundaryPolicy::Torus,
                Some(_) => {
                    return Err("`boundary` must be \"bounded\" or \"torus\"".to_string())
                }
            };
            let deployment = match spec.get("deployment") {
                None => d.deployment,
                Some(dep) => deployment_from(dep)?,
            };
            Ok(BackendSpec::Simulation(SimulationSpec {
                trials: get_u64(spec, "trials", d.trials)?,
                seed: get_u64(spec, "seed", d.seed)?,
                motion,
                boundary,
                false_alarm_rate: get_f64(spec, "false_alarm_rate", d.false_alarm_rate)?,
                awake_probability: get_f64(spec, "awake_probability", d.awake_probability)?,
                deployment,
                threads: get_usize(spec, "threads", d.threads)?,
            }))
        }
        other => Err(format!(
            "unknown backend kind `{other}` (expected ms, s, exact, t, poisson, or sim)"
        )),
    }
}

fn motion_from(m: &Json) -> Result<MotionSpec, String> {
    let kind = m
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "motion needs a string `kind`".to_string())?;
    match kind {
        "straight" => {
            check_fields(m, &["kind"])?;
            Ok(MotionSpec::Straight)
        }
        "random_walk" => {
            check_fields(m, &["kind", "max_turn"])?;
            Ok(MotionSpec::RandomWalk {
                max_turn: get_f64(m, "max_turn", std::f64::consts::FRAC_PI_4)?,
            })
        }
        "varying_speed" => {
            check_fields(m, &["kind", "v_min", "v_max"])?;
            Ok(MotionSpec::VaryingSpeed {
                v_min: get_f64(m, "v_min", 5.0)?,
                v_max: get_f64(m, "v_max", 15.0)?,
            })
        }
        other => Err(format!(
            "unknown motion kind `{other}` (expected straight, random_walk, or varying_speed)"
        )),
    }
}

fn deployment_from(dep: &Json) -> Result<DeploymentSpec, String> {
    let kind = dep
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "deployment needs a string `kind`".to_string())?;
    match kind {
        "uniform" => {
            check_fields(dep, &["kind"])?;
            Ok(DeploymentSpec::UniformRandom)
        }
        "grid" => {
            check_fields(dep, &["kind", "jitter"])?;
            Ok(DeploymentSpec::Grid {
                jitter: get_f64(dep, "jitter", 0.0)?,
            })
        }
        other => Err(format!(
            "unknown deployment kind `{other}` (expected uniform or grid)"
        )),
    }
}

fn options_from(obj: &Json) -> Result<EvalOptions, String> {
    check_fields(obj, &["k_values", "bypass_cache", "deadline_ms", "retry"])?;
    let k_values = match obj.get("k_values") {
        None => Vec::new(),
        Some(list) => list
            .as_arr()
            .ok_or_else(|| "`k_values` must be an array".to_string())?
            .iter()
            .map(|v| {
                v.as_usize().ok_or_else(|| {
                    "`k_values` entries must be non-negative integers".to_string()
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let deadline = match obj.get("deadline_ms") {
        None => None,
        Some(v) => {
            let ms = v
                .as_f64()
                .filter(|ms| ms.is_finite() && *ms >= 0.0)
                .ok_or_else(|| "`deadline_ms` must be a non-negative number".to_string())?;
            Some(Duration::from_secs_f64(ms / 1_000.0))
        }
    };
    let retry = match obj.get("retry") {
        None => None,
        Some(r) => {
            check_fields(r, &["max_retries", "backoff_ms"])?;
            let max_retries = get_usize(r, "max_retries", 0)?;
            let max_retries = u32::try_from(max_retries)
                .map_err(|_| "`max_retries` too large".to_string())?;
            let policy = RetryPolicy::new(max_retries);
            let policy = match obj.get("retry").and_then(|r| r.get("backoff_ms")) {
                None => policy,
                Some(v) => {
                    let ms = v
                        .as_f64()
                        .filter(|ms| ms.is_finite() && *ms >= 0.0)
                        .ok_or_else(|| {
                            "`backoff_ms` must be a non-negative number".to_string()
                        })?;
                    policy.with_base_backoff(Duration::from_secs_f64(ms / 1_000.0))
                }
            };
            Some(policy)
        }
    };
    Ok(EvalOptions {
        k_values,
        bypass_cache: get_bool(obj, "bypass_cache", false)?,
        deadline,
        retry,
    })
}

/// Renders an engine response as a wire response object.
///
/// Detection probabilities use Rust's shortest round-trip float formatting,
/// so the value a client parses back is bit-identical to what the engine
/// computed.
pub fn render_response(id: u64, response: &EvalResponse) -> Json {
    match &response.outcome {
        Ok(output) => {
            let mut fields = vec![
                ("id".to_string(), Json::Int(id as i64)),
                ("ok".to_string(), Json::Bool(true)),
                ("backend".to_string(), Json::from(response.backend)),
                ("served_by".to_string(), Json::from(response.served_by)),
                ("degraded".to_string(), Json::Bool(response.degraded)),
                (
                    "detection".to_string(),
                    Json::Arr(
                        response
                            .detection
                            .iter()
                            .map(|&(k, p)| Json::Arr(vec![Json::from(k), Json::Num(p)]))
                            .collect(),
                    ),
                ),
                (
                    "duration_us".to_string(),
                    Json::from(response.duration.as_micros() as u64),
                ),
                (
                    "cache".to_string(),
                    Json::obj(vec![
                        ("hits".to_string(), Json::from(response.cache.hits)),
                        ("misses".to_string(), Json::from(response.cache.misses)),
                    ]),
                ),
            ];
            if let Some(sim) = output.simulation() {
                fields.push((
                    "sim".to_string(),
                    Json::obj(vec![
                        ("trials".to_string(), Json::from(sim.trials)),
                        ("detections".to_string(), Json::from(sim.detections)),
                        ("ci_low".to_string(), Json::Num(sim.confidence.lo)),
                        ("ci_high".to_string(), Json::Num(sim.confidence.hi)),
                    ]),
                ));
            }
            Json::Obj(fields)
        }
        Err(error) => {
            let code = match error {
                EvalError::WorkerPanicked { .. } => ErrorCode::WorkerPanicked,
                EvalError::DeadlineExceeded { .. } => ErrorCode::DeadlineExceeded,
                _ => ErrorCode::EvalFailed,
            };
            error_response(Some(id), code, &error.to_string())
        }
    }
}

/// Renders a structured error response; `id` is `null` when the request
/// line was too broken to carry one.
pub fn error_response(id: Option<u64>, code: ErrorCode, message: &str) -> Json {
    Json::obj(vec![
        (
            "id".to_string(),
            id.map_or(Json::Null, |v| Json::Int(v as i64)),
        ),
        ("ok".to_string(), Json::Bool(false)),
        (
            "error".to_string(),
            Json::obj(vec![
                ("code".to_string(), Json::from(code.as_str())),
                ("message".to_string(), Json::from(message)),
            ]),
        ),
    ])
}

/// Renders the `ping` reply.
pub fn pong(id: u64) -> Json {
    Json::obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        ("pong".to_string(), Json::Bool(true)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_eval() {
        let env = parse_line(r#"{"id":1,"verb":"eval"}"#).unwrap();
        assert_eq!(env.id, 1);
        let Verb::Eval(req) = env.verb else {
            panic!("expected eval");
        };
        assert_eq!(req.params, SystemParams::paper_defaults());
        assert_eq!(req.backend, BackendSpec::ms_default());
        assert!(req.fallbacks.is_empty());
        assert_eq!(req.options, EvalOptions::default());
    }

    #[test]
    fn parses_full_eval() {
        let line = r#"{"id":9,"verb":"eval",
            "params":{"n":120,"k":3,"m":10,"pd":0.8,"field":16000,"rs":800,"speed":12.5},
            "backend":{"kind":"sim","trials":200,"seed":42,
                       "motion":{"kind":"random_walk","max_turn":0.5},
                       "boundary":"torus","deployment":{"kind":"grid","jitter":0.25},
                       "false_alarm_rate":0.001,"awake_probability":0.95},
            "fallbacks":[{"kind":"ms","g":4,"gh":4},{"kind":"poisson"}],
            "options":{"k_values":[1,3,5],"bypass_cache":true,"deadline_ms":250,
                       "retry":{"max_retries":2,"backoff_ms":1.5}}}"#
            .replace('\n', " ");
        let env = parse_line(&line).unwrap();
        let Verb::Eval(req) = env.verb else {
            panic!("expected eval");
        };
        assert_eq!(req.params.n_sensors(), 120);
        assert_eq!(req.params.k(), 3);
        assert_eq!(req.params.field_width(), 16_000.0);
        let BackendSpec::Simulation(spec) = req.backend else {
            panic!("expected sim backend");
        };
        assert_eq!(spec.trials, 200);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.motion, MotionSpec::RandomWalk { max_turn: 0.5 });
        assert_eq!(spec.boundary, BoundaryPolicy::Torus);
        assert_eq!(spec.deployment, DeploymentSpec::Grid { jitter: 0.25 });
        assert_eq!(req.fallbacks.len(), 2);
        assert_eq!(req.fallbacks[1], BackendSpec::Poisson);
        assert_eq!(req.options.k_values, vec![1, 3, 5]);
        assert!(req.options.bypass_cache);
        assert_eq!(req.options.deadline, Some(Duration::from_millis(250)));
        assert_eq!(
            req.options.retry,
            Some(RetryPolicy::new(2).with_base_backoff(Duration::from_micros(1500)))
        );
    }

    #[test]
    fn parses_control_verbs() {
        assert_eq!(
            parse_line(r#"{"id":2,"verb":"stats"}"#).unwrap().verb,
            Verb::Stats
        );
        assert_eq!(
            parse_line(r#"{"id":3,"verb":"ping"}"#).unwrap().verb,
            Verb::Ping
        );
        assert_eq!(
            parse_line(r#"{"id":6,"verb":"store"}"#).unwrap().verb,
            Verb::Store
        );
        assert_eq!(
            parse_line(r#"{"id":4,"verb":"shutdown"}"#).unwrap().verb,
            Verb::Shutdown
        );
        assert_eq!(
            parse_line(r#"{"id":7,"verb":"unwatch"}"#).unwrap().verb,
            Verb::Unwatch
        );
    }

    #[test]
    fn parses_metrics_sections() {
        assert_eq!(
            parse_line(r#"{"id":1,"verb":"metrics"}"#).unwrap().verb,
            Verb::Metrics {
                sections: Vec::new()
            }
        );
        assert_eq!(
            parse_line(r#"{"id":1,"verb":"metrics","sections":["store","server"]}"#)
                .unwrap()
                .verb,
            Verb::Metrics {
                sections: vec![Section::Store, Section::Server]
            }
        );
        for bad in [
            r#"{"id":1,"verb":"metrics","sections":"server"}"#,
            r#"{"id":1,"verb":"metrics","sections":["caches"]}"#,
            r#"{"id":1,"verb":"metrics","section":[]}"#,
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parses_watch() {
        assert_eq!(
            parse_line(r#"{"id":1,"verb":"watch"}"#).unwrap().verb,
            Verb::Watch {
                windows: 0,
                replay: false
            }
        );
        assert_eq!(
            parse_line(r#"{"id":1,"verb":"watch","windows":5,"replay":true}"#)
                .unwrap()
                .verb,
            Verb::Watch {
                windows: 5,
                replay: true
            }
        );
        for bad in [
            r#"{"id":1,"verb":"watch","windows":-1}"#,
            r#"{"id":1,"verb":"watch","replay":"yes"}"#,
            r#"{"id":1,"verb":"watch","interval_ms":100}"#,
            r#"{"id":1,"verb":"unwatch","windows":1}"#,
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parses_stream_verbs() {
        let env = parse_line(
            r#"{"id":1,"verb":"stream_open","params":{"k":3,"m":10},"boundary":"bounded","max_tracks":128}"#,
        )
        .unwrap();
        let Verb::StreamOpen(spec) = env.verb else {
            panic!("expected stream_open");
        };
        assert_eq!(spec.params.k(), 3);
        assert_eq!(spec.params.m_periods(), 10);
        assert!(!spec.torus);
        assert_eq!(spec.max_tracks, 128);

        let env = parse_line(r#"{"id":1,"verb":"stream_open"}"#).unwrap();
        let Verb::StreamOpen(spec) = env.verb else {
            panic!("expected stream_open");
        };
        assert!(spec.torus, "torus is the default boundary");
        assert_eq!(spec.max_tracks, 0, "0 selects the server default");

        let env = parse_line(
            r#"{"id":2,"verb":"report","reports":[{"sensor":7,"period":1,"x":100.5,"y":-3.0}]}"#,
        )
        .unwrap();
        let Verb::Report { reports } = env.verb else {
            panic!("expected report");
        };
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].sensor, SensorId(7));
        assert_eq!(reports[0].period, 1);
        assert_eq!(reports[0].position, Point::new(100.5, -3.0));

        assert_eq!(
            parse_line(r#"{"id":3,"verb":"stream_close"}"#)
                .unwrap()
                .verb,
            Verb::StreamClose
        );

        for bad in [
            r#"{"id":1,"verb":"stream_open","boundary":"spherical"}"#,
            r#"{"id":1,"verb":"stream_open","window":5}"#,
            r#"{"id":1,"verb":"report"}"#,
            r#"{"id":1,"verb":"report","reports":{}}"#,
            r#"{"id":1,"verb":"report","reports":[{"sensor":1,"period":0,"x":0,"y":0}]}"#,
            r#"{"id":1,"verb":"report","reports":[{"sensor":1,"period":1,"x":0}]}"#,
            r#"{"id":1,"verb":"report","reports":[{"sensor":1,"period":1,"x":0,"y":0,"kind":"t"}]}"#,
            r#"{"id":1,"verb":"stream_close","force":true}"#,
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn rejects_unknown_fields_with_salvaged_id() {
        let err = parse_line(r#"{"id":7,"verb":"eval","parms":{}}"#).unwrap_err();
        assert_eq!(err.id, Some(7));
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("parms"), "{}", err.message);

        let err = parse_line(r#"{"id":8,"verb":"eval","params":{"nn":1}}"#).unwrap_err();
        assert_eq!(err.id, Some(8));
        assert!(err.message.contains("nn"), "{}", err.message);

        let err = parse_line(r#"{"id":5,"verb":"ping","extra":true}"#).unwrap_err();
        assert_eq!(err.id, Some(5));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "42",
            r#"{"verb":"eval"}"#,
            r#"{"id":1}"#,
            r#"{"id":-1,"verb":"ping"}"#,
            r#"{"id":1.5,"verb":"ping"}"#,
            r#"{"id":1,"verb":"frobnicate"}"#,
            r#"{"id":1,"verb":"eval","params":{"n":-4}}"#,
            r#"{"id":1,"verb":"eval","params":{"pd":1.5}}"#,
            r#"{"id":1,"verb":"eval","backend":{"kind":"warp"}}"#,
            r#"{"id":1,"verb":"eval","backend":"ms"}"#,
            r#"{"id":1,"verb":"eval","options":{"deadline_ms":-5}}"#,
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn error_response_shape() {
        let v = error_response(Some(3), ErrorCode::Overloaded, "queue full");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let e = v.get("error").unwrap();
        assert_eq!(e.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(e.get("message").and_then(Json::as_str), Some("queue full"));
        let anon = error_response(None, ErrorCode::BadRequest, "nope");
        assert!(anon.get("id").unwrap().is_null());
    }
}
