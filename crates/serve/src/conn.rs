//! Per-connection protocol handling: a reader thread that parses and
//! dispatches request lines, paired with a writer thread that emits
//! responses in submission order.
//!
//! The writer consumes a bounded queue of [`WriteItem`]s. An item is
//! either ready to write or a rendezvous receiver for an eval response
//! still in flight; blocking on each receiver *in submission order* gives
//! pipelined clients in-order responses without reordering buffers. The
//! queue bound doubles as the per-connection in-flight limit: a reader
//! that gets too far ahead blocks pushing the next item, which in turn
//! stops reading from the socket — natural TCP backpressure.

use crate::coalescer::SubmitError;
use crate::json::Json;
use crate::metrics::render_window;
use crate::protocol::{self, ErrorCode, Verb};
use crate::server::ServerShared;
use crate::stream_session::{self, SessionFlow, StreamSession};
use gbd_obs::{CancelToken, Counter, WatchMsg};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;

/// One unit of writer work, queued in submission order.
pub(crate) enum WriteItem {
    /// A response that is already rendered (errors, ping, metrics).
    Ready(Json),
    /// An eval response still being computed; the writer blocks on the
    /// receiver, preserving order.
    Wait { id: u64, rx: Receiver<Json> },
    /// A `watch` stream: one ack line, then one line per sampled window
    /// until the limit is reached or the subscription is cancelled.
    Stream {
        id: u64,
        rx: Receiver<WatchMsg>,
        /// Windows to stream; 0 = until cancel/disconnect.
        limit: u64,
        /// Cancelled by the writer once the stream completes, so teardown
        /// paths (`unwatch`, connection close) can tell live watches from
        /// finished ones.
        token: CancelToken,
    },
    /// A detection session: one `stream_open` ack, then every line the
    /// reader pushes (report acks, detection events, control replies)
    /// until the reader drops the channel on `stream_close` or teardown.
    Session {
        /// The rendered `stream_open` acknowledgement.
        ack: Json,
        rx: Receiver<Json>,
    },
}

/// Serves one accepted connection until EOF, an I/O error, or server
/// shutdown closes the socket. Never panics the server: all protocol
/// errors are answered in-band.
pub(crate) fn handle(stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let inflight = shared.config.max_inflight_per_conn.max(1);
    let (tx, rx) = mpsc::sync_channel::<WriteItem>(inflight);
    let write_errors = Arc::clone(&shared.metrics.write_errors);
    let writer = std::thread::Builder::new()
        .name("gbd-conn-writer".to_string())
        .spawn(move || writer_loop(write_half, &rx, &write_errors));
    let Ok(writer) = writer else {
        return;
    };
    let mut watch_tokens = Vec::new();
    reader_loop(stream, shared, &tx, &mut watch_tokens);
    // The connection is going away: cancel its watch subscriptions so the
    // registry stops broadcasting to them, and reap so their senders drop
    // (which unblocks a writer still streaming an unbounded watch).
    if !watch_tokens.is_empty() {
        for token in &watch_tokens {
            token.cancel();
        }
        shared.metrics.registry().reap_cancelled();
    }
    // Dropping the sender lets the writer finish the queued tail (including
    // in-flight eval responses) and exit.
    drop(tx);
    let _ = writer.join();
}

fn writer_loop(stream: TcpStream, rx: &Receiver<WriteItem>, write_errors: &Counter) {
    let mut out = BufWriter::new(stream);
    while let Ok(item) = rx.recv() {
        let delivered = match item {
            WriteItem::Ready(json) => write_line(&mut out, &json, write_errors),
            WriteItem::Wait { id, rx } => {
                let response = rx.recv().unwrap_or_else(|_| {
                    // The coalescer guarantees a send for every admitted
                    // request; a closed channel means its flush path died.
                    protocol::error_response(
                        Some(id),
                        ErrorCode::EvalFailed,
                        "response channel closed",
                    )
                });
                write_line(&mut out, &response, write_errors)
            }
            WriteItem::Stream {
                id,
                rx,
                limit,
                token,
            } => {
                let delivered = stream_windows(&mut out, id, &rx, limit, write_errors);
                // The subscription is over either way; mark it so that
                // `unwatch` and connection teardown skip it.
                token.cancel();
                delivered
            }
            WriteItem::Session { ack, rx } => {
                // Relay the session: the reader ends it by dropping its
                // sender (after queueing the final `stream_close` ack). A
                // write failure drops `rx`, which the reader observes as a
                // failed send and treats as a dead connection.
                let mut delivered = write_line(&mut out, &ack, write_errors);
                while delivered {
                    let Ok(line) = rx.recv() else {
                        break;
                    };
                    delivered = write_line(&mut out, &line, write_errors);
                }
                delivered
            }
        };
        if !delivered {
            return;
        }
    }
}

/// Writes one response line, counting a failure into `server_write_errors`
/// before the caller drops the connection (a silent drop left no trace).
fn write_line(out: &mut BufWriter<TcpStream>, response: &Json, write_errors: &Counter) -> bool {
    let mut line = response.render();
    line.push('\n');
    let delivered = out.write_all(line.as_bytes()).is_ok() && out.flush().is_ok();
    if !delivered {
        write_errors.inc();
    }
    delivered
}

/// Writes one `watch` stream: ack, window lines, terminator. Returns false
/// when the socket died mid-stream.
///
/// Window lines ride the same writer as every other response, so a slow
/// consumer exerts backpressure end to end: the socket blocks this writer,
/// the subscription's bounded channel fills, and the sampler drops windows
/// for this watcher (reported via `lagged`) instead of buffering them
/// without bound.
fn stream_windows(
    out: &mut BufWriter<TcpStream>,
    id: u64,
    rx: &Receiver<WatchMsg>,
    limit: u64,
    write_errors: &Counter,
) -> bool {
    let ack = Json::obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        ("watching".to_string(), Json::Bool(true)),
        ("windows".to_string(), Json::from(limit)),
    ]);
    if !write_line(out, &ack, write_errors) {
        return false;
    }
    let mut sent: u64 = 0;
    while limit == 0 || sent < limit {
        // recv errs when the subscription was cancelled (unwatch, conn
        // teardown, or server drain reaping watchers): end the stream.
        let Ok(msg) = rx.recv() else {
            break;
        };
        if !write_line(out, &render_window(id, &msg), write_errors) {
            return false;
        }
        sent += 1;
    }
    let end = Json::obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        ("watch_end".to_string(), Json::Bool(true)),
        ("windows".to_string(), Json::from(sent)),
    ]);
    write_line(out, &end, write_errors)
}

fn reader_loop(
    stream: TcpStream,
    shared: &Arc<ServerShared>,
    tx: &SyncSender<WriteItem>,
    watch_tokens: &mut Vec<CancelToken>,
) {
    let mut reader = BufReader::new(stream);
    let limit = shared.config.max_line_bytes.max(1);
    let mut evals_served: u64 = 0;
    // At most one streaming detection session per connection, owned here
    // by the reader; while it is open, responses flow through its channel
    // (see `stream_session` for the ordering invariant).
    let mut session: Option<StreamSession> = None;
    // Reads until EOF or a dead socket (incl. the shutdown path closing it).
    while let Ok(Some(line)) = read_line_bounded(&mut reader, limit) {
        if line.truncated {
            shared.metrics.rejected.inc();
            let err = protocol::error_response(
                None,
                ErrorCode::LineTooLong,
                &format!("request line exceeds {limit} bytes"),
            );
            if send_flat(&err, &session, tx).is_err() {
                break;
            }
            continue;
        }
        let Ok(text) = std::str::from_utf8(&line.bytes) else {
            shared.metrics.rejected.inc();
            let err =
                protocol::error_response(None, ErrorCode::BadRequest, "request is not UTF-8");
            if send_flat(&err, &session, tx).is_err() {
                break;
            }
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let envelope = match protocol::parse_line(text) {
            Ok(envelope) => envelope,
            Err(wire_error) => {
                shared.metrics.rejected.inc();
                let err = protocol::error_response(
                    wire_error.id,
                    wire_error.code,
                    &wire_error.message,
                );
                if send_flat(&err, &session, tx).is_err() {
                    break;
                }
                continue;
            }
        };
        if session.is_some() {
            match stream_session::handle_in_session(
                envelope.id,
                envelope.verb,
                &mut session,
                shared,
                watch_tokens,
            ) {
                SessionFlow::Continue => continue,
                SessionFlow::Dead => break,
            }
        }
        let item = match envelope.verb {
            Verb::StreamOpen(spec) => {
                shared.metrics.record_verb("stream_open");
                let inflight = shared.config.max_inflight_per_conn.max(1);
                let (opened, item) =
                    StreamSession::open(envelope.id, &spec, inflight, &shared.metrics);
                session = Some(opened);
                item
            }
            verb => dispatch(envelope.id, verb, shared, &mut evals_served, watch_tokens),
        };
        if tx.send(item).is_err() {
            break;
        }
    }
    // Connection teardown with a session still open: the client vanished
    // (or the server is draining) without `stream_close`. Account the
    // abort so every opened session stays accounted for in metrics.
    if let Some(open) = session {
        open.abort(&shared.metrics);
    }
}

/// Routes a response line generated outside `dispatch` (transport-level
/// errors) to wherever this connection currently writes: the session
/// channel while a session is open, the writer queue otherwise. `Err`
/// means the writer is gone and the reader should stop.
fn send_flat(
    response: &Json,
    session: &Option<StreamSession>,
    tx: &SyncSender<WriteItem>,
) -> Result<(), ()> {
    match session {
        Some(open) => open.push(response.clone()),
        None => tx.send(WriteItem::Ready(response.clone())).map_err(|_| ()),
    }
}

fn dispatch(
    id: u64,
    verb: Verb,
    shared: &Arc<ServerShared>,
    evals_served: &mut u64,
    watch_tokens: &mut Vec<CancelToken>,
) -> WriteItem {
    match verb {
        Verb::Ping => {
            shared.metrics.record_verb("ping");
            WriteItem::Ready(protocol::pong(id))
        }
        Verb::Metrics { sections } => {
            shared.metrics.record_verb("metrics");
            WriteItem::Ready(shared.metrics_snapshot().render_metrics(id, &sections))
        }
        Verb::Stats => {
            shared.metrics.record_verb("stats");
            shared.metrics.deprecated_verb_calls.inc();
            WriteItem::Ready(shared.metrics_snapshot().render_stats(id))
        }
        Verb::Store => {
            shared.metrics.record_verb("store");
            shared.metrics.deprecated_verb_calls.inc();
            WriteItem::Ready(shared.metrics_snapshot().render_store(id))
        }
        Verb::Watch { windows, replay } => {
            shared.metrics.record_verb("watch");
            let sub = shared.metrics.registry().subscribe(replay);
            watch_tokens.push(sub.token.clone());
            WriteItem::Stream {
                id,
                rx: sub.rx,
                limit: windows,
                token: sub.token,
            }
        }
        Verb::Unwatch => {
            shared.metrics.record_verb("unwatch");
            // Finished streams cancelled their own tokens; only watches
            // still live count toward the ack.
            let cancelled = watch_tokens.iter().filter(|t| !t.is_cancelled()).count();
            for token in watch_tokens.drain(..) {
                token.cancel();
            }
            // Reap immediately so the cancelled subscriptions' senders
            // drop, which ends any stream the writer is still blocked on —
            // and therefore must happen before this ack is queued behind it.
            shared.metrics.registry().reap_cancelled();
            WriteItem::Ready(Json::obj(vec![
                ("id".to_string(), Json::Int(id as i64)),
                ("ok".to_string(), Json::Bool(true)),
                ("unwatched".to_string(), Json::from(cancelled)),
            ]))
        }
        Verb::Shutdown => {
            shared.metrics.record_verb("shutdown");
            let ack = Json::obj(vec![
                ("id".to_string(), Json::Int(id as i64)),
                ("ok".to_string(), Json::Bool(true)),
                ("shutting_down".to_string(), Json::Bool(true)),
            ]);
            shared.begin_shutdown();
            WriteItem::Ready(ack)
        }
        Verb::Eval(request) => {
            shared.metrics.record_verb("eval");
            let limit = shared.config.max_requests_per_conn;
            if limit > 0 && *evals_served >= limit {
                shared.metrics.rejected.inc();
                return WriteItem::Ready(protocol::error_response(
                    Some(id),
                    ErrorCode::ConnLimit,
                    &format!("connection exceeded its limit of {limit} eval requests"),
                ));
            }
            *evals_served += 1;
            match shared.coalescer.submit(id, *request) {
                Ok(rx) => WriteItem::Wait { id, rx },
                Err(SubmitError::Overloaded) => WriteItem::Ready(protocol::error_response(
                    Some(id),
                    ErrorCode::Overloaded,
                    "admission queue is full; request shed",
                )),
                Err(SubmitError::ShuttingDown) => WriteItem::Ready(protocol::error_response(
                    Some(id),
                    ErrorCode::ShuttingDown,
                    "server is draining",
                )),
            }
        }
        Verb::Report { .. } => {
            shared.metrics.record_verb("report");
            shared.metrics.rejected.inc();
            WriteItem::Ready(protocol::error_response(
                Some(id),
                ErrorCode::BadRequest,
                "no stream session is open on this connection; send stream_open first",
            ))
        }
        Verb::StreamClose => {
            shared.metrics.record_verb("stream_close");
            shared.metrics.rejected.inc();
            WriteItem::Ready(protocol::error_response(
                Some(id),
                ErrorCode::BadRequest,
                "no stream session is open on this connection; send stream_open first",
            ))
        }
        Verb::StreamOpen(_) => {
            // The reader loop intercepts stream_open before dispatch (it
            // owns the session slot); this arm only keeps the match total.
            shared.metrics.rejected.inc();
            WriteItem::Ready(protocol::error_response(
                Some(id),
                ErrorCode::BadRequest,
                "stream_open is handled by the connection reader",
            ))
        }
    }
}

/// One request line read off the socket.
struct Line {
    bytes: Vec<u8>,
    /// The line exceeded the byte limit; `bytes` is empty and the whole
    /// line (up to its newline) was discarded from the stream.
    truncated: bool,
}

/// Reads up to the next `\n`, enforcing the byte limit without ever
/// buffering more than one `BufReader` chunk of an over-long line.
/// Returns `Ok(None)` on clean EOF.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    limit: usize,
) -> std::io::Result<Option<Line>> {
    let mut bytes = Vec::new();
    let mut truncated = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF. A partial final line is still delivered (it will fail
            // JSON parsing and get a structured error before the reader
            // sees the EOF on its next call).
            if bytes.is_empty() && !truncated {
                return Ok(None);
            }
            return Ok(Some(Line { bytes, truncated }));
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !truncated {
                if bytes.len() + pos <= limit {
                    bytes.extend_from_slice(&chunk[..pos]);
                } else {
                    truncated = true;
                    bytes.clear();
                }
            }
            reader.consume(pos + 1);
            return Ok(Some(Line { bytes, truncated }));
        }
        let len = chunk.len();
        if !truncated {
            if bytes.len() + len <= limit {
                bytes.extend_from_slice(chunk);
            } else {
                truncated = true;
                bytes.clear();
            }
        }
        reader.consume(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(input: &[u8], limit: usize) -> Vec<(Vec<u8>, bool)> {
        let mut reader = BufReader::with_capacity(4, Cursor::new(input.to_vec()));
        let mut lines = Vec::new();
        while let Some(line) = read_line_bounded(&mut reader, limit).unwrap() {
            lines.push((line.bytes, line.truncated));
        }
        lines
    }

    #[test]
    fn splits_lines_and_reports_eof() {
        let lines = read_all(b"ab\ncd\n", 100);
        assert_eq!(
            lines,
            vec![(b"ab".to_vec(), false), (b"cd".to_vec(), false)]
        );
    }

    #[test]
    fn delivers_partial_final_line() {
        let lines = read_all(b"ab\ncd", 100);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], (b"cd".to_vec(), false));
    }

    #[test]
    fn truncates_over_long_lines_but_keeps_the_stream_aligned() {
        // First line blows the 5-byte limit; the line after it must still
        // parse cleanly from the correct offset.
        let lines = read_all(b"0123456789\nok\n", 5);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].1, "long line not flagged truncated");
        assert!(lines[0].0.is_empty());
        assert_eq!(lines[1], (b"ok".to_vec(), false));
    }

    #[test]
    fn exact_limit_is_not_truncated() {
        let lines = read_all(b"12345\n", 5);
        assert_eq!(lines, vec![(b"12345".to_vec(), false)]);
    }

    #[test]
    fn empty_lines_come_through_empty() {
        let lines = read_all(b"\n\nx\n", 5);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], (b"x".to_vec(), false));
    }
}
