//! Per-connection protocol handling: a reader thread that parses and
//! dispatches request lines, paired with a writer thread that emits
//! responses in submission order.
//!
//! The writer consumes a bounded queue of [`WriteItem`]s. An item is
//! either ready to write or a rendezvous receiver for an eval response
//! still in flight; blocking on each receiver *in submission order* gives
//! pipelined clients in-order responses without reordering buffers. The
//! queue bound doubles as the per-connection in-flight limit: a reader
//! that gets too far ahead blocks pushing the next item, which in turn
//! stops reading from the socket — natural TCP backpressure.

use crate::coalescer::SubmitError;
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::protocol::{self, ErrorCode, Verb};
use crate::server::ServerShared;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;

/// One unit of writer work, queued in submission order.
enum WriteItem {
    /// A response that is already rendered (errors, ping, stats).
    Ready(Json),
    /// An eval response still being computed; the writer blocks on the
    /// receiver, preserving order.
    Wait { id: u64, rx: Receiver<Json> },
}

/// Serves one accepted connection until EOF, an I/O error, or server
/// shutdown closes the socket. Never panics the server: all protocol
/// errors are answered in-band.
pub(crate) fn handle(stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let inflight = shared.config.max_inflight_per_conn.max(1);
    let (tx, rx) = mpsc::sync_channel::<WriteItem>(inflight);
    let writer = std::thread::Builder::new()
        .name("gbd-conn-writer".to_string())
        .spawn(move || writer_loop(write_half, &rx));
    let Ok(writer) = writer else {
        return;
    };
    reader_loop(stream, shared, &tx);
    // Dropping the sender lets the writer finish the queued tail (including
    // in-flight eval responses) and exit.
    drop(tx);
    let _ = writer.join();
}

fn writer_loop(stream: TcpStream, rx: &Receiver<WriteItem>) {
    let mut out = BufWriter::new(stream);
    while let Ok(item) = rx.recv() {
        let response = match item {
            WriteItem::Ready(json) => json,
            WriteItem::Wait { id, rx } => rx.recv().unwrap_or_else(|_| {
                // The coalescer guarantees a send for every admitted
                // request; a closed channel means its flush path died.
                protocol::error_response(
                    Some(id),
                    ErrorCode::EvalFailed,
                    "response channel closed",
                )
            }),
        };
        let mut line = response.render();
        line.push('\n');
        if out.write_all(line.as_bytes()).is_err() || out.flush().is_err() {
            return;
        }
    }
}

fn reader_loop(stream: TcpStream, shared: &Arc<ServerShared>, tx: &SyncSender<WriteItem>) {
    let mut reader = BufReader::new(stream);
    let limit = shared.config.max_line_bytes.max(1);
    let mut evals_served: u64 = 0;
    loop {
        let line = match read_line_bounded(&mut reader, limit) {
            Ok(Some(line)) => line,
            // EOF or a dead socket (including the shutdown path closing it).
            Ok(None) | Err(_) => return,
        };
        if line.truncated {
            ServerMetrics::bump(&shared.metrics.rejected);
            let err = protocol::error_response(
                None,
                ErrorCode::LineTooLong,
                &format!("request line exceeds {limit} bytes"),
            );
            if tx.send(WriteItem::Ready(err)).is_err() {
                return;
            }
            continue;
        }
        let Ok(text) = std::str::from_utf8(&line.bytes) else {
            ServerMetrics::bump(&shared.metrics.rejected);
            let err =
                protocol::error_response(None, ErrorCode::BadRequest, "request is not UTF-8");
            if tx.send(WriteItem::Ready(err)).is_err() {
                return;
            }
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let envelope = match protocol::parse_line(text) {
            Ok(envelope) => envelope,
            Err(wire_error) => {
                ServerMetrics::bump(&shared.metrics.rejected);
                let err = protocol::error_response(
                    wire_error.id,
                    wire_error.code,
                    &wire_error.message,
                );
                if tx.send(WriteItem::Ready(err)).is_err() {
                    return;
                }
                continue;
            }
        };
        let item = dispatch(envelope.id, envelope.verb, shared, &mut evals_served);
        if tx.send(item).is_err() {
            return;
        }
    }
}

fn dispatch(
    id: u64,
    verb: Verb,
    shared: &Arc<ServerShared>,
    evals_served: &mut u64,
) -> WriteItem {
    match verb {
        Verb::Ping => WriteItem::Ready(protocol::pong(id)),
        Verb::Stats => WriteItem::Ready(shared.metrics.render(
            id,
            shared.coalescer.queue_depth(),
            shared.engine.cache_stats(),
        )),
        Verb::Store => WriteItem::Ready(render_store(id, &shared.engine)),
        Verb::Shutdown => {
            let ack = Json::obj(vec![
                ("id".to_string(), Json::Int(id as i64)),
                ("ok".to_string(), Json::Bool(true)),
                ("shutting_down".to_string(), Json::Bool(true)),
            ]);
            shared.begin_shutdown();
            WriteItem::Ready(ack)
        }
        Verb::Eval(request) => {
            let limit = shared.config.max_requests_per_conn;
            if limit > 0 && *evals_served >= limit {
                ServerMetrics::bump(&shared.metrics.rejected);
                return WriteItem::Ready(protocol::error_response(
                    Some(id),
                    ErrorCode::ConnLimit,
                    &format!("connection exceeded its limit of {limit} eval requests"),
                ));
            }
            *evals_served += 1;
            match shared.coalescer.submit(id, *request) {
                Ok(rx) => WriteItem::Wait { id, rx },
                Err(SubmitError::Overloaded) => WriteItem::Ready(protocol::error_response(
                    Some(id),
                    ErrorCode::Overloaded,
                    "admission queue is full; request shed",
                )),
                Err(SubmitError::ShuttingDown) => WriteItem::Ready(protocol::error_response(
                    Some(id),
                    ErrorCode::ShuttingDown,
                    "server is draining",
                )),
            }
        }
    }
}

/// Renders the `store` verb: persistent-store status, or `attached: false`
/// when the engine runs memory-only.
fn render_store(id: u64, engine: &gbd_engine::Engine) -> Json {
    let store = match engine.store_stats() {
        None => Json::obj(vec![("attached".to_string(), Json::Bool(false))]),
        Some(stats) => {
            let cache = engine.cache_stats();
            Json::obj(vec![
                ("attached".to_string(), Json::Bool(true)),
                ("live_entries".to_string(), Json::from(stats.live_entries)),
                (
                    "loaded_records".to_string(),
                    Json::from(stats.loaded_records),
                ),
                (
                    "torn_bytes_discarded".to_string(),
                    Json::from(stats.torn_bytes_discarded),
                ),
                (
                    "appended_records".to_string(),
                    Json::from(stats.appended_records),
                ),
                ("compactions".to_string(), Json::from(stats.compactions)),
                ("file_bytes".to_string(), Json::from(stats.file_bytes)),
                ("loads".to_string(), Json::from(cache.store_loads)),
                ("spills".to_string(), Json::from(cache.store_spills)),
                (
                    "spill_errors".to_string(),
                    Json::from(stats.append_errors + engine.store_spill_errors()),
                ),
            ])
        }
    };
    Json::obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        ("store".to_string(), store),
    ])
}

/// One request line read off the socket.
struct Line {
    bytes: Vec<u8>,
    /// The line exceeded the byte limit; `bytes` is empty and the whole
    /// line (up to its newline) was discarded from the stream.
    truncated: bool,
}

/// Reads up to the next `\n`, enforcing the byte limit without ever
/// buffering more than one `BufReader` chunk of an over-long line.
/// Returns `Ok(None)` on clean EOF.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    limit: usize,
) -> std::io::Result<Option<Line>> {
    let mut bytes = Vec::new();
    let mut truncated = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF. A partial final line is still delivered (it will fail
            // JSON parsing and get a structured error before the reader
            // sees the EOF on its next call).
            if bytes.is_empty() && !truncated {
                return Ok(None);
            }
            return Ok(Some(Line { bytes, truncated }));
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !truncated {
                if bytes.len() + pos <= limit {
                    bytes.extend_from_slice(&chunk[..pos]);
                } else {
                    truncated = true;
                    bytes.clear();
                }
            }
            reader.consume(pos + 1);
            return Ok(Some(Line { bytes, truncated }));
        }
        let len = chunk.len();
        if !truncated {
            if bytes.len() + len <= limit {
                bytes.extend_from_slice(chunk);
            } else {
                truncated = true;
                bytes.clear();
            }
        }
        reader.consume(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(input: &[u8], limit: usize) -> Vec<(Vec<u8>, bool)> {
        let mut reader = BufReader::with_capacity(4, Cursor::new(input.to_vec()));
        let mut lines = Vec::new();
        while let Some(line) = read_line_bounded(&mut reader, limit).unwrap() {
            lines.push((line.bytes, line.truncated));
        }
        lines
    }

    #[test]
    fn splits_lines_and_reports_eof() {
        let lines = read_all(b"ab\ncd\n", 100);
        assert_eq!(
            lines,
            vec![(b"ab".to_vec(), false), (b"cd".to_vec(), false)]
        );
    }

    #[test]
    fn delivers_partial_final_line() {
        let lines = read_all(b"ab\ncd", 100);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], (b"cd".to_vec(), false));
    }

    #[test]
    fn truncates_over_long_lines_but_keeps_the_stream_aligned() {
        // First line blows the 5-byte limit; the line after it must still
        // parse cleanly from the correct offset.
        let lines = read_all(b"0123456789\nok\n", 5);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].1, "long line not flagged truncated");
        assert!(lines[0].0.is_empty());
        assert_eq!(lines[1], (b"ok".to_vec(), false));
    }

    #[test]
    fn exact_limit_is_not_truncated() {
        let lines = read_all(b"12345\n", 5);
        assert_eq!(lines, vec![(b"12345".to_vec(), false)]);
    }

    #[test]
    fn empty_lines_come_through_empty() {
        let lines = read_all(b"\n\nx\n", 5);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], (b"x".to_vec(), false));
    }
}
