//! Stateful streaming detection sessions over the JSON-lines transport.
//!
//! A `stream_open` turns the connection into a detection session: the
//! reader thread owns a [`StreamDetector`] and a bounded channel into the
//! writer, which queues a [`WriteItem::Session`] and then relays every
//! line the reader pushes — report acks, detection events, and control
//! replies — until the reader drops the channel (on `stream_close` or
//! connection teardown).
//!
//! **Ordering invariant:** while a session is open, *every* response on
//! the connection flows through the session channel. The writer is
//! parked on the session item, so a [`WriteItem::Ready`] queued behind it
//! would never be written — and the reader, blocked pushing it, would
//! deadlock the connection. Control verbs (`ping`, `metrics`, `unwatch`,
//! `shutdown`, …) are answered through the session; verbs that would
//! enqueue their own writer items (`eval`, `watch`, a second
//! `stream_open`) are rejected until the session closes.
//!
//! Backpressure works the same way it does for eval traffic: the session
//! channel is bounded, so a client that stops draining events blocks the
//! reader, which stops reading reports off the socket.

use crate::conn::WriteItem;
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::protocol::{self, ErrorCode, StreamOpenSpec, Verb};
use crate::server::ServerShared;
use gbd_obs::CancelToken;
use gbd_sim::group_filter::TrackRule;
use gbd_sim::reports::DetectionReport;
use gbd_stream::{DetectionEvent, StreamConfig, StreamDetector, DEFAULT_MAX_TRACKS};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::time::Instant;

/// What the reader loop should do after a verb was handled in-session.
pub(crate) enum SessionFlow {
    /// Handled (response lines pushed through the session channel); keep
    /// reading.
    Continue,
    /// The session channel's consumer is gone (writer exited on a dead
    /// socket): drop the connection.
    Dead,
}

/// One open streaming session, owned by the connection's reader thread.
pub(crate) struct StreamSession {
    detector: StreamDetector,
    tx: SyncSender<Json>,
    /// The `stream_open` id — detection events are tagged with it so a
    /// pipelining client can tell pushed events from report acks.
    open_id: u64,
    reports: u64,
    events: u64,
    /// Live-track count last published to the shared gauge.
    published_tracks: u64,
}

impl StreamSession {
    /// Opens a session: builds the detector from the spec and returns the
    /// session plus the [`WriteItem::Session`] to queue. Also accounts the
    /// open on `metrics`.
    pub(crate) fn open(
        id: u64,
        spec: &StreamOpenSpec,
        inflight: usize,
        metrics: &ServerMetrics,
    ) -> (StreamSession, WriteItem) {
        let p = &spec.params;
        let mut rule = TrackRule::new(p.speed(), p.period_s(), p.sensing_range());
        if spec.torus {
            rule = rule.with_wrap(p.field_width(), p.field_height());
        }
        let max_tracks = if spec.max_tracks == 0 {
            DEFAULT_MAX_TRACKS
        } else {
            spec.max_tracks
        };
        let config = StreamConfig::new(rule, p.k(), p.m_periods()).with_max_tracks(max_tracks);
        let (tx, rx) = mpsc::sync_channel::<Json>(inflight.max(1));
        metrics.stream_sessions_opened.inc();
        metrics.stream_open_sessions.fetch_add(1, Ordering::Relaxed);
        let ack = Json::obj(vec![
            ("id".to_string(), Json::Int(id as i64)),
            ("ok".to_string(), Json::Bool(true)),
            ("streaming".to_string(), Json::Bool(true)),
            ("k".to_string(), Json::from(p.k())),
            ("m".to_string(), Json::from(p.m_periods())),
            ("max_tracks".to_string(), Json::from(max_tracks)),
            ("torus".to_string(), Json::Bool(spec.torus)),
        ]);
        let session = StreamSession {
            detector: StreamDetector::new(config),
            tx,
            open_id: id,
            reports: 0,
            events: 0,
            published_tracks: 0,
        };
        (session, WriteItem::Session { ack, rx })
    }

    fn send(&self, line: Json) -> SessionFlow {
        if self.tx.send(line).is_err() {
            return SessionFlow::Dead;
        }
        SessionFlow::Continue
    }

    /// Pushes a response generated outside the session verbs (transport
    /// errors) through the session channel. `Err` means the writer died.
    pub(crate) fn push(&self, line: Json) -> Result<(), ()> {
        self.tx.send(line).map_err(|_| ())
    }

    /// Folds the detector's live-track count into the cross-session gauge.
    fn publish_tracks(&mut self, metrics: &ServerMetrics) {
        let now = self.detector.live_tracks() as u64;
        let prev = self.published_tracks;
        if now >= prev {
            metrics
                .stream_tracks_live
                .fetch_add(now - prev, Ordering::Relaxed);
        } else {
            metrics
                .stream_tracks_live
                .fetch_sub(prev - now, Ordering::Relaxed);
        }
        self.published_tracks = now;
    }

    fn ingest(
        &mut self,
        id: u64,
        reports: &[DetectionReport],
        metrics: &ServerMetrics,
    ) -> SessionFlow {
        let received = Instant::now();
        let before = self.detector.stats();
        let events = self.detector.ingest(reports);
        let after = self.detector.stats();
        let ingested = after.reports_ingested - before.reports_ingested;
        let late = after.reports_late - before.reports_late;
        metrics.stream_reports.add(ingested);
        metrics.stream_reports_late.add(late);
        metrics.stream_events.add(events.len() as u64);
        metrics
            .stream_tracks_expired
            .add(after.tracks_expired - before.tracks_expired);
        metrics
            .stream_tracks_evicted
            .add(after.tracks_evicted - before.tracks_evicted);
        self.publish_tracks(metrics);
        self.reports += ingested;
        self.events += events.len() as u64;
        let ack = Json::obj(vec![
            ("id".to_string(), Json::Int(id as i64)),
            ("ok".to_string(), Json::Bool(true)),
            ("ingested".to_string(), Json::from(ingested)),
            ("late".to_string(), Json::from(late)),
            ("events".to_string(), Json::from(events.len())),
        ]);
        if let SessionFlow::Dead = self.send(ack) {
            return SessionFlow::Dead;
        }
        for event in &events {
            let line = render_event(self.open_id, event);
            if let SessionFlow::Dead = self.send(line) {
                return SessionFlow::Dead;
            }
            // Report receipt → event handed to the writer; the wire adds
            // only socket time on top.
            metrics.stream_event_latency.record(received.elapsed());
        }
        SessionFlow::Continue
    }

    /// Books the session out of the open-session and live-track gauges.
    fn retire(&mut self, metrics: &ServerMetrics) {
        metrics.stream_open_sessions.fetch_sub(1, Ordering::Relaxed);
        let live = self.published_tracks;
        metrics
            .stream_tracks_live
            .fetch_sub(live, Ordering::Relaxed);
        self.published_tracks = 0;
    }

    /// Clean close: final ack through the session channel, then the
    /// channel drops, ending the writer's session item.
    fn close(mut self, id: u64, metrics: &ServerMetrics) -> SessionFlow {
        self.retire(metrics);
        metrics.stream_sessions_closed.inc();
        let ack = Json::obj(vec![
            ("id".to_string(), Json::Int(id as i64)),
            ("ok".to_string(), Json::Bool(true)),
            ("stream_end".to_string(), Json::Bool(true)),
            ("reports".to_string(), Json::from(self.reports)),
            ("events".to_string(), Json::from(self.events)),
        ]);
        self.send(ack)
    }

    /// Teardown without a `stream_close` (disconnect or server drain):
    /// account the abort so every opened session is still accounted for.
    pub(crate) fn abort(mut self, metrics: &ServerMetrics) {
        self.retire(metrics);
        metrics.stream_sessions_aborted.inc();
    }
}

fn render_event(open_id: u64, event: &DetectionEvent) -> Json {
    Json::obj(vec![
        ("id".to_string(), Json::Int(open_id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        (
            "event".to_string(),
            Json::obj(vec![
                ("seq".to_string(), Json::from(event.seq)),
                ("period".to_string(), Json::from(event.period)),
                ("sensor".to_string(), Json::from(event.sensor.0)),
                ("chain_len".to_string(), Json::from(event.chain_len)),
                ("first_period".to_string(), Json::from(event.first_period)),
            ]),
        ),
    ])
}

/// Handles a verb on a connection whose session is open. Every response
/// goes through the session channel (see the module docs for why).
pub(crate) fn handle_in_session(
    id: u64,
    verb: Verb,
    session_slot: &mut Option<StreamSession>,
    shared: &Arc<ServerShared>,
    watch_tokens: &mut Vec<CancelToken>,
) -> SessionFlow {
    let Some(session) = session_slot.as_mut() else {
        // Callers only route here with an open session.
        return SessionFlow::Continue;
    };
    let metrics = &shared.metrics;
    match verb {
        Verb::Report { reports } => {
            metrics.record_verb("report");
            session.ingest(id, &reports, metrics)
        }
        Verb::StreamClose => {
            metrics.record_verb("stream_close");
            match session_slot.take() {
                Some(active) => active.close(id, metrics),
                None => SessionFlow::Continue,
            }
        }
        Verb::Ping => {
            metrics.record_verb("ping");
            session.send(protocol::pong(id))
        }
        Verb::Metrics { sections } => {
            metrics.record_verb("metrics");
            session.send(shared.metrics_snapshot().render_metrics(id, &sections))
        }
        Verb::Stats => {
            metrics.record_verb("stats");
            metrics.deprecated_verb_calls.inc();
            session.send(shared.metrics_snapshot().render_stats(id))
        }
        Verb::Store => {
            metrics.record_verb("store");
            metrics.deprecated_verb_calls.inc();
            session.send(shared.metrics_snapshot().render_store(id))
        }
        Verb::Unwatch => {
            metrics.record_verb("unwatch");
            let cancelled = watch_tokens.iter().filter(|t| !t.is_cancelled()).count();
            for token in watch_tokens.drain(..) {
                token.cancel();
            }
            metrics.registry().reap_cancelled();
            session.send(Json::obj(vec![
                ("id".to_string(), Json::Int(id as i64)),
                ("ok".to_string(), Json::Bool(true)),
                ("unwatched".to_string(), Json::from(cancelled)),
            ]))
        }
        Verb::Shutdown => {
            metrics.record_verb("shutdown");
            let ack = Json::obj(vec![
                ("id".to_string(), Json::Int(id as i64)),
                ("ok".to_string(), Json::Bool(true)),
                ("shutting_down".to_string(), Json::Bool(true)),
            ]);
            shared.begin_shutdown();
            session.send(ack)
        }
        Verb::StreamOpen(_) => {
            metrics.record_verb("stream_open");
            metrics.rejected.inc();
            session.send(protocol::error_response(
                Some(id),
                ErrorCode::BadRequest,
                "a stream session is already open on this connection",
            ))
        }
        Verb::Eval(_) => {
            metrics.record_verb("eval");
            metrics.rejected.inc();
            session.send(protocol::error_response(
                Some(id),
                ErrorCode::BadRequest,
                "eval is not available while a stream session is open; \
                 send stream_close first",
            ))
        }
        Verb::Watch { .. } => {
            metrics.record_verb("watch");
            metrics.rejected.inc();
            session.send(protocol::error_response(
                Some(id),
                ErrorCode::BadRequest,
                "watch is not available while a stream session is open; \
                 send stream_close first",
            ))
        }
    }
}
