//! Atomic snapshot compaction: rewrite the live entries to a temporary
//! sibling file, fsync, rename over the log, fsync the directory.
//!
//! Readers (and crash recovery) therefore only ever observe either the
//! old log or the complete new one — never a half-written snapshot.

use crate::format;
use crate::index::Index;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// What a compaction accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Log length before compaction, in bytes.
    pub bytes_before: u64,
    /// Log length after compaction, in bytes.
    pub bytes_after: u64,
    /// Live entries written to the snapshot.
    pub live_entries: u64,
    /// Records dropped as duplicates (superseded appends).
    pub records_dropped: u64,
}

/// Writes the live entries of `index` as a fresh log at `path`,
/// atomically replacing whatever was there. Returns the new length.
pub(crate) fn write_snapshot(path: &Path, tag: &[u8], index: &Index) -> io::Result<u64> {
    let tmp = tmp_path(path);
    let mut len;
    {
        let mut file = File::create(&tmp)?;
        let header = format::encode_header(tag);
        file.write_all(&header)?;
        len = header.len() as u64;
        for entry in index.entries() {
            let frame = format::encode_frame(entry.kind, &entry.key, &entry.value);
            file.write_all(&frame)?;
            len += frame.len() as u64;
        }
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync is best-effort: some
    // filesystems refuse to open directories for sync, and the rename is
    // already atomic for readers either way.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(len)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::recover;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gbd-store-snap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn snapshot_keeps_only_live_entries_and_is_reopenable() {
        let path = temp_path("compact.log");
        let mut idx = Index::default();
        idx.apply(1, b"a".to_vec(), b"old".to_vec());
        idx.apply(1, b"a".to_vec(), b"new".to_vec());
        idx.apply(2, b"b".to_vec(), b"keep".to_vec());
        let len = write_snapshot(&path, b"tag", &idx).unwrap();
        assert_eq!(len, std::fs::metadata(&path).unwrap().len());
        let r = recover(&path).unwrap();
        assert_eq!(r.tag, b"tag");
        assert_eq!(r.torn_bytes, 0);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0].value, b"new");
        assert_eq!(r.records[1].value, b"keep");
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
        std::fs::remove_file(&path).unwrap();
    }
}
