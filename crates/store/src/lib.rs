//! gbd-store: append-only, checksummed, versioned on-disk result store.
//!
//! The store persists opaque `(kind, key, value)` byte records for a
//! single *client identity* — a tag the client derives from everything
//! that makes its cached values comparable (schema version of its codec,
//! and, via the keys themselves, parameters, `eps`, and backend). It is
//! the durable tier under `gbd-engine`'s in-memory caches: the engine
//! spills freshly computed entries on insert and warm-starts its caches
//! from the log on open.
//!
//! Guarantees:
//!
//! - **Crash safety.** Appends are whole-frame writes; recovery truncates
//!   at the first bad record, so a crash (even `kill -9` mid-append)
//!   costs at most the torn tail — every surviving record is exactly
//!   what was written, verified by a per-record CRC-32.
//! - **Identity safety.** The header carries a schema version and the
//!   client's identity tag; a mismatch refuses to open rather than risk
//!   serving values computed under different semantics. Truncated or
//!   foreign results can therefore never shadow exact ones.
//! - **Atomic compaction.** [`Store::compact`] rewrites live entries to a
//!   temporary file and renames it over the log, so readers only ever
//!   see the old or the complete new file.
//!
//! The crate is std-only and knows nothing about the engine's types:
//! clients encode keys and values with [`format::ByteWriter`] /
//! [`format::ByteReader`] and interpret `kind` themselves.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod format;
mod index;
pub mod reader;
pub mod ship;
mod snapshot;
mod writer;

pub use format::{ByteReader, ByteWriter, HeaderError, SCHEMA_VERSION};
pub use ship::{Follower, FollowerError, Shipper, ShipperStats};
pub use snapshot::CompactionReport;

use index::Index;
use reader::RecoverError;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use writer::LogWriter;

/// Why a store could not be opened or written.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(io::Error),
    /// The file exists but is not a store, or its header is damaged.
    /// Header damage is not recoverable by design: without a trusted
    /// identity tag, no cached value can be safely served.
    Corrupt(String),
    /// The file was written under a different on-disk schema version.
    SchemaMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build writes ([`SCHEMA_VERSION`]).
        expected: u32,
    },
    /// The file's identity tag belongs to a different client (different
    /// codec version or value semantics).
    IdentityMismatch {
        /// Tag found in the file (lossy UTF-8 for display).
        found: String,
        /// Tag this client expected.
        expected: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(detail) => write!(f, "store header corrupt: {detail}"),
            StoreError::SchemaMismatch { found, expected } => write!(
                f,
                "store schema version {found} is not the supported version {expected}"
            ),
            StoreError::IdentityMismatch { found, expected } => write!(
                f,
                "store identity tag `{found}` does not match expected `{expected}`"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn recover_error(e: RecoverError) -> StoreError {
    match e {
        RecoverError::Io(e) => StoreError::Io(e),
        RecoverError::Header(HeaderError::NotAStore) => {
            StoreError::Corrupt("bad magic or file too short".to_string())
        }
        RecoverError::Header(HeaderError::SchemaMismatch { found }) => {
            StoreError::SchemaMismatch {
                found,
                expected: SCHEMA_VERSION,
            }
        }
        RecoverError::Header(HeaderError::Corrupt) => {
            StoreError::Corrupt("header checksum or length invalid".to_string())
        }
    }
}

/// Counters describing a store's contents and activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct live `(kind, key)` entries.
    pub live_entries: u64,
    /// Valid records recovered from disk at open (duplicates included).
    pub loaded_records: u64,
    /// Bytes discarded at open as a torn tail or corrupt run. Non-zero
    /// means the previous process died mid-append and recovery truncated
    /// to the longest valid prefix.
    pub torn_bytes_discarded: u64,
    /// Records appended since open.
    pub appended_records: u64,
    /// Append attempts that failed with an I/O error (the entry stays
    /// cached in memory; it is simply not durable).
    pub append_errors: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Current log length in bytes.
    pub file_bytes: u64,
}

/// Read-only facts about a store file, from [`Store::inspect`].
#[derive(Debug, Clone)]
pub struct InspectReport {
    /// Identity tag in the header.
    pub tag: Vec<u8>,
    /// Total valid records (duplicates included).
    pub records: u64,
    /// Distinct live `(kind, key)` entries.
    pub live_entries: u64,
    /// Byte length of the valid prefix.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (0 for a cleanly closed log).
    pub torn_bytes: u64,
}

/// A persistent, versioned, append-only result store.
///
/// Thread-safe: appends and compactions serialize on an internal mutex.
/// Values are opaque bytes; one `Store` holds records for exactly one
/// identity tag.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    tag: Vec<u8>,
    inner: Mutex<Inner>,
    /// Observer of successful appends (see [`Store::set_tee`]); called
    /// under the inner lock so a replication follower sees appends in
    /// exactly the order the log does.
    tee: Mutex<Option<Tee>>,
}

type TeeFn = Box<dyn Fn(u8, &[u8], &[u8]) + Send + Sync>;

struct Tee(TeeFn);

impl fmt::Debug for Tee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Tee(..)")
    }
}

#[derive(Debug)]
struct Inner {
    writer: LogWriter,
    index: Index,
    loaded_records: u64,
    torn_bytes_discarded: u64,
    append_errors: u64,
    compactions: u64,
}

impl Store {
    /// Opens (or creates) the store at `path` for identity `tag`.
    ///
    /// An existing log is recovered first: its header must match this
    /// build's schema version and `tag` exactly, and any torn tail is
    /// truncated away before the log is reopened for appending. A
    /// missing or empty file becomes a fresh log.
    pub fn open(path: impl AsRef<Path>, tag: &[u8]) -> Result<Store, StoreError> {
        let path = path.as_ref().to_path_buf();
        let fresh = match std::fs::metadata(&path) {
            Ok(meta) => meta.len() == 0,
            Err(e) if e.kind() == io::ErrorKind::NotFound => true,
            Err(e) => return Err(StoreError::Io(e)),
        };
        if fresh {
            let writer = LogWriter::create(&path, tag)?;
            return Ok(Store {
                path,
                tag: tag.to_vec(),
                inner: Mutex::new(Inner {
                    writer,
                    index: Index::default(),
                    loaded_records: 0,
                    torn_bytes_discarded: 0,
                    append_errors: 0,
                    compactions: 0,
                }),
                tee: Mutex::new(None),
            });
        }
        let recovered = reader::recover(&path).map_err(recover_error)?;
        if recovered.tag != tag {
            return Err(StoreError::IdentityMismatch {
                found: String::from_utf8_lossy(&recovered.tag).into_owned(),
                expected: String::from_utf8_lossy(tag).into_owned(),
            });
        }
        let mut index = Index::default();
        for record in &recovered.records {
            index.apply(record.kind, record.key.clone(), record.value.clone());
        }
        let writer = LogWriter::open_append(&path, recovered.valid_len)?;
        Ok(Store {
            path,
            tag: tag.to_vec(),
            inner: Mutex::new(Inner {
                writer,
                index,
                loaded_records: recovered.records.len() as u64,
                torn_bytes_discarded: recovered.torn_bytes,
                append_errors: 0,
                compactions: 0,
            }),
            tee: Mutex::new(None),
        })
    }

    /// Reads the store at `path` without opening it for writing and
    /// without truncating a torn tail. `records`/`live_entries` describe
    /// the valid prefix only.
    pub fn inspect(path: impl AsRef<Path>) -> Result<InspectReport, StoreError> {
        let recovered = reader::recover(path.as_ref()).map_err(recover_error)?;
        let mut index = Index::default();
        for record in &recovered.records {
            index.apply(record.kind, record.key.clone(), record.value.clone());
        }
        Ok(InspectReport {
            tag: recovered.tag,
            records: recovered.records.len() as u64,
            live_entries: index.len() as u64,
            valid_bytes: recovered.valid_len,
            torn_bytes: recovered.torn_bytes,
        })
    }

    /// Appends one record and updates the live index. Durability is
    /// whole-frame on a clean process; call [`Store::sync`] to force the
    /// bytes to stable storage.
    pub fn append(&self, kind: u8, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.lock();
        match inner.writer.append(kind, key, value) {
            Ok(_) => {
                inner.index.apply(kind, key.to_vec(), value.to_vec());
                // Still under the inner lock: concurrent appends reach the
                // tee in log order, so a follower can never apply a stale
                // value after a fresh one.
                if let Some(Tee(tee)) = &*lock_tee(&self.tee) {
                    tee(kind, key, value);
                }
                Ok(())
            }
            Err(e) => {
                inner.append_errors += 1;
                Err(StoreError::Io(e))
            }
        }
    }

    /// Installs an observer called after every successful append with the
    /// record just written (replacing any previous observer). The hook is
    /// invoked under the store's write lock and must not call back into
    /// this store — log shipping enqueues and returns.
    pub fn set_tee(&self, tee: impl Fn(u8, &[u8], &[u8]) + Send + Sync + 'static) {
        *lock_tee(&self.tee) = Some(Tee(Box::new(tee)));
    }

    /// Removes the append observer installed by [`Store::set_tee`].
    pub fn clear_tee(&self) {
        *lock_tee(&self.tee) = None;
    }

    /// The identity tag this store was opened under.
    pub fn tag(&self) -> &[u8] {
        &self.tag
    }

    /// Flushes appended records to stable storage (`fdatasync`).
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        inner.writer.sync()?;
        Ok(())
    }

    /// Rewrites the log to hold exactly the live entries, atomically
    /// (write temp, fsync, rename, fsync directory).
    pub fn compact(&self) -> Result<CompactionReport, StoreError> {
        let mut inner = self.lock();
        inner.writer.sync()?;
        let bytes_before = inner.writer.len();
        let records_before = inner.loaded_records + inner.writer.appends();
        let bytes_after = snapshot::write_snapshot(&self.path, &self.tag, &inner.index)?;
        // Reopen the (renamed-over) log for further appends.
        inner.writer = LogWriter::open_append(&self.path, bytes_after)?;
        inner.compactions += 1;
        // After compaction the log holds exactly the live entries; fold
        // the pre-compaction append count into the loaded baseline so
        // stats stay monotone.
        inner.loaded_records = records_before;
        let live = inner.index.len() as u64;
        Ok(CompactionReport {
            bytes_before,
            bytes_after,
            live_entries: live,
            records_dropped: records_before.saturating_sub(live),
        })
    }

    /// Visits every live entry in first-seen order.
    pub fn for_each(&self, mut f: impl FnMut(u8, &[u8], &[u8])) {
        let inner = self.lock();
        for entry in inner.index.entries() {
            f(entry.kind, &entry.key, &entry.value);
        }
    }

    /// Value for `(kind, key)`, if live.
    pub fn get(&self, kind: u8, key: &[u8]) -> Option<Vec<u8>> {
        self.lock().index.get(kind, key).map(<[u8]>::to_vec)
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        StoreStats {
            live_entries: inner.index.len() as u64,
            loaded_records: inner.loaded_records,
            torn_bytes_discarded: inner.torn_bytes_discarded,
            appended_records: inner.writer.appends(),
            append_errors: inner.append_errors,
            compactions: inner.compactions,
            file_bytes: inner.writer.len(),
        }
    }

    /// CRC32 digest of the live index: per entry,
    /// `crc32(kind ‖ key_len_le ‖ key ‖ value)`, folded with XOR so the
    /// result is independent of insertion order — a primary and a standby
    /// that hold the same live entries produce the same digest no matter
    /// how replication interleaved the appends. This is the anti-entropy
    /// check: a standby proves it converged by matching its primary's
    /// digest instead of inferring convergence from applied counts.
    pub fn digest(&self) -> u32 {
        let inner = self.lock();
        let mut acc: u32 = 0;
        let mut buf = Vec::new();
        for entry in inner.index.entries() {
            buf.clear();
            buf.push(entry.kind);
            buf.extend_from_slice(&(entry.key.len() as u64).to_le_bytes());
            buf.extend_from_slice(&entry.key);
            buf.extend_from_slice(&entry.value);
            acc ^= format::crc32(&buf);
        }
        acc
    }

    /// Registers the store's series on an observability registry.
    /// Monotonic counters (`store_appended_records`, `store_compactions`,
    /// `store_append_errors`, `store_loaded_records`,
    /// `store_torn_bytes_discarded`) become polled counters with windowed
    /// deltas; `store_file_bytes` and `store_live_entries` can shrink on
    /// compaction, so they register as gauges.
    pub fn register_observability(self: &Arc<Self>, registry: &gbd_obs::Registry) {
        type StatReader = fn(&StoreStats) -> u64;
        let counter_series: [(&str, StatReader); 5] = [
            ("store_appended_records", |s| s.appended_records),
            ("store_compactions", |s| s.compactions),
            ("store_append_errors", |s| s.append_errors),
            ("store_loaded_records", |s| s.loaded_records),
            ("store_torn_bytes_discarded", |s| s.torn_bytes_discarded),
        ];
        for (name, read) in counter_series {
            let store = Arc::clone(self);
            registry.polled_counter(name, move || read(&store.stats()));
        }
        let file_bytes = Arc::clone(self);
        registry.gauge("store_file_bytes", move || {
            file_bytes.stats().file_bytes as f64
        });
        let live = Arc::clone(self);
        registry.gauge("store_live_entries", move || {
            live.stats().live_entries as f64
        });
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned store mutex means a panic mid-append; the on-disk
        // log is still a valid prefix, so continuing is safe.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

fn lock_tee(tee: &Mutex<Option<Tee>>) -> std::sync::MutexGuard<'_, Option<Tee>> {
    match tee.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gbd-store-lib-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn open_append_reopen_round_trips() {
        let path = temp_path("roundtrip.gbdstore");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path, b"tag-v1").unwrap();
        store.append(1, b"k1", b"v1").unwrap();
        store.append(2, b"k2", b"v2").unwrap();
        store.sync().unwrap();
        let s = store.stats();
        assert_eq!(s.live_entries, 2);
        assert_eq!(s.appended_records, 2);
        assert_eq!(s.loaded_records, 0);
        drop(store);

        let store = Store::open(&path, b"tag-v1").unwrap();
        let s = store.stats();
        assert_eq!(s.live_entries, 2);
        assert_eq!(s.loaded_records, 2);
        assert_eq!(s.torn_bytes_discarded, 0);
        assert_eq!(store.get(1, b"k1"), Some(b"v1".to_vec()));
        assert_eq!(store.get(2, b"k2"), Some(b"v2".to_vec()));
        let mut seen = Vec::new();
        store.for_each(|kind, key, value| {
            seen.push((kind, key.to_vec(), value.to_vec()));
        });
        assert_eq!(seen.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn digest_is_order_independent_and_content_sensitive() {
        let path_a = temp_path("digest-a.gbdstore");
        let path_b = temp_path("digest-b.gbdstore");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let a = Store::open(&path_a, b"t").unwrap();
        let b = Store::open(&path_b, b"t").unwrap();
        assert_eq!(a.digest(), 0, "empty stores digest to 0");
        // Same live entries, opposite append order: digests match — the
        // property a standby needs, since replication can interleave.
        a.append(1, b"k1", b"v1").unwrap();
        a.append(2, b"k2", b"v2").unwrap();
        b.append(2, b"k2", b"v2").unwrap();
        b.append(1, b"k1", b"v1").unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), 0);
        // Last-wins overwrite changes the digest; converging the other
        // store brings them back in step.
        a.append(1, b"k1", b"v9").unwrap();
        assert_ne!(a.digest(), b.digest());
        b.append(1, b"k1", b"v9").unwrap();
        assert_eq!(a.digest(), b.digest());
        // Kind and key-length are part of the per-entry record: moving a
        // byte between key and value, or between kinds, changes the digest.
        let before = a.digest();
        a.append(1, b"k1x", b"").unwrap();
        assert_ne!(a.digest(), before);
        // The digest survives compaction and reopen (it hashes live
        // content, not log layout).
        let pre = a.digest();
        a.compact().unwrap();
        assert_eq!(a.digest(), pre);
        drop(a);
        let a = Store::open(&path_a, b"t").unwrap();
        assert_eq!(a.digest(), pre);
        std::fs::remove_file(&path_a).unwrap();
        std::fs::remove_file(&path_b).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_and_counts_it() {
        let path = temp_path("torn.gbdstore");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path, b"t").unwrap();
        store.append(1, b"a", b"1").unwrap();
        store.sync().unwrap();
        drop(store);
        let valid_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&format::encode_frame(1, b"b", b"2")[..6]);
        std::fs::write(&path, &bytes).unwrap();

        let store = Store::open(&path, b"t").unwrap();
        let s = store.stats();
        assert_eq!(s.live_entries, 1);
        assert_eq!(s.torn_bytes_discarded, 6);
        assert_eq!(s.file_bytes, valid_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
        // The truncated log accepts new appends and survives reopen.
        store.append(1, b"b", b"2").unwrap();
        store.sync().unwrap();
        drop(store);
        let store = Store::open(&path, b"t").unwrap();
        assert_eq!(store.stats().live_entries, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn identity_and_schema_mismatch_refuse_to_open() {
        let path = temp_path("identity.gbdstore");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path, b"tag-a").unwrap();
        store.append(1, b"k", b"v").unwrap();
        drop(store);
        assert!(matches!(
            Store::open(&path, b"tag-b"),
            Err(StoreError::IdentityMismatch { .. })
        ));
        // Different schema version in the header refuses as well.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 9;
        let crc = format::crc32(&bytes[..8 + 4 + 4 + 5]);
        let crc_at = 8 + 4 + 4 + 5;
        bytes[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Store::open(&path, b"tag-a"),
            Err(StoreError::SchemaMismatch { found: 9, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_drops_duplicates_and_preserves_values() {
        let path = temp_path("compact.gbdstore");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path, b"t").unwrap();
        for _ in 0..5 {
            store.append(1, b"dup", b"value").unwrap();
        }
        store.append(2, b"other", b"x").unwrap();
        let before = store.stats().file_bytes;
        let report = store.compact().unwrap();
        assert_eq!(report.bytes_before, before);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(report.live_entries, 2);
        assert_eq!(report.records_dropped, 4);
        assert_eq!(store.stats().compactions, 1);
        // Post-compaction appends land after the snapshot.
        store.append(3, b"late", b"y").unwrap();
        store.sync().unwrap();
        drop(store);
        let store = Store::open(&path, b"t").unwrap();
        assert_eq!(store.stats().live_entries, 3);
        assert_eq!(store.get(1, b"dup"), Some(b"value".to_vec()));
        assert_eq!(store.get(3, b"late"), Some(b"y".to_vec()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn inspect_reports_without_mutating() {
        let path = temp_path("inspect.gbdstore");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path, b"t").unwrap();
        store.append(1, b"a", b"1").unwrap();
        store.append(1, b"a", b"2").unwrap();
        store.sync().unwrap();
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        let clean_len = bytes.len() as u64;
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        let report = Store::inspect(&path).unwrap();
        assert_eq!(report.tag, b"t");
        assert_eq!(report.records, 2);
        assert_eq!(report.live_entries, 1);
        assert_eq!(report.valid_bytes, clean_len);
        assert_eq!(report.torn_bytes, 3);
        // Inspect must not truncate.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len + 3);
        std::fs::remove_file(&path).unwrap();
    }
}
