//! Append path: creates fresh logs, appends checksummed frames, and —
//! under the `chaos` feature — deterministically crashes mid-append to
//! exercise torn-write recovery.

use crate::format;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// Appends framed records to an open log file.
///
/// Each append is a single `write_all` of the full frame, so on a clean
/// process the log only ever grows by whole frames; a crash mid-write
/// leaves at most one torn frame at the tail, which recovery truncates.
#[derive(Debug)]
pub struct LogWriter {
    file: File,
    len: u64,
    appends: u64,
    #[cfg(feature = "chaos")]
    chaos_abort_after: Option<u64>,
}

impl LogWriter {
    /// Creates (truncating) a fresh log at `path` and writes the header
    /// for identity tag `tag`.
    pub fn create(path: &Path, tag: &[u8]) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let header = format::encode_header(tag);
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(LogWriter {
            file,
            len: header.len() as u64,
            appends: 0,
            #[cfg(feature = "chaos")]
            chaos_abort_after: chaos_abort_after(),
        })
    }

    /// Opens an existing, already-validated log for appending, truncating
    /// it to `valid_len` first (dropping any torn tail recovery found).
    pub fn open_append(path: &Path, valid_len: u64) -> io::Result<Self> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(LogWriter {
            file,
            len: valid_len,
            appends: 0,
            #[cfg(feature = "chaos")]
            chaos_abort_after: chaos_abort_after(),
        })
    }

    /// Appends one record frame. Returns the new file length.
    pub fn append(&mut self, kind: u8, key: &[u8], value: &[u8]) -> io::Result<u64> {
        let frame = format::encode_frame(kind, key, value);
        #[cfg(feature = "chaos")]
        self.maybe_chaos_abort(&frame);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.appends += 1;
        Ok(self.len)
    }

    /// Flushes appended frames to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Current file length in bytes (header plus whole frames).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Records appended through this writer since it was opened.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Crash injection: once `GBD_STORE_CHAOS_ABORT_AFTER=N` appends have
    /// completed, the next append writes only half its frame, syncs it to
    /// disk so the torn bytes are really there, and aborts the process —
    /// the closest deterministic stand-in for `kill -9` mid-write.
    #[cfg(feature = "chaos")]
    fn maybe_chaos_abort(&mut self, frame: &[u8]) {
        let Some(limit) = self.chaos_abort_after else {
            return;
        };
        if self.appends < limit {
            return;
        }
        let torn = &frame[..frame.len() / 2];
        let _ = self.file.write_all(torn);
        let _ = self.file.sync_data();
        eprintln!(
            "gbd-store chaos: aborting after {} appends with a {}-byte torn frame",
            self.appends,
            torn.len()
        );
        std::process::abort();
    }
}

#[cfg(feature = "chaos")]
fn chaos_abort_after() -> Option<u64> {
    std::env::var("GBD_STORE_CHAOS_ABORT_AFTER")
        .ok()?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{decode_frame, parse_header};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gbd-store-writer-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn create_append_reopen_appends_at_end() {
        let path = temp_path("reopen.log");
        let mut w = LogWriter::create(&path, b"tag").unwrap();
        w.append(1, b"a", b"1").unwrap();
        let len = w.append(2, b"b", b"2").unwrap();
        w.sync().unwrap();
        assert_eq!(w.appends(), 2);
        drop(w);

        let mut w = LogWriter::open_append(&path, len).unwrap();
        w.append(3, b"c", b"3").unwrap();
        w.sync().unwrap();
        assert_eq!(w.len(), std::fs::metadata(&path).unwrap().len());

        let bytes = std::fs::read(&path).unwrap();
        let (tag, mut at) = parse_header(&bytes).unwrap();
        assert_eq!(tag, b"tag");
        let mut kinds = Vec::new();
        while let Some((record, next)) = decode_frame(&bytes, at) {
            kinds.push(record.kind);
            at = next;
        }
        assert_eq!(kinds, vec![1, 2, 3]);
        assert_eq!(at, bytes.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_append_truncates_torn_tail() {
        let path = temp_path("truncate.log");
        let mut w = LogWriter::create(&path, b"tag").unwrap();
        let valid = w.append(1, b"a", b"1").unwrap();
        drop(w);
        // Simulate a torn write past the valid prefix.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&path, &bytes).unwrap();

        let w = LogWriter::open_append(&path, valid).unwrap();
        assert_eq!(w.len(), valid);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid);
        std::fs::remove_file(&path).unwrap();
    }
}
