//! On-disk layout: magic, versioned header, CRC-framed records, and the
//! little-endian byte codec shared with store clients.
//!
//! ```text
//! file   := header record*
//! header := magic(8) version(u32) tag_len(u32) tag(tag_len) header_crc(u32)
//! record := payload_len(u32) payload_crc(u32) payload(payload_len)
//! payload:= kind(u8) key_len(u32) key(key_len) value(rest)
//! ```
//!
//! All integers are little-endian. `header_crc` covers every header byte
//! before it; `payload_crc` covers exactly the payload bytes. A record
//! whose frame is short, oversized, or fails its CRC marks the end of the
//! valid prefix — recovery truncates there (see [`crate::reader`]).

/// First eight bytes of every store file.
pub const MAGIC: [u8; 8] = *b"GBDSTOR1";

/// On-disk schema version. Bump on any incompatible layout change; open
/// refuses files written under a different version.
pub const SCHEMA_VERSION: u32 = 1;

/// Upper bound on the identity tag accepted from disk, so a corrupt
/// length field cannot make the header parser allocate gigabytes.
pub const MAX_TAG_LEN: u32 = 4096;

/// Upper bound on a single record payload (256 MiB). Real records are
/// kilobytes; anything larger is treated as corruption.
pub const MAX_PAYLOAD_LEN: u32 = 256 << 20;

/// Bytes of framing around each payload: length word plus CRC word.
pub const FRAME_OVERHEAD: usize = 8;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Serializes the file header for identity tag `tag`.
pub fn encode_header(tag: &[u8]) -> Vec<u8> {
    debug_assert!(tag.len() <= MAX_TAG_LEN as usize, "identity tag too long");
    let mut out = Vec::with_capacity(8 + 4 + 4 + tag.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(tag.len() as u32).to_le_bytes());
    out.extend_from_slice(tag);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Why a header failed to parse. Unlike record damage, header damage is
/// not recoverable: without a trusted identity tag, serving any cached
/// value would risk shadowing exact results with foreign ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// File shorter than a minimal header, or magic bytes wrong.
    NotAStore,
    /// Magic matched but the file was written under a different schema
    /// version than [`SCHEMA_VERSION`].
    SchemaMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// Length field out of bounds or header CRC mismatch.
    Corrupt,
}

/// Parses a header from the front of `buf`, returning the identity tag
/// and the number of header bytes consumed.
pub fn parse_header(buf: &[u8]) -> Result<(Vec<u8>, usize), HeaderError> {
    if buf.len() < 8 + 4 + 4 + 4 {
        return Err(HeaderError::NotAStore);
    }
    if buf[..8] != MAGIC {
        return Err(HeaderError::NotAStore);
    }
    let version = read_u32(buf, 8);
    if version != SCHEMA_VERSION {
        return Err(HeaderError::SchemaMismatch { found: version });
    }
    let tag_len = read_u32(buf, 12);
    if tag_len > MAX_TAG_LEN {
        return Err(HeaderError::Corrupt);
    }
    let end = 16 + tag_len as usize;
    if buf.len() < end + 4 {
        return Err(HeaderError::Corrupt);
    }
    let stored = read_u32(buf, end);
    if crc32(&buf[..end]) != stored {
        return Err(HeaderError::Corrupt);
    }
    Ok((buf[16..end].to_vec(), end + 4))
}

/// Serializes one record frame (`len crc payload`) for `kind`/`key`/`value`.
pub fn encode_frame(kind: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let payload_len = 1 + 4 + key.len() + value.len();
    debug_assert!(payload_len <= MAX_PAYLOAD_LEN as usize, "record too large");
    let mut payload = Vec::with_capacity(payload_len);
    payload.push(kind);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    payload.extend_from_slice(value);
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// One decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Client-defined record kind (e.g. geometry / stage / result).
    pub kind: u8,
    /// Client-encoded cache key bytes.
    pub key: Vec<u8>,
    /// Client-encoded value bytes.
    pub value: Vec<u8>,
}

/// Decodes the frame starting at `offset` in `buf`. Returns the record
/// and the offset just past it, or `None` if the bytes from `offset` on
/// do not form a complete, checksummed frame (torn tail or corruption).
pub fn decode_frame(buf: &[u8], offset: usize) -> Option<(Record, usize)> {
    let rest = buf.get(offset..)?;
    if rest.len() < FRAME_OVERHEAD {
        return None;
    }
    let payload_len = read_u32(rest, 0);
    if !(5..=MAX_PAYLOAD_LEN).contains(&payload_len) {
        return None;
    }
    let payload_len = payload_len as usize;
    let payload = rest.get(FRAME_OVERHEAD..FRAME_OVERHEAD + payload_len)?;
    if crc32(payload) != read_u32(rest, 4) {
        return None;
    }
    let kind = payload[0];
    let key_len = read_u32(payload, 1) as usize;
    if 5 + key_len > payload.len() {
        return None;
    }
    let record = Record {
        kind,
        key: payload[5..5 + key_len].to_vec(),
        value: payload[5 + key_len..].to_vec(),
    };
    Some((record, offset + FRAME_OVERHEAD + payload_len))
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

/// Append-only little-endian byte encoder for record keys and values.
/// Store clients (the engine's persistence codec) use this so every
/// serialized artifact shares one byte order and float convention.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits, so the value read back
    /// is bit-identical (including NaN payloads and signed zero).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed `f64` slice (raw bits per element).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Consumes the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked reader over bytes produced by [`ByteWriter`]. Every
/// getter returns `None` past the end instead of panicking, so a decoder
/// over foreign bytes degrades to "skip this record", never a crash.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        let slice = self.buf.get(self.at..self.at + 4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(slice);
        self.at += 4;
        Some(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        let slice = self.buf.get(self.at..self.at + 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(slice);
        self.at += 8;
        Some(u64::from_le_bytes(b))
    }

    /// Reads an `f64` from raw bits (inverse of [`ByteWriter::put_f64`]).
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn get_u64_slice(&mut self) -> Option<Vec<u64>> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() / 8 {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Some(out)
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn get_f64_slice(&mut self) -> Option<Vec<f64>> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() / 8 {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Some(out)
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// True when every byte has been consumed — decoders check this so a
    /// record with trailing garbage is rejected rather than half-read.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn header_round_trips() {
        let bytes = encode_header(b"engine-v1");
        let (tag, len) = parse_header(&bytes).unwrap();
        assert_eq!(tag, b"engine-v1");
        assert_eq!(len, bytes.len());
    }

    #[test]
    fn header_rejects_damage() {
        let bytes = encode_header(b"tag");
        assert_eq!(parse_header(&bytes[..7]), Err(HeaderError::NotAStore));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(parse_header(&wrong_magic), Err(HeaderError::NotAStore));
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert_eq!(
            parse_header(&wrong_version),
            Err(HeaderError::SchemaMismatch { found: 99 })
        );
        let mut flipped_tag = bytes.clone();
        flipped_tag[16] ^= 0x01;
        assert_eq!(parse_header(&flipped_tag), Err(HeaderError::Corrupt));
        let mut huge_len = bytes;
        huge_len[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(parse_header(&huge_len), Err(HeaderError::Corrupt));
    }

    #[test]
    fn frame_round_trips() {
        let frame = encode_frame(3, b"key", b"value-bytes");
        let (record, next) = decode_frame(&frame, 0).unwrap();
        assert_eq!(next, frame.len());
        assert_eq!(record.kind, 3);
        assert_eq!(record.key, b"key");
        assert_eq!(record.value, b"value-bytes");
    }

    #[test]
    fn frame_rejects_torn_and_corrupt_bytes() {
        let frame = encode_frame(1, b"k", b"v");
        // Torn tail: any strict prefix fails to decode.
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut], 0).is_none(), "cut={cut}");
        }
        // A flipped payload byte fails the CRC.
        for at in FRAME_OVERHEAD..frame.len() {
            let mut bad = frame.clone();
            bad[at] ^= 0x10;
            assert!(decode_frame(&bad, 0).is_none(), "flip at {at}");
        }
    }

    #[test]
    fn byte_codec_round_trips_exact_bits() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NEG_INFINITY);
        w.put_f64_slice(&[0.1, 0.2, f64::INFINITY]);
        w.put_u64_slice(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Some(u64::MAX - 1));
        assert_eq!(r.get_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.get_f64(), Some(f64::NEG_INFINITY));
        let fs = r.get_f64_slice().unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0].to_bits(), 0.1f64.to_bits());
        assert_eq!(r.get_u64_slice(), Some(vec![1, 2, 3]));
        assert!(r.is_empty());
        assert_eq!(r.get_u8(), None);
    }

    #[test]
    fn byte_reader_rejects_lying_lengths() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // claims a 4-billion element slice
        let bytes = w.finish();
        assert!(ByteReader::new(&bytes).get_f64_slice().is_none());
        assert!(ByteReader::new(&bytes).get_u64_slice().is_none());
    }
}
