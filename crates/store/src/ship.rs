//! Log shipping: stream a store's CRC-framed records to a follower over
//! TCP, so a warm standby holds everything the primary computed.
//!
//! The wire format is exactly the on-disk format: one store header
//! (magic, schema version, identity tag) per connection, then raw append
//! frames. The follower therefore gets the same identity and corruption
//! gates a local recovery does — a frame that would be rejected on disk
//! is rejected on the wire.
//!
//! Delivery is at-least-once, never silently lossy:
//!
//! - every (re)connect replays the store's full live index before the
//!   streamed tail, so a follower that was down catches up on attach;
//! - a record dropped because the bounded queue was full is counted and
//!   triggers a live-index replay on the same connection, so the
//!   follower converges even under overload;
//! - applying a record twice is harmless (last-writer-wins on identical
//!   values), which is what makes both of the above safe.

use crate::format::{self, Record};
use crate::{HeaderError, Store};
use std::fmt;
use std::io::{self, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Initial reconnect backoff; doubles per failed attempt up to
/// [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(50);
/// Reconnect backoff cap.
const MAX_BACKOFF: Duration = Duration::from_secs(1);
/// Idle poll interval of the shipping thread: pending bytes are flushed
/// and the resync flag is honored at least this often.
const IDLE_FLUSH: Duration = Duration::from_millis(100);

/// Counters describing a [`Shipper`]'s progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipperStats {
    /// Records written to the follower connection (live-index replays
    /// included, so this can exceed the primary's append count).
    pub shipped_records: u64,
    /// Records dropped because the queue was full or no connection was
    /// up. Each drop schedules a live-index replay, so dropped records
    /// still reach the follower — this counts deferrals, not data loss.
    pub dropped_records: u64,
    /// Successful (re)connects to the follower.
    pub connects: u64,
}

enum ShipMsg {
    Frame(Vec<u8>),
    Flush(SyncSender<()>),
}

struct Shared {
    shipped: AtomicU64,
    dropped: AtomicU64,
    connects: AtomicU64,
    resync: AtomicBool,
    stopped: AtomicBool,
}

/// Ships a store's append stream to a follower address in the
/// background. Create with [`Shipper::start`], feed it from a
/// [`Store::set_tee`] hook, and [`Shipper::stop`] it on drain.
pub struct Shipper {
    shared: Arc<Shared>,
    tx: Mutex<Option<SyncSender<ShipMsg>>>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for Shipper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shipper")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Shipper {
    /// Starts the shipping thread for `store`, targeting the follower at
    /// `addr`. Connection failures are retried with capped backoff
    /// forever (a follower may come up later); every successful connect
    /// sends the store header and replays the live index before the
    /// streamed tail.
    ///
    /// # Errors
    ///
    /// Only thread-spawn failure; the first connect happens in the
    /// background.
    pub fn start(
        store: Arc<Store>,
        addr: impl Into<String>,
        queue_cap: usize,
    ) -> io::Result<Arc<Shipper>> {
        let addr = addr.into();
        let (tx, rx) = mpsc::sync_channel::<ShipMsg>(queue_cap.max(1));
        let shared = Arc::new(Shared {
            shipped: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            resync: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("gbd-store-shipper".to_string())
            .spawn(move || run(&store, &addr, &rx, &thread_shared))?;
        Ok(Arc::new(Shipper {
            shared,
            tx: Mutex::new(Some(tx)),
            thread: Mutex::new(Some(thread)),
        }))
    }

    /// Enqueues one record for shipping. Non-blocking: a full queue (or a
    /// stopped shipper) counts a drop and schedules a live-index replay
    /// instead of stalling the append path.
    pub fn ship(&self, kind: u8, key: &[u8], value: &[u8]) {
        let frame = format::encode_frame(kind, key, value);
        let sent = match &*lock(&self.tx) {
            Some(tx) => tx.try_send(ShipMsg::Frame(frame)).is_ok(),
            None => false,
        };
        if !sent {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            self.shared.resync.store(true, Ordering::Relaxed);
        }
    }

    /// Schedules a live-index replay on the current (or next) connection.
    /// Callers use this after attaching the append tee, closing the race
    /// between the initial replay and the first teed append.
    pub fn request_resync(&self) {
        self.shared.resync.store(true, Ordering::Relaxed);
    }

    /// Blocks until every queued record has been written and flushed to
    /// the follower connection, or `timeout` elapses. Returns `false` on
    /// timeout or when no connection could be flushed.
    pub fn flush(&self, timeout: Duration) -> bool {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        // Clone the sender out of the mutex before the (blocking) send:
        // holding the lock across it would stall appenders' `ship` calls.
        let tx = lock(&self.tx).clone();
        let sent = match tx {
            Some(tx) => tx.send(ShipMsg::Flush(ack_tx)).is_ok(),
            None => false,
        };
        sent && ack_rx.recv_timeout(timeout).is_ok()
    }

    /// Current counters.
    pub fn stats(&self) -> ShipperStats {
        ShipperStats {
            shipped_records: self.shared.shipped.load(Ordering::Relaxed),
            dropped_records: self.shared.dropped.load(Ordering::Relaxed),
            connects: self.shared.connects.load(Ordering::Relaxed),
        }
    }

    /// Stops the shipping thread after it writes out the queued tail.
    /// Idempotent.
    pub fn stop(&self) {
        self.shared.stopped.store(true, Ordering::Relaxed);
        // Dropping the sender ends the thread's recv loop once the queue
        // is drained.
        lock(&self.tx).take();
        let handle = lock(&self.thread).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The shipping thread: connect (with backoff), header + live replay,
/// then stream the queue; any I/O error tears the connection down and
/// reconnects, which replays the live index again — at-least-once.
fn run(store: &Store, addr: &str, rx: &Receiver<ShipMsg>, shared: &Shared) {
    let mut backoff = INITIAL_BACKOFF;
    'connect: loop {
        if shared.stopped.load(Ordering::Relaxed) {
            // Drain the queue as drops so flush() callers are not left
            // hanging on a dead connection.
            while let Ok(msg) = rx.try_recv() {
                match msg {
                    ShipMsg::Frame(_) => {
                        shared.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    ShipMsg::Flush(ack) => {
                        let _ = ack.send(());
                    }
                }
            }
            return;
        }
        let stream = match TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(_) => {
                // Keep consuming while disconnected so the bounded queue
                // does not wedge the tee; a replay covers these records.
                match rx.recv_timeout(backoff) {
                    Ok(ShipMsg::Frame(_)) => {
                        shared.dropped.fetch_add(1, Ordering::Relaxed);
                        shared.resync.store(true, Ordering::Relaxed);
                    }
                    Ok(ShipMsg::Flush(ack)) => {
                        let _ = ack.send(());
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                backoff = (backoff * 2).min(MAX_BACKOFF);
                continue;
            }
        };
        backoff = INITIAL_BACKOFF;
        shared.connects.fetch_add(1, Ordering::Relaxed);
        let mut out = BufWriter::new(stream);
        if out.write_all(&format::encode_header(store.tag())).is_err() {
            continue;
        }
        shared.resync.store(false, Ordering::Relaxed);
        if write_live(store, &mut out, shared).is_err() {
            continue;
        }
        loop {
            if shared.resync.swap(false, Ordering::Relaxed)
                && write_live(store, &mut out, shared).is_err()
            {
                continue 'connect;
            }
            match rx.recv_timeout(IDLE_FLUSH) {
                Ok(ShipMsg::Frame(frame)) => {
                    if out.write_all(&frame).is_err() {
                        shared.dropped.fetch_add(1, Ordering::Relaxed);
                        shared.resync.store(true, Ordering::Relaxed);
                        continue 'connect;
                    }
                    shared.shipped.fetch_add(1, Ordering::Relaxed);
                }
                Ok(ShipMsg::Flush(ack)) => {
                    let flushed = out.flush().is_ok();
                    let _ = ack.send(());
                    if !flushed {
                        continue 'connect;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if out.flush().is_err() {
                        continue 'connect;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let _ = out.flush();
                    return;
                }
            }
        }
    }
}

/// Replays every live `(kind, key, value)` entry onto the connection.
fn write_live(
    store: &Store,
    out: &mut BufWriter<TcpStream>,
    shared: &Shared,
) -> io::Result<()> {
    let mut result = Ok(());
    let mut replayed = 0u64;
    store.for_each(|kind, key, value| {
        if result.is_ok() {
            result = out.write_all(&format::encode_frame(kind, key, value));
            if result.is_ok() {
                replayed += 1;
            }
        }
    });
    shared.shipped.fetch_add(replayed, Ordering::Relaxed);
    result?;
    out.flush()
}

/// Why a follower rejected or lost its feed.
#[derive(Debug)]
pub enum FollowerError {
    /// The connection died (normal when the primary exits).
    Io(io::Error),
    /// The stream does not start with a valid store header.
    Header(HeaderError),
    /// The primary ships records for a different identity tag; applying
    /// them could serve values computed under different semantics.
    IdentityMismatch {
        /// Tag found in the stream header (lossy UTF-8 for display).
        found: String,
    },
    /// A frame failed its length or CRC check mid-stream.
    Corrupt,
}

impl fmt::Display for FollowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FollowerError::Io(e) => write!(f, "replication stream i/o error: {e}"),
            FollowerError::Header(e) => write!(f, "replication stream header invalid: {e:?}"),
            FollowerError::IdentityMismatch { found } => {
                write!(
                    f,
                    "replication stream carries foreign identity tag `{found}`"
                )
            }
            FollowerError::Corrupt => write!(f, "replication frame corrupt"),
        }
    }
}

impl std::error::Error for FollowerError {}

impl From<io::Error> for FollowerError {
    fn from(e: io::Error) -> Self {
        FollowerError::Io(e)
    }
}

/// The receiving half of log shipping: validates the per-connection
/// header, then yields records one frame at a time. Works over any
/// [`Read`] (a `TcpStream`, a `BufReader`, a test cursor).
pub struct Follower<R: Read> {
    input: R,
}

impl<R: Read> Follower<R> {
    /// Reads and validates the stream header. The schema version and
    /// `expected_tag` gate compatibility exactly as [`Store::open`] does
    /// for a local file.
    ///
    /// # Errors
    ///
    /// [`FollowerError::Io`] when the header could not be read,
    /// [`FollowerError::Header`] when it is not a valid store header, and
    /// [`FollowerError::IdentityMismatch`] when the tag is foreign.
    pub fn accept(mut input: R, expected_tag: &[u8]) -> Result<Follower<R>, FollowerError> {
        // magic(8) + version(4) + tag_len(4), then tag + header crc(4).
        let mut head = [0u8; 16];
        input.read_exact(&mut head)?;
        let tag_len = u32::from_le_bytes([head[12], head[13], head[14], head[15]]);
        if tag_len > format::MAX_TAG_LEN {
            return Err(FollowerError::Header(HeaderError::Corrupt));
        }
        let mut buf = head.to_vec();
        let rest_at = buf.len();
        buf.resize(rest_at + tag_len as usize + 4, 0);
        input.read_exact(&mut buf[rest_at..])?;
        let (tag, _) = format::parse_header(&buf).map_err(FollowerError::Header)?;
        if tag != expected_tag {
            return Err(FollowerError::IdentityMismatch {
                found: String::from_utf8_lossy(&tag).into_owned(),
            });
        }
        Ok(Follower { input })
    }

    /// Reads the next record. `Ok(None)` on a clean end of stream at a
    /// frame boundary (the primary closed the connection); an EOF inside
    /// a frame is [`FollowerError::Corrupt`] — the torn frame is
    /// discarded exactly as disk recovery discards a torn tail.
    ///
    /// # Errors
    ///
    /// [`FollowerError::Io`] on transport failure,
    /// [`FollowerError::Corrupt`] on a bad length or CRC.
    pub fn next_record(&mut self) -> Result<Option<Record>, FollowerError> {
        let mut frame_head = [0u8; 8];
        match read_full(&mut self.input, &mut frame_head)? {
            0 => return Ok(None),
            n if n < frame_head.len() => return Err(FollowerError::Corrupt),
            _ => {}
        }
        let payload_len =
            u32::from_le_bytes([frame_head[0], frame_head[1], frame_head[2], frame_head[3]]);
        if !(5..=format::MAX_PAYLOAD_LEN).contains(&payload_len) {
            return Err(FollowerError::Corrupt);
        }
        let mut frame = frame_head.to_vec();
        let payload_at = frame.len();
        frame.resize(payload_at + payload_len as usize, 0);
        if self.input.read_exact(&mut frame[payload_at..]).is_err() {
            return Err(FollowerError::Corrupt);
        }
        match format::decode_frame(&frame, 0) {
            Some((record, _)) => Ok(Some(record)),
            None => Err(FollowerError::Corrupt),
        }
    }
}

/// Reads until `buf` is full or EOF; returns the bytes read (a short
/// count means EOF landed mid-buffer).
fn read_full(input: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::net::TcpListener;
    use std::path::PathBuf;

    fn temp_store(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gbd-store-ship-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn stream_of(tag: &[u8], records: &[(u8, &[u8], &[u8])]) -> Vec<u8> {
        let mut bytes = format::encode_header(tag);
        for (kind, key, value) in records {
            bytes.extend_from_slice(&format::encode_frame(*kind, key, value));
        }
        bytes
    }

    #[test]
    fn follower_yields_records_and_ends_cleanly() {
        let bytes = stream_of(b"tag", &[(1, b"k1", b"v1"), (2, b"k2", b"v2")]);
        let mut follower = Follower::accept(Cursor::new(bytes), b"tag").unwrap();
        let r1 = follower.next_record().unwrap().unwrap();
        assert_eq!(
            (r1.kind, r1.key.as_slice(), r1.value.as_slice()),
            (1, &b"k1"[..], &b"v1"[..])
        );
        let r2 = follower.next_record().unwrap().unwrap();
        assert_eq!(r2.kind, 2);
        assert!(follower.next_record().unwrap().is_none());
    }

    #[test]
    fn follower_rejects_foreign_tag_and_bad_header() {
        let bytes = stream_of(b"theirs", &[]);
        assert!(matches!(
            Follower::accept(Cursor::new(bytes), b"ours"),
            Err(FollowerError::IdentityMismatch { found }) if found == "theirs"
        ));
        assert!(matches!(
            Follower::accept(Cursor::new(b"not a store header".to_vec()), b"ours"),
            Err(FollowerError::Header(_) | FollowerError::Io(_))
        ));
    }

    #[test]
    fn torn_and_corrupt_frames_are_rejected_not_applied() {
        // EOF inside a frame.
        let mut bytes = stream_of(b"t", &[(1, b"key", b"value")]);
        bytes.truncate(bytes.len() - 3);
        let mut follower = Follower::accept(Cursor::new(bytes), b"t").unwrap();
        assert!(matches!(
            follower.next_record(),
            Err(FollowerError::Corrupt)
        ));

        // Flipped payload byte fails the CRC.
        let mut bytes = stream_of(b"t", &[(1, b"key", b"value")]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let mut follower = Follower::accept(Cursor::new(bytes), b"t").unwrap();
        assert!(matches!(
            follower.next_record(),
            Err(FollowerError::Corrupt)
        ));
    }

    #[test]
    fn shipper_replicates_appends_over_tcp() {
        let path = temp_store("ship.gbdstore");
        let store = Arc::new(Store::open(&path, b"ship-test").unwrap());
        // Pre-connect content exercises the initial live replay.
        store.append(1, b"early", b"e").unwrap();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let collector = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            let mut follower =
                Follower::accept(std::io::BufReader::new(conn), b"ship-test").unwrap();
            let mut got = Vec::new();
            while let Ok(Some(record)) = follower.next_record() {
                got.push((record.kind, record.key, record.value));
            }
            got
        });

        let shipper = Shipper::start(Arc::clone(&store), addr.to_string(), 64).unwrap();
        let tee = Arc::clone(&shipper);
        store.set_tee(move |kind, key, value| tee.ship(kind, key, value));
        shipper.request_resync();
        store.append(2, b"late", b"l").unwrap();
        assert!(shipper.flush(Duration::from_secs(5)));
        let stats = shipper.stats();
        assert!(stats.connects >= 1, "{stats:?}");
        assert!(stats.shipped_records >= 2, "{stats:?}");
        shipper.stop();

        let got = collector.join().unwrap();
        assert!(
            got.iter().any(|(k, key, _)| *k == 1 && key == b"early"),
            "initial replay missing: {got:?}"
        );
        assert!(
            got.iter().any(|(k, key, _)| *k == 2 && key == b"late"),
            "teed append missing: {got:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
