//! In-memory live view of the log: last-wins per `(kind, key)`, with
//! first-seen insertion order preserved for deterministic iteration and
//! compaction output.

use std::collections::HashMap;

/// One live entry.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub kind: u8,
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

/// Live `(kind, key) → value` map over an append-only log.
///
/// Duplicate appends are expected — the engine's spill path can race two
/// computations of the same key, and repeated runs re-spill evicted
/// entries — so the index keeps the latest value per key. Values for one
/// key are bit-identical by construction (deterministic compute), so
/// "last wins" is a space rule, not a semantic one.
#[derive(Debug, Default)]
pub(crate) struct Index {
    entries: Vec<Entry>,
    by_key: HashMap<(u8, Vec<u8>), usize>,
}

impl Index {
    /// Applies one record in log order.
    pub fn apply(&mut self, kind: u8, key: Vec<u8>, value: Vec<u8>) {
        match self.by_key.get(&(kind, key.clone())) {
            Some(&at) => self.entries[at].value = value,
            None => {
                self.by_key.insert((kind, key.clone()), self.entries.len());
                self.entries.push(Entry { kind, key, value });
            }
        }
    }

    /// Live entries in first-seen order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of distinct live keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Value for `(kind, key)`, if present.
    pub fn get(&self, kind: u8, key: &[u8]) -> Option<&[u8]> {
        self.by_key
            .get(&(kind, key.to_vec()))
            .map(|&at| self.entries[at].value.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_wins_and_order_is_first_seen() {
        let mut idx = Index::default();
        idx.apply(1, b"a".to_vec(), b"1".to_vec());
        idx.apply(2, b"a".to_vec(), b"other-kind".to_vec());
        idx.apply(1, b"b".to_vec(), b"2".to_vec());
        idx.apply(1, b"a".to_vec(), b"3".to_vec());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.get(1, b"a"), Some(b"3".as_slice()));
        assert_eq!(idx.get(2, b"a"), Some(b"other-kind".as_slice()));
        assert_eq!(idx.get(1, b"missing"), None);
        let order: Vec<(u8, &[u8])> = idx
            .entries()
            .iter()
            .map(|e| (e.kind, e.key.as_slice()))
            .collect();
        assert_eq!(
            order,
            vec![
                (1u8, b"a".as_slice()),
                (2u8, b"a".as_slice()),
                (1u8, b"b".as_slice())
            ]
        );
    }
}
