//! Recovery scan: validates the header, then walks frames until the
//! first bad one, yielding the longest valid prefix.

use crate::format::{self, HeaderError, Record};
use std::io;
use std::path::Path;

/// Everything a recovery scan learns about a log file.
#[derive(Debug)]
pub struct Recovered {
    /// Identity tag from the (validated) header.
    pub tag: Vec<u8>,
    /// Records in the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (header plus whole frames). The
    /// file is safe to truncate to this length and append from there.
    pub valid_len: u64,
    /// Bytes past the valid prefix — a torn tail or corrupt record run.
    /// Zero for a cleanly closed log.
    pub torn_bytes: u64,
}

/// Why a log could not be opened at all. Record-level damage never
/// produces an error — it shortens the valid prefix instead — so every
/// variant here means the header itself cannot be trusted.
#[derive(Debug)]
pub enum RecoverError {
    /// Filesystem error reading the log.
    Io(io::Error),
    /// The header failed validation.
    Header(HeaderError),
}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// Scans the log at `path`, returning its valid prefix.
///
/// The scan stops at the first frame that is short, oversized, or fails
/// its CRC: everything after it is untrusted (frame lengths chain each
/// frame to the next, so later bytes cannot be re-synchronized safely).
/// This is the "truncate at first bad record" recovery the store
/// guarantees — a crash mid-append costs at most the torn tail.
pub fn recover(path: &Path) -> Result<Recovered, RecoverError> {
    let bytes = std::fs::read(path)?;
    recover_bytes(&bytes)
}

/// [`recover`] over in-memory bytes (separated for tests).
pub fn recover_bytes(bytes: &[u8]) -> Result<Recovered, RecoverError> {
    let (tag, header_len) = format::parse_header(bytes).map_err(RecoverError::Header)?;
    let mut records = Vec::new();
    let mut at = header_len;
    while let Some((record, next)) = format::decode_frame(bytes, at) {
        records.push(record);
        at = next;
    }
    Ok(Recovered {
        tag,
        records,
        valid_len: at as u64,
        torn_bytes: (bytes.len() - at) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_frame, encode_header};

    fn log_with(tag: &[u8], records: &[(u8, &[u8], &[u8])]) -> Vec<u8> {
        let mut bytes = encode_header(tag);
        for &(kind, key, value) in records {
            bytes.extend_from_slice(&encode_frame(kind, key, value));
        }
        bytes
    }

    #[test]
    fn clean_log_recovers_everything() {
        let bytes = log_with(b"t", &[(1, b"a", b"1"), (2, b"b", b"2")]);
        let r = recover_bytes(&bytes).unwrap();
        assert_eq!(r.tag, b"t");
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.valid_len, bytes.len() as u64);
        assert_eq!(r.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_recovers_to_longest_valid_prefix() {
        let clean = log_with(b"t", &[(1, b"a", b"1"), (2, b"b", b"2")]);
        let clean_len = clean.len();
        let extra = encode_frame(3, b"c", b"3");
        // Every partial suffix of a third record still recovers exactly
        // the first two.
        for cut in 1..extra.len() {
            let mut torn = clean.clone();
            torn.extend_from_slice(&extra[..cut]);
            let r = recover_bytes(&torn).unwrap();
            assert_eq!(r.records.len(), 2, "cut={cut}");
            assert_eq!(r.valid_len, clean_len as u64, "cut={cut}");
            assert_eq!(r.torn_bytes, cut as u64, "cut={cut}");
        }
    }

    #[test]
    fn mid_log_corruption_truncates_there() {
        let bytes = log_with(b"t", &[(1, b"a", b"1"), (2, b"b", b"2"), (3, b"c", b"3")]);
        let first_end = recover_bytes(&log_with(b"t", &[(1, b"a", b"1")]))
            .unwrap()
            .valid_len as usize;
        let mut bad = bytes;
        bad[first_end + 10] ^= 0xFF; // damage the second record's payload
        let r = recover_bytes(&bad).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.valid_len, first_end as u64);
        assert!(r.torn_bytes > 0);
    }

    #[test]
    fn header_damage_is_fatal_not_recoverable() {
        let mut bytes = log_with(b"t", &[(1, b"a", b"1")]);
        bytes[3] ^= 0xFF;
        assert!(matches!(
            recover_bytes(&bytes),
            Err(RecoverError::Header(HeaderError::NotAStore))
        ));
    }
}
