//! Confidence intervals for estimated proportions.
//!
//! The validation experiments estimate detection probabilities from 10 000
//! Monte Carlo trials; every reported point carries a Wilson score interval
//! so "analysis matches simulation" is a statistical statement, not an
//! eyeball one.

use crate::StatsError;

/// Two-sided confidence interval `[lo, hi]` for a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProportionInterval {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ProportionInterval {
    /// Whether a hypothesized true value lies inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Wilson score interval for a binomial proportion.
///
/// More accurate than the normal approximation near 0 and 1, which matters
/// because sparse-network detection probabilities at low `N` sit near 0.3
/// but the `V = 10 m/s`, `N = 240` points sit above 0.95.
///
/// `z` is the standard-normal quantile (1.96 for 95 %).
///
/// # Errors
///
/// Returns [`StatsError::NonPositive`] if `trials == 0` or `z <= 0`, and
/// [`StatsError::InvalidProbability`] if `successes > trials`.
///
/// # Example
///
/// ```
/// use gbd_stats::interval::wilson;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let ci = wilson(9300, 10_000, 1.96)?;
/// assert!(ci.contains(0.93));
/// assert!(ci.half_width() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn wilson(successes: u64, trials: u64, z: f64) -> Result<ProportionInterval, StatsError> {
    if trials == 0 {
        return Err(StatsError::NonPositive {
            name: "trials",
            value: 0.0,
        });
    }
    if z <= 0.0 || !z.is_finite() {
        return Err(StatsError::NonPositive {
            name: "z",
            value: z,
        });
    }
    if successes > trials {
        return Err(StatsError::InvalidProbability {
            name: "successes/trials",
            value: successes as f64 / trials as f64,
        });
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let spread = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Ok(ProportionInterval {
        estimate: p,
        lo: (center - spread).max(0.0),
        hi: (center + spread).min(1.0),
    })
}

/// Normal-approximation (Wald) interval; kept for comparison and for large
/// mid-range proportions where it coincides with Wilson.
///
/// # Errors
///
/// Same conditions as [`wilson`].
pub fn wald(successes: u64, trials: u64, z: f64) -> Result<ProportionInterval, StatsError> {
    if trials == 0 {
        return Err(StatsError::NonPositive {
            name: "trials",
            value: 0.0,
        });
    }
    if z <= 0.0 || !z.is_finite() {
        return Err(StatsError::NonPositive {
            name: "z",
            value: z,
        });
    }
    if successes > trials {
        return Err(StatsError::InvalidProbability {
            name: "successes/trials",
            value: successes as f64 / trials as f64,
        });
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let spread = z * (p * (1.0 - p) / n).sqrt();
    Ok(ProportionInterval {
        estimate: p,
        lo: (p - spread).max(0.0),
        hi: (p + spread).min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(wilson(0, 0, 1.96).is_err());
        assert!(wilson(5, 10, 0.0).is_err());
        assert!(wilson(11, 10, 1.96).is_err());
        assert!(wald(0, 0, 1.96).is_err());
        assert!(wald(11, 10, 1.96).is_err());
    }

    #[test]
    fn wilson_contains_estimate() {
        let ci = wilson(37, 100, 1.96).unwrap();
        assert!(ci.contains(ci.estimate));
        assert!(ci.lo < 0.37 && ci.hi > 0.37);
    }

    #[test]
    fn wilson_shrinks_with_trials() {
        let small = wilson(37, 100, 1.96).unwrap();
        let large = wilson(3700, 10_000, 1.96).unwrap();
        assert!(large.half_width() < small.half_width());
    }

    #[test]
    fn wilson_behaves_at_extremes() {
        let zero = wilson(0, 100, 1.96).unwrap();
        assert!(zero.lo < 1e-12);
        assert!(zero.hi > 0.0 && zero.hi < 0.1);
        let all = wilson(100, 100, 1.96).unwrap();
        assert!(all.hi > 1.0 - 1e-12);
        assert!(all.lo > 0.9);
    }

    #[test]
    fn wald_degenerates_at_extremes_but_wilson_does_not() {
        // The Wald interval collapses to a point at p = 0; Wilson stays open.
        let wd = wald(0, 100, 1.96).unwrap();
        assert_eq!(wd.half_width(), 0.0);
        let ws = wilson(0, 100, 1.96).unwrap();
        assert!(ws.half_width() > 0.0);
    }

    #[test]
    fn wald_and_wilson_agree_mid_range_large_n() {
        let a = wald(5000, 10_000, 1.96).unwrap();
        let b = wilson(5000, 10_000, 1.96).unwrap();
        assert!((a.lo - b.lo).abs() < 1e-3);
        assert!((a.hi - b.hi).abs() < 1e-3);
    }

    #[test]
    fn interval_bounds_clamped() {
        let ci = wilson(1, 2, 10.0).unwrap();
        assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
    }
}
