use std::fmt;

/// Error type for invalid distribution parameters and malformed inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A probability argument was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A probability vector was empty or contained negative / non-finite mass.
    InvalidPmf {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidProbability { name, value } => {
                write!(f, "probability `{name}` must lie in [0, 1], got {value}")
            }
            StatsError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            StatsError::InvalidPmf { reason } => {
                write!(f, "invalid probability mass function: {reason}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = StatsError::InvalidProbability {
            name: "pd",
            value: 1.5,
        };
        let s = e.to_string();
        assert!(s.contains("pd"));
        assert!(s.contains("1.5"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
