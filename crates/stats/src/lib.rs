#![warn(missing_docs)]
//! Numerics substrate for the `sparse-groupdet` workspace.
//!
//! This crate provides the probability and statistics building blocks used by
//! the analytical models and the Monte Carlo simulator:
//!
//! * [`gamma`] — log-gamma, log-factorial and log-binomial-coefficient
//!   special functions, needed to evaluate binomial probabilities with
//!   hundreds of trials without overflow;
//! * [`binomial`] — the [`binomial::Binomial`] distribution with numerically
//!   stable pmf/cdf/survival evaluation;
//! * [`poisson`] — the [`poisson::Poisson`] distribution, used by the
//!   density-approximation ablations;
//! * [`discrete`] — [`discrete::DiscreteDist`], a dense finitely-supported
//!   distribution over `0..=n` with convolution, saturating convolution and
//!   tail operations: the workhorse of the M-S-approach;
//! * [`interval`] — Wilson-score and normal-approximation confidence
//!   intervals for the simulated detection probabilities;
//! * [`summary`] — Welford online moments and fixed-width histograms;
//! * [`rng`] — deterministic seed derivation and ChaCha-based RNG streams so
//!   every experiment in the repository is reproducible.
//!
//! # Example
//!
//! ```
//! use gbd_stats::binomial::Binomial;
//!
//! # fn main() -> Result<(), gbd_stats::StatsError> {
//! // Probability of at least 5 detection reports out of 240 sensors when
//! // each sensor reports with probability 0.02 (the paper's M = 1 case).
//! let b = Binomial::new(240, 0.02)?;
//! let p = b.sf(4); // P[X >= 5]
//! assert!(p > 0.0 && p < 1.0);
//! # Ok(())
//! # }
//! ```

pub mod binomial;
pub mod chisq;
pub mod discrete;
pub mod gamma;
pub mod interval;
pub mod poisson;
pub mod rng;
pub mod summary;

mod error;

pub use error::StatsError;
