//! The Poisson distribution.
//!
//! Used by the density-approximation ablation: for a large field the number
//! of sensors in a region of area `A` under uniform random deployment is
//! approximately `Poisson(λ)` with `λ = N·A/S`. Comparing the binomial-exact
//! and Poisson-approximate analyses quantifies when the (simpler) spatial
//! Poisson process model is adequate.

use crate::gamma::ln_factorial;
use crate::StatsError;

/// A Poisson distribution with rate `λ`.
///
/// # Example
///
/// ```
/// use gbd_stats::poisson::Poisson;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let p = Poisson::new(2.0)?;
/// assert!((p.pmf(0) - (-2.0f64).exp()).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonPositive`] if `lambda` is not finite or is
    /// negative. A rate of exactly zero is allowed (the point mass at 0).
    pub fn new(lambda: f64) -> Result<Self, StatsError> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(StatsError::NonPositive {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(Poisson { lambda })
    }

    /// The rate parameter `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean of the distribution (equal to `λ`).
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Variance of the distribution (equal to `λ`).
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// Probability mass `P[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        (k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)).exp()
    }

    /// Cumulative distribution `P[X <= k]`.
    pub fn cdf(&self, k: u64) -> f64 {
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// Survival function `P[X > k]`.
    pub fn sf(&self, k: u64) -> f64 {
        (1.0 - self.cdf(k)).clamp(0.0, 1.0)
    }

    /// The pmf truncated to `0..=max_k` as a dense vector (not normalized;
    /// the omitted tail mass is simply missing, mirroring how the paper
    /// truncates placement counts at `g`).
    pub fn pmf_vec(&self, max_k: u64) -> Vec<f64> {
        (0..=max_k).map(|k| self.pmf(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rate() {
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn zero_rate_is_point_mass() {
        let p = Poisson::new(0.0).unwrap();
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(3), 0.0);
        assert_eq!(p.cdf(0), 1.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(4.2).unwrap();
        let total: f64 = p.pmf_vec(200).iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_recurrence() {
        // P[k+1] = P[k] * λ / (k+1)
        let p = Poisson::new(3.7).unwrap();
        for k in 0..30u64 {
            let lhs = p.pmf(k + 1);
            let rhs = p.pmf(k) * 3.7 / (k + 1) as f64;
            assert!((lhs - rhs).abs() < 1e-14);
        }
    }

    #[test]
    fn approximates_binomial_at_low_density() {
        // B(240, A/S) with A/S small ≈ Poisson(240 A/S)
        use crate::binomial::Binomial;
        let frac = 0.004; // sparse: region is 0.4% of field
        let b = Binomial::new(240, frac).unwrap();
        let p = Poisson::new(240.0 * frac).unwrap();
        for k in 0..8u64 {
            assert!((b.pmf(k) - p.pmf(k)).abs() < 3e-3, "k={k}");
        }
    }

    #[test]
    fn cdf_sf_complement() {
        let p = Poisson::new(1.3).unwrap();
        for k in 0..20u64 {
            assert!((p.cdf(k) + p.sf(k) - 1.0).abs() < 1e-12);
        }
    }
}
