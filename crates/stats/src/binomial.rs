//! The binomial distribution `B(n, p)` with numerically stable evaluation.
//!
//! Every probability in the paper's analytical model is ultimately a binomial
//! probability: the number of sensors falling in a region of the field is
//! `B(N, area/S)` (uniform random deployment), and the number of reports a
//! sensor generates while covering the target for `i` periods is `B(i, Pd)`.

use crate::gamma::ln_binomial_coef;
use crate::StatsError;

/// A binomial distribution with `n` trials and success probability `p`.
///
/// # Example
///
/// ```
/// use gbd_stats::binomial::Binomial;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let b = Binomial::new(20, 0.9)?;
/// assert!((b.mean() - 18.0).abs() < 1e-12);
/// assert!((b.pmf(20) - 0.9f64.powi(20)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] if `p` is not in `[0, 1]`
    /// or not finite.
    pub fn new(n: u64, p: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidProbability {
                name: "p",
                value: p,
            });
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability per trial.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Probability mass `P[X = k]`, evaluated in the log domain.
    ///
    /// Returns `0.0` for `k > n`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        // Exact edge cases avoid 0·ln(0) = NaN.
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln_pmf = ln_binomial_coef(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln_1p_neg();
        ln_pmf.exp()
    }

    /// Cumulative distribution `P[X <= k]`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        // Sum the smaller tail for accuracy.
        let mean = self.mean();
        if (k as f64) < mean {
            (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
        } else {
            (1.0 - self.sf_direct(k)).clamp(0.0, 1.0)
        }
    }

    /// Survival function `P[X > k]` (equivalently `P[X >= k + 1]`).
    ///
    /// This is the form used by the paper's Eq (2):
    /// `P1[X >= k] = 1 − Σ_{i<k} P1[X = i] = sf(k − 1)`.
    pub fn sf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        let mean = self.mean();
        if (k as f64) >= mean {
            self.sf_direct(k)
        } else {
            (1.0 - (0..=k).map(|i| self.pmf(i)).sum::<f64>()).clamp(0.0, 1.0)
        }
    }

    fn sf_direct(&self, k: u64) -> f64 {
        ((k + 1)..=self.n)
            .map(|i| self.pmf(i))
            .sum::<f64>()
            .min(1.0)
    }

    /// The full pmf as a dense vector over `0..=n`.
    pub fn pmf_vec(&self) -> Vec<f64> {
        (0..=self.n).map(|k| self.pmf(k)).collect()
    }

    /// Precomputes the dense pmf into a reusable [`PmfTable`].
    ///
    /// Every table entry is bit-identical to [`Binomial::pmf`] at the same
    /// index, and the table's [`PmfTable::cdf`]/[`PmfTable::sf`] reproduce
    /// [`Binomial::cdf`]/[`Binomial::sf`] bit for bit — the table only
    /// amortizes the log-domain work when several tail/cdf queries hit the
    /// same distribution (the Figure 8 cap scans, the per-stage accuracy
    /// of every M-S run).
    pub fn pmf_table(&self) -> PmfTable {
        let mut table = PmfTable::new();
        table.fill(self);
        table
    }
}

/// Any log-mass below this is far past the `exp` underflow-to-zero cutoff
/// (≈ −745.13), with margin for the ~1e-9 absolute error of the log-domain
/// evaluation: once a tail term's log mass falls below it, that term and
/// every later one evaluate to exactly `0.0`.
const LN_UNDERFLOW_MARGIN: f64 = -760.0;

/// A precomputed dense binomial pmf with bit-identical cdf/sf evaluation.
///
/// Built by [`Binomial::pmf_table`] (or refilled in place via
/// [`PmfTable::fill`] so sweeps reuse one allocation). The far tail —
/// where the log-domain mass has underflowed to exactly zero — is
/// zero-filled without calling `exp`, which is what makes filling the
/// table cheaper than the term-by-term tail sums it replaces.
#[derive(Debug, Clone, Default)]
pub struct PmfTable {
    n: u64,
    p: f64,
    pmf: Vec<f64>,
}

impl PmfTable {
    /// An empty table; call [`PmfTable::fill`] before querying.
    pub fn new() -> Self {
        PmfTable {
            n: 0,
            p: 0.0,
            pmf: Vec::new(),
        }
    }

    /// Fills the table for `b`, reusing the existing allocation.
    ///
    /// Entry `k` is bit-identical to `b.pmf(k)`: the hoisted `ln p` /
    /// `ln (1−p)` factors and the memoized `ln n!` lookups evaluate to the
    /// same values the per-call formula produces. Beyond the mean, once
    /// the log mass falls below the `exp` underflow cutoff the remaining
    /// entries are zero-filled directly (they would all evaluate to `0.0`;
    /// the log mass is strictly decreasing past the mean).
    pub fn fill(&mut self, b: &Binomial) {
        self.n = b.n;
        self.p = b.p;
        let len = (b.n + 1) as usize;
        self.pmf.clear();
        self.pmf.resize(len, 0.0);
        if b.p == 0.0 {
            self.pmf[0] = 1.0;
            return;
        }
        if b.p == 1.0 {
            self.pmf[len - 1] = 1.0;
            return;
        }
        let ln_p = b.p.ln();
        let ln_q = (1.0 - b.p).ln_1p_neg();
        let mean = b.mean();
        for k in 0..=b.n {
            let ln_pmf = ln_binomial_coef(b.n, k) + k as f64 * ln_p + (b.n - k) as f64 * ln_q;
            if k as f64 > mean && ln_pmf < LN_UNDERFLOW_MARGIN {
                break; // the rest of the tail underflows to exactly 0.0
            }
            self.pmf[k as usize] = ln_pmf.exp();
        }
    }

    /// Number of trials of the filled distribution.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability of the filled distribution.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability mass `P[X = k]`; `0.0` beyond `n`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.pmf.get(k as usize).copied().unwrap_or(0.0)
    }

    /// The dense pmf as a slice over `0..=n`.
    pub fn as_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Cumulative distribution `P[X <= k]`, bit-identical to
    /// [`Binomial::cdf`] (same smaller-tail branch, same ascending
    /// summation order).
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        let mean = self.n as f64 * self.p;
        if (k as f64) < mean {
            self.pmf[..=k as usize].iter().sum::<f64>().min(1.0)
        } else {
            (1.0 - self.sf_direct(k)).clamp(0.0, 1.0)
        }
    }

    /// Survival function `P[X > k]`, bit-identical to [`Binomial::sf`].
    pub fn sf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        let mean = self.n as f64 * self.p;
        if (k as f64) >= mean {
            self.sf_direct(k)
        } else {
            (1.0 - self.pmf[..=k as usize].iter().sum::<f64>()).clamp(0.0, 1.0)
        }
    }

    fn sf_direct(&self, k: u64) -> f64 {
        self.pmf[(k + 1) as usize..].iter().sum::<f64>().min(1.0)
    }
}

/// Extension providing `ln(x)` spelled as a method so that the pmf formula
/// reads naturally; `v.ln_1p_neg()` is simply `ln(v)` with a debug guard.
trait LnGuard {
    fn ln_1p_neg(self) -> f64;
}

impl LnGuard for f64 {
    #[inline]
    fn ln_1p_neg(self) -> f64 {
        debug_assert!(self > 0.0);
        self.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_probability() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        for (n, p) in [(0u64, 0.3), (1, 0.5), (17, 0.9), (240, 0.0123), (500, 0.99)] {
            let b = Binomial::new(n, p).unwrap();
            let total: f64 = b.pmf_vec().iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn degenerate_endpoints() {
        let zero = Binomial::new(5, 0.0).unwrap();
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(1), 0.0);
        let one = Binomial::new(5, 1.0).unwrap();
        assert_eq!(one.pmf(5), 1.0);
        assert_eq!(one.pmf(4), 0.0);
    }

    #[test]
    fn pmf_matches_hand_computation() {
        // B(4, 0.5): pmf = [1, 4, 6, 4, 1] / 16
        let b = Binomial::new(4, 0.5).unwrap();
        let expect = [1.0, 4.0, 6.0, 4.0, 1.0].map(|x| x / 16.0);
        for (k, e) in expect.iter().enumerate() {
            assert!((b.pmf(k as u64) - e).abs() < 1e-14);
        }
    }

    #[test]
    fn cdf_and_sf_are_complementary() {
        let b = Binomial::new(60, 0.07).unwrap();
        for k in 0..=60 {
            let s = b.cdf(k) + b.sf(k);
            assert!((s - 1.0).abs() < 1e-10, "k={k} sum={s}");
        }
    }

    #[test]
    fn sf_is_monotone_decreasing() {
        let b = Binomial::new(100, 0.3).unwrap();
        let mut prev = 1.0;
        for k in 0..=100 {
            let s = b.sf(k);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn paper_m1_shape_more_sensors_more_detections() {
        // Eq (1)-(2): P1[X >= k] must increase with N for fixed p_indi.
        let p_indi =
            0.9 * (2.0 * 1000.0 * 600.0 + std::f64::consts::PI * 1e6) / (32000.0 * 32000.0);
        let mut prev = 0.0;
        for n in [60u64, 120, 180, 240] {
            let b = Binomial::new(n, p_indi).unwrap();
            let p = b.sf(0); // at least 1 report
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn mean_variance() {
        let b = Binomial::new(240, 0.25).unwrap();
        assert!((b.mean() - 60.0).abs() < 1e-12);
        assert!((b.variance() - 45.0).abs() < 1e-12);
    }

    fn assert_table_bit_identical(n: u64, p: f64) {
        let b = Binomial::new(n, p).unwrap();
        let t = b.pmf_table();
        assert_eq!(t.n(), n);
        assert_eq!(t.p(), p);
        assert_eq!(t.as_slice().len() as u64, n + 1);
        for k in 0..=n + 2 {
            assert_eq!(
                t.pmf(k).to_bits(),
                b.pmf(k).to_bits(),
                "pmf n={n} p={p} k={k}"
            );
            assert_eq!(
                t.cdf(k).to_bits(),
                b.cdf(k).to_bits(),
                "cdf n={n} p={p} k={k}"
            );
            assert_eq!(t.sf(k).to_bits(), b.sf(k).to_bits(), "sf n={n} p={p} k={k}");
        }
    }

    #[test]
    fn pmf_table_is_bit_identical_to_direct_evaluation() {
        // Covers the degenerate endpoints, the paper's placement
        // probabilities (tiny p, n up to 260), and balanced/top-heavy
        // shapes whose far tails exercise the underflow zero-fill.
        for (n, p) in [
            (0u64, 0.3),
            (1, 0.0),
            (1, 1.0),
            (1, 0.5),
            (17, 0.9),
            (60, 0.07),
            (240, 0.0123),
            (260, 0.001),
            (240, 0.5),
            (500, 0.99),
            (1000, 0.002),
        ] {
            assert_table_bit_identical(n, p);
        }
    }

    #[test]
    fn pmf_table_refill_reuses_allocation_and_stays_identical() {
        let mut t = PmfTable::new();
        for (n, p) in [(240u64, 0.0123), (60, 0.5), (0, 0.0), (500, 0.99)] {
            let b = Binomial::new(n, p).unwrap();
            t.fill(&b);
            for k in 0..=n {
                assert_eq!(t.pmf(k).to_bits(), b.pmf(k).to_bits(), "n={n} p={p} k={k}");
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn pmf_table_bit_identity_holds_for_random_parameters(
            n in 0u64..400,
            p in 0.0f64..=1.0,
        ) {
            let b = Binomial::new(n, p).unwrap();
            let t = b.pmf_table();
            for k in 0..=n {
                proptest::prop_assert_eq!(t.pmf(k).to_bits(), b.pmf(k).to_bits());
                proptest::prop_assert_eq!(t.cdf(k).to_bits(), b.cdf(k).to_bits());
                proptest::prop_assert_eq!(t.sf(k).to_bits(), b.sf(k).to_bits());
            }
        }
    }
}
