//! The binomial distribution `B(n, p)` with numerically stable evaluation.
//!
//! Every probability in the paper's analytical model is ultimately a binomial
//! probability: the number of sensors falling in a region of the field is
//! `B(N, area/S)` (uniform random deployment), and the number of reports a
//! sensor generates while covering the target for `i` periods is `B(i, Pd)`.

use crate::gamma::ln_binomial_coef;
use crate::StatsError;

/// A binomial distribution with `n` trials and success probability `p`.
///
/// # Example
///
/// ```
/// use gbd_stats::binomial::Binomial;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let b = Binomial::new(20, 0.9)?;
/// assert!((b.mean() - 18.0).abs() < 1e-12);
/// assert!((b.pmf(20) - 0.9f64.powi(20)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] if `p` is not in `[0, 1]`
    /// or not finite.
    pub fn new(n: u64, p: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidProbability {
                name: "p",
                value: p,
            });
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability per trial.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Probability mass `P[X = k]`, evaluated in the log domain.
    ///
    /// Returns `0.0` for `k > n`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        // Exact edge cases avoid 0·ln(0) = NaN.
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln_pmf = ln_binomial_coef(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln_1p_neg();
        ln_pmf.exp()
    }

    /// Cumulative distribution `P[X <= k]`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        // Sum the smaller tail for accuracy.
        let mean = self.mean();
        if (k as f64) < mean {
            (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
        } else {
            (1.0 - self.sf_direct(k)).clamp(0.0, 1.0)
        }
    }

    /// Survival function `P[X > k]` (equivalently `P[X >= k + 1]`).
    ///
    /// This is the form used by the paper's Eq (2):
    /// `P1[X >= k] = 1 − Σ_{i<k} P1[X = i] = sf(k − 1)`.
    pub fn sf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        let mean = self.mean();
        if (k as f64) >= mean {
            self.sf_direct(k)
        } else {
            (1.0 - (0..=k).map(|i| self.pmf(i)).sum::<f64>()).clamp(0.0, 1.0)
        }
    }

    fn sf_direct(&self, k: u64) -> f64 {
        ((k + 1)..=self.n)
            .map(|i| self.pmf(i))
            .sum::<f64>()
            .min(1.0)
    }

    /// The full pmf as a dense vector over `0..=n`.
    pub fn pmf_vec(&self) -> Vec<f64> {
        (0..=self.n).map(|k| self.pmf(k)).collect()
    }
}

/// Extension providing `ln(x)` spelled as a method so that the pmf formula
/// reads naturally; `v.ln_1p_neg()` is simply `ln(v)` with a debug guard.
trait LnGuard {
    fn ln_1p_neg(self) -> f64;
}

impl LnGuard for f64 {
    #[inline]
    fn ln_1p_neg(self) -> f64 {
        debug_assert!(self > 0.0);
        self.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_probability() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        for (n, p) in [(0u64, 0.3), (1, 0.5), (17, 0.9), (240, 0.0123), (500, 0.99)] {
            let b = Binomial::new(n, p).unwrap();
            let total: f64 = b.pmf_vec().iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn degenerate_endpoints() {
        let zero = Binomial::new(5, 0.0).unwrap();
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(1), 0.0);
        let one = Binomial::new(5, 1.0).unwrap();
        assert_eq!(one.pmf(5), 1.0);
        assert_eq!(one.pmf(4), 0.0);
    }

    #[test]
    fn pmf_matches_hand_computation() {
        // B(4, 0.5): pmf = [1, 4, 6, 4, 1] / 16
        let b = Binomial::new(4, 0.5).unwrap();
        let expect = [1.0, 4.0, 6.0, 4.0, 1.0].map(|x| x / 16.0);
        for (k, e) in expect.iter().enumerate() {
            assert!((b.pmf(k as u64) - e).abs() < 1e-14);
        }
    }

    #[test]
    fn cdf_and_sf_are_complementary() {
        let b = Binomial::new(60, 0.07).unwrap();
        for k in 0..=60 {
            let s = b.cdf(k) + b.sf(k);
            assert!((s - 1.0).abs() < 1e-10, "k={k} sum={s}");
        }
    }

    #[test]
    fn sf_is_monotone_decreasing() {
        let b = Binomial::new(100, 0.3).unwrap();
        let mut prev = 1.0;
        for k in 0..=100 {
            let s = b.sf(k);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn paper_m1_shape_more_sensors_more_detections() {
        // Eq (1)-(2): P1[X >= k] must increase with N for fixed p_indi.
        let p_indi =
            0.9 * (2.0 * 1000.0 * 600.0 + std::f64::consts::PI * 1e6) / (32000.0 * 32000.0);
        let mut prev = 0.0;
        for n in [60u64, 120, 180, 240] {
            let b = Binomial::new(n, p_indi).unwrap();
            let p = b.sf(0); // at least 1 report
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn mean_variance() {
        let b = Binomial::new(240, 0.25).unwrap();
        assert!((b.mean() - 60.0).abs() < 1e-12);
        assert!((b.variance() - 45.0).abs() < 1e-12);
    }
}
