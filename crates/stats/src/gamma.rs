//! Log-gamma and related combinatorial special functions.
//!
//! The analytical models evaluate binomial coefficients such as
//! `C(240, 120)`, which overflow `f64` when computed directly. All
//! probability evaluation therefore goes through the log domain using the
//! Lanczos approximation implemented here.

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
///
/// Panics if `x` is not finite or `x <= 0` and `x` is an integer (a pole of
/// the gamma function).
///
/// # Example
///
/// ```
/// use gbd_stats::gamma::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x.is_finite(),
        "ln_gamma requires a finite argument, got {x}"
    );
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        assert!(
            sin_pi_x != 0.0,
            "ln_gamma evaluated at a pole of the gamma function: {x}"
        );
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Size of the memoized `ln n!` table: covers every sensor count the
/// paper's sweeps use (`N <= 260`) with a wide margin, while costing only
/// 32 KiB once.
const LN_FACT_CACHE_LEN: usize = 4096;

/// Memoized `ln n!` for `n < LN_FACT_CACHE_LEN`, filled on first use.
///
/// Every entry is produced by [`ln_factorial_uncached`], so a cache hit is
/// bit-identical to the direct evaluation — the table changes speed, never
/// values.
static LN_FACT_CACHE: std::sync::LazyLock<Box<[f64]>> = std::sync::LazyLock::new(|| {
    (0..LN_FACT_CACHE_LEN as u64)
        .map(ln_factorial_uncached)
        .collect()
});

/// Natural logarithm of `n!`.
///
/// Exact table lookup for `n <= 20`; for larger `n` a memoized Lanczos
/// `ln Γ(n + 1)` (bit-identical to evaluating it directly — see
/// [`ln_factorial_uncached`], which this delegates to beyond the memo
/// range). The binomial pmf evaluates three of these per mass point, so
/// the memo turns the hot analytical path's dominant cost into a table
/// read.
///
/// # Example
///
/// ```
/// use gbd_stats::gamma::ln_factorial;
/// assert!((ln_factorial(4) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    if n < LN_FACT_CACHE_LEN as u64 {
        return LN_FACT_CACHE[n as usize];
    }
    ln_factorial_uncached(n)
}

/// [`ln_factorial`] without the memo table — the seed implementation,
/// kept callable so the cache contents (and callers pinned to the
/// original arithmetic, like the benchmark baselines) can be audited
/// against it.
pub fn ln_factorial_uncached(n: u64) -> f64 {
    // Exact factorials representable in f64 without rounding error.
    const EXACT: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5_040.0,
        40_320.0,
        362_880.0,
        3_628_800.0,
        39_916_800.0,
        479_001_600.0,
        6_227_020_800.0,
        87_178_291_200.0,
        1_307_674_368_000.0,
        20_922_789_888_000.0,
        355_687_428_096_000.0,
        6_402_373_705_728_000.0,
        121_645_100_408_832_000.0,
        2_432_902_008_176_640_000.0,
    ];
    if n <= 20 {
        EXACT[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
///
/// # Example
///
/// ```
/// use gbd_stats::gamma::ln_binomial_coef;
/// assert!((ln_binomial_coef(5, 2) - 10f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_binomial_coef(3, 4), f64::NEG_INFINITY);
/// ```
pub fn ln_binomial_coef(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The binomial coefficient `C(n, k)` as `f64`.
///
/// Accurate to full precision for small arguments and to ~1e-13 relative
/// error for large ones; returns `0.0` when `k > n`.
pub fn binomial_coef(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    // Small cases: exact multiplicative evaluation.
    let k = k.min(n - k);
    if k <= 32 && n <= 512 {
        let mut acc = 1.0_f64;
        for i in 0..k {
            acc = acc * (n - i) as f64 / (i + 1) as f64;
        }
        return acc;
    }
    ln_binomial_coef(n, k).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(6) = 120
        assert!(ln_gamma(1.0).abs() < 1e-13);
        assert!(ln_gamma(2.0).abs() < 1e-13);
        assert!((ln_gamma(3.0) - 2f64.ln()).abs() < 1e-13);
        assert!((ln_gamma(6.0) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for &x in &[0.7, 1.3, 2.9, 11.5, 99.25, 240.0] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "recurrence failed at {x}");
        }
    }

    #[test]
    fn ln_factorial_exact_region_and_tail_agree() {
        for n in 0..=20u64 {
            assert!((ln_factorial(n) - ln_gamma(n as f64 + 1.0)).abs() < 1e-10);
        }
        assert!((ln_factorial(100) - ln_gamma(101.0)).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_cache_is_bit_identical_to_uncached() {
        // Inside the memo range, at its boundary, and beyond it.
        for n in (0..LN_FACT_CACHE_LEN as u64 + 10).step_by(37) {
            assert_eq!(
                ln_factorial(n).to_bits(),
                ln_factorial_uncached(n).to_bits(),
                "n={n}"
            );
        }
        let edge = LN_FACT_CACHE_LEN as u64;
        for n in [edge - 1, edge, edge + 1] {
            assert_eq!(
                ln_factorial(n).to_bits(),
                ln_factorial_uncached(n).to_bits()
            );
        }
    }

    #[test]
    fn binomial_coef_small_exact() {
        assert_eq!(binomial_coef(0, 0), 1.0);
        assert_eq!(binomial_coef(4, 2), 6.0);
        assert_eq!(binomial_coef(10, 3), 120.0);
        assert_eq!(binomial_coef(10, 11), 0.0);
    }

    #[test]
    fn binomial_coef_symmetry() {
        for n in [17u64, 60, 240] {
            for k in 0..=n.min(12) {
                let a = binomial_coef(n, k);
                let b = binomial_coef(n, n - k);
                assert!((a - b).abs() / a.max(1.0) < 1e-12, "symmetry n={n} k={k}");
            }
        }
    }

    #[test]
    fn binomial_coef_pascal_identity() {
        for n in [5u64, 50, 200] {
            for k in 1..=4u64 {
                let lhs = binomial_coef(n + 1, k);
                let rhs = binomial_coef(n, k) + binomial_coef(n, k - 1);
                assert!((lhs - rhs).abs() / lhs < 1e-12);
            }
        }
    }

    #[test]
    fn binomial_coef_large_matches_log_path() {
        let direct = binomial_coef(240, 120);
        let via_log = ln_binomial_coef(240, 120).exp();
        assert!((direct - via_log).abs() / via_log < 1e-10);
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn ln_gamma_panics_at_pole() {
        ln_gamma(0.0);
    }
}
