//! Deterministic RNG streams for reproducible experiments.
//!
//! Every experiment binary takes a single master seed; independent
//! sub-streams (one per trial, per deployment, per trajectory, …) are derived
//! with [`derive_seed`] (SplitMix64) so that results do not depend on
//! scheduling order when trials run in parallel.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG used throughout the workspace: ChaCha12, seedable, portable and
/// stable across `rand` versions.
pub type Rng = ChaCha12Rng;

/// Derives an independent 64-bit seed from a master seed and a stream index
/// using the SplitMix64 finalizer.
///
/// Distinct `(master, stream)` pairs yield statistically independent seeds;
/// the map is deterministic, so a trial's randomness is a pure function of
/// `(master_seed, trial_index)`.
///
/// # Example
///
/// ```
/// use gbd_stats::rng::derive_seed;
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // SplitMix64: mix the pair into a single well-distributed word.
    let mut z =
        master.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates the workspace RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Creates the RNG for a derived stream: `rng_stream(m, s)` is shorthand for
/// `rng_from_seed(derive_seed(m, s))`.
pub fn rng_stream(master: u64, stream: u64) -> Rng {
    rng_from_seed(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn derive_seed_distinguishes_streams_and_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..8u64 {
            for stream in 0..64u64 {
                assert!(seen.insert(derive_seed(master, stream)), "collision");
            }
        }
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut a = rng_stream(99, 5);
        let mut b = rng_stream(99, 5);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rng_streams_differ() {
        let mut a = rng_stream(99, 5);
        let mut b = rng_stream(99, 6);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn uniform_draws_look_uniform() {
        // Coarse sanity: mean of 10k uniforms within 3 sigma of 0.5.
        let mut r = rng_from_seed(1234);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        let sigma = (1.0 / 12.0_f64 / n as f64).sqrt();
        assert!((mean - 0.5).abs() < 3.0 * sigma, "mean={mean}");
    }
}
