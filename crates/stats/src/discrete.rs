//! Dense, finitely-supported discrete distributions over `0..=n`.
//!
//! [`DiscreteDist`] is the workhorse of the analytical models: per-stage
//! report-count distributions (`p_{h:m}`, `p_{b:m}`, `p_{tj:m}` in the
//! paper) are `DiscreteDist` values, and the Markov chain of Eq (12) is a
//! sequence of *saturating* convolutions of such distributions.
//!
//! Distributions here are allowed to be **sub-stochastic** (total mass
//! `< 1`): the paper truncates the number of sensors considered per stage at
//! `g`/`gh`/`G`, which discards tail mass. The discarded mass is exactly the
//! accuracy loss of Eqs (5), (7) and (9); [`DiscreteDist::total_mass`]
//! exposes it and [`DiscreteDist::normalized`] applies the Eq (13)
//! normalization.

use crate::StatsError;

/// Tolerance when validating that mass does not exceed 1.
const MASS_EPS: f64 = 1e-9;

/// A dense probability mass function over the support `0..=n`.
///
/// May be sub-stochastic (total mass at most 1, within floating point
/// tolerance) but never super-stochastic or negative.
///
/// # Example
///
/// ```
/// use gbd_stats::discrete::DiscreteDist;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let die = DiscreteDist::uniform(6)?; // 0..=5 with mass 1/6 each
/// let two_dice = die.convolve(&die);
/// assert_eq!(two_dice.support_max(), 10);
/// assert!((two_dice.pmf(5) - 6.0 / 36.0).abs() < 1e-12); // most likely sum
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscreteDist {
    pmf: Vec<f64>,
}

impl DiscreteDist {
    /// Creates a distribution from an explicit pmf vector (index = value).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidPmf`] if the vector is empty, contains
    /// negative or non-finite entries, or sums to more than 1 (beyond a
    /// small floating point tolerance).
    pub fn new(pmf: Vec<f64>) -> Result<Self, StatsError> {
        if pmf.is_empty() {
            return Err(StatsError::InvalidPmf {
                reason: "empty pmf vector",
            });
        }
        let mut total = 0.0;
        for &x in &pmf {
            if !x.is_finite() || x < 0.0 {
                return Err(StatsError::InvalidPmf {
                    reason: "pmf entries must be finite and non-negative",
                });
            }
            total += x;
        }
        if total > 1.0 + MASS_EPS {
            return Err(StatsError::InvalidPmf {
                reason: "total mass exceeds 1",
            });
        }
        Ok(DiscreteDist { pmf })
    }

    /// The distribution putting all mass on a single value `k`.
    pub fn point_mass(k: usize) -> Self {
        let mut pmf = vec![0.0; k + 1];
        pmf[k] = 1.0;
        DiscreteDist { pmf }
    }

    /// Resets `self` to the point mass at `k` in place, reusing the
    /// existing buffer — the allocation-free counterpart of
    /// [`point_mass`](Self::point_mass) for scratch distributions.
    pub fn set_point_mass(&mut self, k: usize) {
        self.pmf.clear();
        self.pmf.resize(k + 1, 0.0);
        self.pmf[k] = 1.0;
    }

    /// The uniform distribution on `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidPmf`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self, StatsError> {
        if n == 0 {
            return Err(StatsError::InvalidPmf {
                reason: "uniform needs n >= 1",
            });
        }
        Ok(DiscreteDist {
            pmf: vec![1.0 / n as f64; n],
        })
    }

    /// Probability mass at `k` (zero outside the stored support).
    pub fn pmf(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    /// The pmf as a slice (index = value).
    pub fn as_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Largest value in the stored support (`len − 1`).
    pub fn support_max(&self) -> usize {
        self.pmf.len() - 1
    }

    /// Total mass; `1.0` for a proper distribution, less for truncated ones.
    pub fn total_mass(&self) -> f64 {
        self.pmf.iter().sum()
    }

    /// Mean of the distribution (of the *retained* mass).
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(k, &p)| k as f64 * p)
            .sum()
    }

    /// Tail probability `P[X >= k]` of the retained mass.
    pub fn tail_sum(&self, k: usize) -> f64 {
        if k >= self.pmf.len() {
            return 0.0;
        }
        self.pmf[k..].iter().sum()
    }

    /// Returns a copy rescaled to total mass 1 — the Eq (13) normalization.
    ///
    /// # Panics
    ///
    /// Panics if the total mass is zero.
    pub fn normalized(&self) -> Self {
        let total = self.total_mass();
        assert!(total > 0.0, "cannot normalize a zero-mass distribution");
        DiscreteDist {
            pmf: self.pmf.iter().map(|&p| p / total).collect(),
        }
    }

    /// Plain convolution: the distribution of `X + Y` for independent `X`,
    /// `Y`. The resulting support is the sum of supports.
    pub fn convolve(&self, other: &DiscreteDist) -> Self {
        let mut out = vec![0.0; self.pmf.len() + other.pmf.len() - 1];
        for (i, &a) in self.pmf.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.pmf.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        DiscreteDist { pmf: out }
    }

    /// Saturating convolution: like [`convolve`](Self::convolve) but any mass
    /// that would land beyond `cap` is merged into the state `cap`.
    ///
    /// This is exactly the paper's merged Markov state: "if we are only
    /// interested in the probability of having at least `k` detection
    /// reports, we can merge the states from `k` to `MZ`".
    pub fn convolve_saturating(&self, other: &DiscreteDist, cap: usize) -> Self {
        let mut out = vec![0.0; cap + 1];
        for (i, &a) in self.pmf.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.pmf.iter().enumerate() {
                out[(i + j).min(cap)] += a * b;
            }
        }
        DiscreteDist { pmf: out }
    }

    /// [`convolve`](Self::convolve) into a caller-provided buffer.
    ///
    /// `out` is cleared and refilled; its allocation is reused when large
    /// enough. The accumulation order is identical to
    /// [`convolve`](Self::convolve), so the resulting values are
    /// bit-identical to the allocating version.
    pub fn convolve_into(&self, other: &DiscreteDist, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.pmf.len() + other.pmf.len() - 1, 0.0);
        for (i, &a) in self.pmf.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.pmf.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
    }

    /// In-place [`convolve`](Self::convolve): replaces `self` with
    /// `self * other` using `scratch` as the output buffer (the previous
    /// pmf buffer is swapped into `scratch` for reuse). Allocation-free
    /// once `scratch` has warmed up to the working support size.
    pub fn convolve_in_place(&mut self, other: &DiscreteDist, scratch: &mut Vec<f64>) {
        self.convolve_into(other, scratch);
        std::mem::swap(&mut self.pmf, scratch);
    }

    /// [`convolve_saturating`](Self::convolve_saturating) into a
    /// caller-provided buffer; same bit-identity guarantee as
    /// [`convolve_into`](Self::convolve_into).
    pub fn convolve_saturating_into(
        &self,
        other: &DiscreteDist,
        cap: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(cap + 1, 0.0);
        for (i, &a) in self.pmf.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.pmf.iter().enumerate() {
                out[(i + j).min(cap)] += a * b;
            }
        }
    }

    /// In-place [`convolve_saturating`](Self::convolve_saturating); see
    /// [`convolve_in_place`](Self::convolve_in_place).
    pub fn convolve_saturating_in_place(
        &mut self,
        other: &DiscreteDist,
        cap: usize,
        scratch: &mut Vec<f64>,
    ) {
        self.convolve_saturating_into(other, cap, scratch);
        std::mem::swap(&mut self.pmf, scratch);
    }

    /// Drops the longest trailing run of support whose total mass is at
    /// most `eps`, returning the mass actually discarded.
    ///
    /// With `eps <= 0` this is a guaranteed no-op (nothing is trimmed, not
    /// even exact zeros) so the default configuration stays bit-identical.
    /// At least one entry is always retained.
    pub fn truncate_tail_mass(&mut self, eps: f64) -> f64 {
        if eps <= 0.0 {
            return 0.0;
        }
        let mut dropped = 0.0;
        let mut keep = self.pmf.len();
        while keep > 1 {
            let next = dropped + self.pmf[keep - 1];
            if next > eps {
                break;
            }
            dropped = next;
            keep -= 1;
        }
        self.pmf.truncate(keep);
        dropped
    }

    /// `n`-fold convolution of the distribution with itself, computed by
    /// binary exponentiation. `self_convolve(0)` is the point mass at 0.
    pub fn self_convolve(&self, n: usize) -> Self {
        let mut result = DiscreteDist::point_mass(0);
        let mut base = self.clone();
        let mut exp = n;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.convolve(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.convolve(&base);
            }
        }
        result
    }

    /// `n`-fold *saturating* convolution with cap `cap`.
    pub fn self_convolve_saturating(&self, n: usize, cap: usize) -> Self {
        let mut result = DiscreteDist::point_mass(0);
        for _ in 0..n {
            result = result.convolve_saturating(self, cap);
        }
        result
    }

    /// Mixture `Σ w_i · d_i` of component distributions.
    ///
    /// Weights must be non-negative; the result's mass is
    /// `Σ w_i · mass(d_i)` (sub-stochastic mixtures are allowed).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidPmf`] if the component list is empty or
    /// the mixture would be super-stochastic.
    pub fn mixture(components: &[(f64, DiscreteDist)]) -> Result<Self, StatsError> {
        if components.is_empty() {
            return Err(StatsError::InvalidPmf {
                reason: "empty mixture",
            });
        }
        let max_len = components.iter().map(|(_, d)| d.pmf.len()).max().unwrap();
        let mut out = vec![0.0; max_len];
        for (w, d) in components {
            if !w.is_finite() || *w < 0.0 {
                return Err(StatsError::InvalidPmf {
                    reason: "mixture weights must be finite and non-negative",
                });
            }
            for (k, &p) in d.pmf.iter().enumerate() {
                out[k] += w * p;
            }
        }
        DiscreteDist::new(out)
    }

    /// Returns a copy with the support truncated to `0..=cap`; mass beyond
    /// `cap` is *discarded* (not merged), mirroring the paper's per-stage
    /// truncation.
    pub fn truncated(&self, cap: usize) -> Self {
        let len = (cap + 1).min(self.pmf.len());
        DiscreteDist {
            pmf: self.pmf[..len].to_vec(),
        }
    }

    /// Maximum absolute pointwise difference against another distribution,
    /// comparing over the union of supports.
    pub fn max_abs_diff(&self, other: &DiscreteDist) -> f64 {
        let len = self.pmf.len().max(other.pmf.len());
        (0..len)
            .map(|k| (self.pmf(k) - other.pmf(k)).abs())
            .fold(0.0, f64::max)
    }
}

impl FromIterator<f64> for DiscreteDist {
    /// Collects raw mass values; panics on invalid pmf. Use
    /// [`DiscreteDist::new`] for fallible construction.
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        DiscreteDist::new(iter.into_iter().collect()).expect("invalid pmf")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(v: &[f64]) -> DiscreteDist {
        DiscreteDist::new(v.to_vec()).unwrap()
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(DiscreteDist::new(vec![]).is_err());
        assert!(DiscreteDist::new(vec![-0.1, 1.1]).is_err());
        assert!(DiscreteDist::new(vec![0.6, 0.6]).is_err());
        assert!(DiscreteDist::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn substochastic_is_allowed() {
        let d = dist(&[0.5, 0.3]);
        assert!((d.total_mass() - 0.8).abs() < 1e-15);
        let n = d.normalized();
        assert!((n.total_mass() - 1.0).abs() < 1e-15);
        assert!((n.pmf(0) - 0.625).abs() < 1e-15);
    }

    #[test]
    fn point_mass_properties() {
        let d = DiscreteDist::point_mass(3);
        assert_eq!(d.pmf(3), 1.0);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.tail_sum(3), 1.0);
        assert_eq!(d.tail_sum(4), 0.0);
    }

    #[test]
    fn set_point_mass_resets_in_place() {
        let mut d = dist(&[0.2, 0.3, 0.4, 0.1]);
        d.set_point_mass(0);
        assert_eq!(d, DiscreteDist::point_mass(0));
        d.set_point_mass(2);
        assert_eq!(d, DiscreteDist::point_mass(2));
    }

    #[test]
    fn convolution_of_point_masses_shifts() {
        let a = DiscreteDist::point_mass(2);
        let b = DiscreteDist::point_mass(5);
        let c = a.convolve(&b);
        assert_eq!(c.pmf(7), 1.0);
    }

    #[test]
    fn convolution_two_coins() {
        let coin = dist(&[0.5, 0.5]);
        let two = coin.convolve(&coin);
        assert!((two.pmf(0) - 0.25).abs() < 1e-15);
        assert!((two.pmf(1) - 0.5).abs() < 1e-15);
        assert!((two.pmf(2) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn saturating_convolution_merges_tail() {
        let coin = dist(&[0.5, 0.5]);
        let sat = coin.convolve_saturating(&coin, 1);
        assert!((sat.pmf(0) - 0.25).abs() < 1e-15);
        assert!((sat.pmf(1) - 0.75).abs() < 1e-15);
        assert_eq!(sat.support_max(), 1);
        // Tail sums above the cap agree with plain convolution.
        let plain = coin.convolve(&coin);
        assert!((sat.tail_sum(1) - plain.tail_sum(1)).abs() < 1e-15);
    }

    #[test]
    fn self_convolve_matches_repeated() {
        let d = dist(&[0.2, 0.5, 0.3]);
        let mut manual = DiscreteDist::point_mass(0);
        for _ in 0..5 {
            manual = manual.convolve(&d);
        }
        let fast = d.self_convolve(5);
        assert!(fast.max_abs_diff(&manual) < 1e-14);
    }

    #[test]
    fn self_convolve_zero_is_identity() {
        let d = dist(&[0.2, 0.8]);
        let id = d.self_convolve(0);
        assert_eq!(id.pmf(0), 1.0);
        assert!(d.convolve(&id).max_abs_diff(&d) < 1e-15);
    }

    #[test]
    fn convolution_preserves_mass_and_mean() {
        let a = dist(&[0.1, 0.2, 0.7]);
        let b = dist(&[0.4, 0.6]);
        let c = a.convolve(&b);
        assert!((c.total_mass() - 1.0).abs() < 1e-12);
        assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-12);
    }

    #[test]
    fn mixture_combines_mass() {
        let a = DiscreteDist::point_mass(0);
        let b = DiscreteDist::point_mass(2);
        let m = DiscreteDist::mixture(&[(0.25, a), (0.75, b)]).unwrap();
        assert!((m.pmf(0) - 0.25).abs() < 1e-15);
        assert!((m.pmf(2) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn truncated_discards_tail() {
        let d = dist(&[0.2, 0.3, 0.4, 0.1]);
        let t = d.truncated(1);
        assert_eq!(t.support_max(), 1);
        assert!((t.total_mass() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn in_place_kernels_are_bit_identical_to_allocating() {
        let a = dist(&[0.1, 0.0, 0.2, 0.7]);
        let b = dist(&[0.4, 0.35, 0.25]);
        let mut scratch = Vec::new();

        let mut x = a.clone();
        x.convolve_in_place(&b, &mut scratch);
        let plain = a.convolve(&b);
        assert_eq!(x.as_slice().len(), plain.as_slice().len());
        for (got, want) in x.as_slice().iter().zip(plain.as_slice()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }

        let mut y = a.clone();
        y.convolve_saturating_in_place(&b, 2, &mut scratch);
        let sat = a.convolve_saturating(&b, 2);
        assert_eq!(y.as_slice().len(), sat.as_slice().len());
        for (got, want) in y.as_slice().iter().zip(sat.as_slice()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn truncate_tail_mass_zero_eps_is_a_no_op() {
        let mut d = dist(&[0.5, 0.3, 0.0, 0.0]);
        let before = d.clone();
        assert_eq!(d.truncate_tail_mass(0.0), 0.0);
        assert_eq!(d.truncate_tail_mass(-1.0), 0.0);
        assert_eq!(d, before);
        assert_eq!(d.support_max(), 3);
    }

    #[test]
    fn truncate_tail_mass_respects_bound_and_keeps_head() {
        let mut d = dist(&[0.5, 0.3, 0.1, 0.05, 0.04]);
        let dropped = d.truncate_tail_mass(0.1);
        assert!((dropped - 0.09).abs() < 1e-15);
        assert!(dropped <= 0.1);
        assert_eq!(d.support_max(), 2);

        // eps larger than everything still keeps one entry.
        let mut p = dist(&[0.2, 0.1]);
        let gone = p.truncate_tail_mass(10.0);
        assert!((gone - 0.1).abs() < 1e-15);
        assert_eq!(p.support_max(), 0);
    }

    #[test]
    fn saturating_equals_truncate_of_tail_merge() {
        // Saturating convolution == plain convolution with tail merged at cap.
        let a = dist(&[0.3, 0.3, 0.4]);
        let b = dist(&[0.5, 0.25, 0.25]);
        let cap = 2;
        let sat = a.convolve_saturating(&b, cap);
        let plain = a.convolve(&b);
        for k in 0..cap {
            assert!((sat.pmf(k) - plain.pmf(k)).abs() < 1e-15);
        }
        assert!((sat.pmf(cap) - plain.tail_sum(cap)).abs() < 1e-15);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dist(max_len: usize) -> impl Strategy<Value = DiscreteDist> {
        proptest::collection::vec(0.0f64..1.0, 1..max_len).prop_map(|raw| {
            let total: f64 = raw.iter().sum();
            let scale = if total > 0.0 { 0.999 / total } else { 0.0 };
            let mut v: Vec<f64> = raw.iter().map(|x| x * scale).collect();
            if total == 0.0 {
                v[0] = 1.0;
            }
            DiscreteDist::new(v).unwrap()
        })
    }

    proptest! {
        #[test]
        fn convolution_commutes(a in arb_dist(8), b in arb_dist(8)) {
            let ab = a.convolve(&b);
            let ba = b.convolve(&a);
            prop_assert!(ab.max_abs_diff(&ba) < 1e-12);
        }

        #[test]
        fn convolution_associates(a in arb_dist(6), b in arb_dist(6), c in arb_dist(6)) {
            let left = a.convolve(&b).convolve(&c);
            let right = a.convolve(&b.convolve(&c));
            prop_assert!(left.max_abs_diff(&right) < 1e-12);
        }

        #[test]
        fn mass_multiplies_under_convolution(a in arb_dist(8), b in arb_dist(8)) {
            let c = a.convolve(&b);
            prop_assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() < 1e-10);
        }

        #[test]
        fn saturating_preserves_mass(a in arb_dist(8), b in arb_dist(8), cap in 0usize..12) {
            let c = a.convolve_saturating(&b, cap);
            prop_assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() < 1e-10);
        }

        #[test]
        fn saturating_tail_matches_plain(a in arb_dist(8), b in arb_dist(8), k in 0usize..6) {
            // For any threshold k <= cap, tail sums agree.
            let cap = 10usize;
            let sat = a.convolve_saturating(&b, cap);
            let plain = a.convolve(&b);
            prop_assert!((sat.tail_sum(k) - plain.tail_sum(k)).abs() < 1e-10);
        }

        #[test]
        fn normalized_has_unit_mass(a in arb_dist(10)) {
            prop_assert!((a.normalized().total_mass() - 1.0).abs() < 1e-12);
        }

        #[test]
        fn truncate_tail_mass_never_exceeds_eps(a in arb_dist(12), eps in 0.0f64..0.5) {
            let mut t = a.clone();
            let dropped = t.truncate_tail_mass(eps);
            prop_assert!(dropped <= eps);
            prop_assert!((a.total_mass() - t.total_mass() - dropped).abs() < 1e-12);
            // The trimmed distribution differs from the original by at most
            // the discarded mass, pointwise.
            prop_assert!(a.max_abs_diff(&t) <= dropped + 1e-15);
        }

        #[test]
        fn in_place_saturating_matches_allocating(
            a in arb_dist(8),
            b in arb_dist(8),
            cap in 0usize..12,
        ) {
            let mut x = a.clone();
            let mut scratch = Vec::new();
            x.convolve_saturating_in_place(&b, cap, &mut scratch);
            let want = a.convolve_saturating(&b, cap);
            prop_assert_eq!(x.as_slice().len(), want.as_slice().len());
            for (g, w) in x.as_slice().iter().zip(want.as_slice()) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }
}
