//! Online summary statistics and fixed-width histograms.

/// Welford online accumulator for mean and variance.
///
/// Numerically stable for long simulation runs (tens of thousands of trials,
/// each contributing report counts, hop counts and latencies).
///
/// # Example
///
/// ```
/// use gbd_stats::summary::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); `0.0` for fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`); `0.0` for fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `−inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The accumulator's internal state `(count, mean, m2, min, max)`,
    /// for exact serialization. Round-trips bit-identically through
    /// [`Summary::from_raw_parts`].
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`Summary::raw_parts`] state. The
    /// parts are trusted as-is; passing values that did not come from a
    /// real accumulator yields a statistically meaningless summary.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Summary {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total;
        self.mean = new_mean;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating outlier bins.
///
/// Values below `lo` land in the first bin, values at or above `hi` in the
/// last — counts are never dropped.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        let nbins = self.bins.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            nbins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo) * nbins as f64) as usize).min(nbins - 1)
        };
        self.bins[idx] += 1;
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The `[lo, hi)` boundaries of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let sequential: Summary = data.iter().copied().collect();
        let mut a: Summary = data[..33].iter().copied().collect();
        let b: Summary = data[33..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), sequential.count());
        assert!((a.mean() - sequential.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - sequential.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), sequential.min());
        assert_eq!(a.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0); // below -> bin 0
        h.record(0.0); // bin 0
        h.record(3.9); // bin 1
        h.record(9.99); // bin 4
        h.record(10.0); // at hi -> bin 4
        h.record(99.0); // above -> bin 4
        assert_eq!(h.bins(), &[2, 1, 0, 0, 3]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_bin_range() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }
}
