//! Chi-square goodness-of-fit testing.
//!
//! Used by the distribution-level validation tests: the simulator's
//! empirical report-count histogram is tested against the exact analytical
//! pmf, which is a far sharper check than comparing means or single tail
//! probabilities.

use crate::StatsError;

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes style), accurate to ~1e-12.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && a.is_finite(), "shape must be positive");
    assert!(x >= 0.0 && x.is_finite(), "argument must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) Σ x^n / (a(a+1)...(a+n))
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - crate::gamma::ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x) = 1 − P(a,x).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - crate::gamma::ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// CDF of the chi-square distribution with `k` degrees of freedom.
pub fn chi_square_cdf(x: f64, k: usize) -> f64 {
    assert!(k > 0, "degrees of freedom must be positive");
    regularized_gamma_p(k as f64 / 2.0, x / 2.0)
}

/// Outcome of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GofTest {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom used (bins after pooling, minus one).
    pub dof: usize,
    /// The p-value `P[χ²_dof >= statistic]`.
    pub p_value: f64,
}

/// Pearson chi-square goodness-of-fit of observed counts against expected
/// probabilities.
///
/// Bins with expected count below `min_expected` (conventionally 5) are
/// pooled into their neighbor so the asymptotic χ² distribution applies;
/// remaining probability mass not covered by `expected` is pooled into a
/// final bin.
///
/// # Errors
///
/// Returns [`StatsError::InvalidPmf`] if inputs are empty or mismatched,
/// if `expected` has negative entries, or if pooling leaves fewer than two
/// bins.
pub fn chi_square_gof(
    observed: &[u64],
    expected_probs: &[f64],
    min_expected: f64,
) -> Result<GofTest, StatsError> {
    if observed.is_empty() || observed.len() != expected_probs.len() {
        return Err(StatsError::InvalidPmf {
            reason: "observed/expected length mismatch",
        });
    }
    if expected_probs.iter().any(|&p| p < 0.0 || !p.is_finite()) {
        return Err(StatsError::InvalidPmf {
            reason: "expected probabilities must be >= 0",
        });
    }
    let n: u64 = observed.iter().sum();
    if n == 0 {
        return Err(StatsError::InvalidPmf {
            reason: "no observations",
        });
    }
    let total_p: f64 = expected_probs.iter().sum();
    if total_p <= 0.0 || total_p > 1.0 + 1e-9 {
        return Err(StatsError::InvalidPmf {
            reason: "expected probabilities must sum to (0, 1]",
        });
    }

    // Build (observed, expected-count) bins, adding the leftover mass bin,
    // then pool small-expectation bins left to right.
    let mut bins: Vec<(f64, f64)> = observed
        .iter()
        .zip(expected_probs)
        .map(|(&o, &p)| (o as f64, p * n as f64))
        .collect();
    let leftover = (1.0 - total_p).max(0.0) * n as f64;
    if leftover > 0.0 {
        bins.push((0.0, leftover));
    }
    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0, 0.0);
    for (o, e) in bins {
        acc.0 += o;
        acc.1 += e;
        if acc.1 >= min_expected {
            pooled.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.1 > 0.0 || acc.0 > 0.0 {
        // Fold the trailing remainder into the last pooled bin.
        if let Some(last) = pooled.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        } else {
            pooled.push(acc);
        }
    }
    if pooled.len() < 2 {
        return Err(StatsError::InvalidPmf {
            reason: "fewer than two bins after pooling",
        });
    }
    let statistic: f64 = pooled.iter().map(|&(o, e)| (o - e) * (o - e) / e).sum();
    let dof = pooled.len() - 1;
    let p_value = 1.0 - chi_square_cdf(statistic, dof);
    Ok(GofTest {
        statistic,
        dof,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 − e^{-x}
        for &x in &[0.1, 1.0, 3.5, 10.0] {
            assert!((regularized_gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        assert_eq!(regularized_gamma_p(2.0, 0.0), 0.0);
    }

    #[test]
    fn gamma_p_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 0..50 {
            let x = i as f64 * 0.5;
            let p = regularized_gamma_p(3.7, x);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-14);
            prev = p;
        }
        assert!(regularized_gamma_p(3.7, 100.0) > 0.999_999);
    }

    #[test]
    fn chi_square_cdf_known_quantiles() {
        // χ²_1: P[X <= 3.841] ≈ 0.95; χ²_5: P[X <= 11.070] ≈ 0.95.
        assert!((chi_square_cdf(3.841, 1) - 0.95).abs() < 1e-3);
        assert!((chi_square_cdf(11.070, 5) - 0.95).abs() < 1e-3);
        // χ²_2 is Exp(1/2): CDF = 1 − e^{−x/2}.
        assert!((chi_square_cdf(4.0, 2) - (1.0 - (-2.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn gof_accepts_matching_distribution() {
        // Observations drawn exactly proportional to expectations.
        let expected = [0.25, 0.25, 0.25, 0.25];
        let observed = [250u64, 251, 249, 250];
        let t = chi_square_gof(&observed, &expected, 5.0).unwrap();
        assert!(t.p_value > 0.9, "{t:?}");
        assert_eq!(t.dof, 3);
    }

    #[test]
    fn gof_rejects_wrong_distribution() {
        let expected = [0.25, 0.25, 0.25, 0.25];
        let observed = [400u64, 100, 400, 100];
        let t = chi_square_gof(&observed, &expected, 5.0).unwrap();
        assert!(t.p_value < 1e-6, "{t:?}");
    }

    #[test]
    fn gof_pools_small_bins() {
        // Tail bins with tiny expectation must be pooled, not inflate χ².
        let expected = [0.70, 0.25, 0.03, 0.015, 0.004, 0.001];
        let observed = [705u64, 245, 32, 14, 3, 1];
        let t = chi_square_gof(&observed, &expected, 5.0).unwrap();
        assert!(t.dof < 5);
        assert!(t.p_value > 0.05, "{t:?}");
    }

    #[test]
    fn gof_handles_leftover_mass() {
        // Expected probabilities summing below 1: the remainder forms an
        // implicit "everything else" bin with zero observations.
        let expected = [0.6, 0.3]; // 0.1 unaccounted
        let observed = [60u64, 32];
        let t = chi_square_gof(&observed, &expected, 1.0).unwrap();
        assert!(t.statistic > 0.0);
    }

    #[test]
    fn gof_input_validation() {
        assert!(chi_square_gof(&[], &[], 5.0).is_err());
        assert!(chi_square_gof(&[1], &[0.5, 0.5], 5.0).is_err());
        assert!(chi_square_gof(&[0, 0], &[0.5, 0.5], 5.0).is_err());
        assert!(chi_square_gof(&[1, 1], &[-0.5, 0.5], 5.0).is_err());
    }
}
