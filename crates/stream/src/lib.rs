//! Incremental online group-based detection.
//!
//! The batch filter in `gbd_sim::group_filter` answers "did a track-feasible
//! chain of ≥ k reports form within M periods" after the fact, given every
//! report at once. This crate answers the same question *online*: reports
//! arrive over time, the detector maintains the per-report DP state
//! incrementally, and a [`DetectionEvent`] fires the moment a chain reaches
//! length `k` — carrying the period that completed it, i.e. the
//! time-to-detection.
//!
//! # Bit-identity with the batch filter
//!
//! `longest_feasible_chain` stably sorts reports by period and then, at
//! iteration `i`, relaxes `best_len[i]` / `first_period[i]` against entries
//! `j < i` only. Both arrays are *final* after iteration `i` — later
//! iterations never revisit them. So when reports arrive in non-decreasing
//! period order (arrival order ≡ the stable sort order), processing each
//! report once against the already-ingested entries performs exactly the
//! batch DP's iteration for that report, and the running maximum of chain
//! lengths equals the batch result on every prefix. [`StreamDetector`]
//! exploits this: same compatibility test, same window check, same
//! strict-greater relaxation, same entry order — the committed tests pin the
//! equality per prefix against `longest_feasible_chain` itself.
//!
//! Two departures are possible only under explicit, counted degradation:
//! reports older than the stream frontier are dropped (they would break the
//! sort-order equivalence) and the per-session entry table is capped
//! ([`StreamConfig::max_tracks`]), evicting the oldest entry when full.
//! Expiry, by contrast, is lossless: an entry whose chain start has fallen
//! `M` periods behind the frontier fails the batch window check against
//! every future report, so removing it cannot change any later relaxation.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;

use gbd_field::sensor::SensorId;
use gbd_sim::group_filter::TrackRule;
use gbd_sim::reports::DetectionReport;

/// Default cap on live DP entries per detector ([`StreamConfig::max_tracks`]).
pub const DEFAULT_MAX_TRACKS: usize = 4096;

/// Parameters of one streaming detection session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Velocity-feasibility rule linking reports (same rule as the batch
    /// filter, including the optional torus wrap).
    pub rule: TrackRule,
    /// Group size: a detection event fires when a feasible chain reaches
    /// this many reports.
    pub k: usize,
    /// Sliding window length in sensing periods (the paper's `M`).
    pub m_periods: usize,
    /// Cap on live DP entries; the oldest entry is evicted (and counted)
    /// when a new report would exceed it.
    pub max_tracks: usize,
}

impl StreamConfig {
    /// Creates a config with the default track cap.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `m_periods` is zero.
    pub fn new(rule: TrackRule, k: usize, m_periods: usize) -> Self {
        assert!(k > 0, "k must be > 0");
        assert!(m_periods > 0, "m_periods must be > 0");
        StreamConfig {
            rule,
            k,
            m_periods,
            max_tracks: DEFAULT_MAX_TRACKS,
        }
    }

    /// Returns a copy with a different live-entry cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_tracks` is zero.
    pub fn with_max_tracks(mut self, max_tracks: usize) -> Self {
        assert!(max_tracks > 0, "max_tracks must be > 0");
        self.max_tracks = max_tracks;
        self
    }
}

/// A group detection fired by the online filter: some track-feasible chain
/// reached `k` reports when the carried report was ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionEvent {
    /// Monotone per-session sequence number (deterministic event order).
    pub seq: u64,
    /// Sensing period of the report that completed the chain — the
    /// time-to-detection for the first event of a session.
    pub period: usize,
    /// Sensor whose report completed the chain.
    pub sensor: SensorId,
    /// Length of the completed chain (≥ `k`).
    pub chain_len: usize,
    /// Earliest period of the completed chain.
    pub first_period: usize,
}

/// Monotone counters describing a detector's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Reports accepted into the DP state.
    pub reports_ingested: u64,
    /// Reports dropped because their period predated the stream frontier.
    pub reports_late: u64,
    /// Detection events emitted.
    pub events_emitted: u64,
    /// Entries removed because their chain start left the M-period window
    /// (lossless — see the module docs).
    pub tracks_expired: u64,
    /// Entries evicted by the `max_tracks` cap (lossy, counted degradation).
    pub tracks_evicted: u64,
}

/// One report's DP state: the batch filter's `best_len[i]` /
/// `first_period[i]` pair, frozen once ingested.
#[derive(Debug, Clone, Copy)]
struct Entry {
    report: DetectionReport,
    best_len: usize,
    first_period: usize,
}

/// Incremental group filter over a stream of node reports.
///
/// Feed batches of reports (non-decreasing in period across batches) via
/// [`ingest`](StreamDetector::ingest); detection events are returned in
/// deterministic ingestion order.
#[derive(Debug, Clone)]
pub struct StreamDetector {
    config: StreamConfig,
    entries: VecDeque<Entry>,
    /// Highest period ingested so far (0 before the first report).
    frontier: usize,
    /// Running maximum chain length over all ingested reports — equals the
    /// batch `longest_feasible_chain` over the accepted prefix.
    longest: usize,
    next_seq: u64,
    stats: StreamStats,
}

impl StreamDetector {
    /// Creates an empty detector.
    pub fn new(config: StreamConfig) -> Self {
        StreamDetector {
            config,
            entries: VecDeque::new(),
            frontier: 0,
            longest: 0,
            next_seq: 0,
            stats: StreamStats::default(),
        }
    }

    /// The session parameters.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Ingests a batch of reports and returns the detection events they
    /// trigger, in ingestion order.
    ///
    /// The batch is stably sorted by period first (mirroring the batch
    /// filter's sort), so within-batch order only matters between reports
    /// of the same period — where it matches the batch filter's tie-break.
    pub fn ingest(&mut self, reports: &[DetectionReport]) -> Vec<DetectionEvent> {
        let mut batch: Vec<&DetectionReport> = reports.iter().collect();
        batch.sort_by_key(|r| r.period);
        let mut events = Vec::new();
        for report in batch {
            self.ingest_one(report, &mut events);
        }
        events
    }

    fn ingest_one(&mut self, report: &DetectionReport, events: &mut Vec<DetectionEvent>) {
        if report.period < self.frontier {
            self.stats.reports_late += 1;
            return;
        }
        if report.period > self.frontier {
            self.frontier = report.period;
            // Entries whose chain start left the window fail the batch
            // window check against this and every later report.
            let m = self.config.m_periods;
            let before = self.entries.len();
            self.entries.retain(|e| report.period - e.first_period < m);
            self.stats.tracks_expired += (before - self.entries.len()) as u64;
        }
        // The batch DP's iteration `i` for this report: relax against every
        // earlier entry, strict-greater, keeping the predecessor's chain
        // start for the window check.
        let mut best_len = 1usize;
        let mut first_period = report.period;
        for entry in &self.entries {
            if entry.report.period > report.period {
                continue;
            }
            if !self.config.rule.compatible(&entry.report, report) {
                continue;
            }
            if report.period - entry.first_period >= self.config.m_periods {
                continue;
            }
            if entry.best_len + 1 > best_len {
                best_len = entry.best_len + 1;
                first_period = entry.first_period;
            }
        }
        self.stats.reports_ingested += 1;
        self.longest = self.longest.max(best_len);
        if self.entries.len() >= self.config.max_tracks {
            self.entries.pop_front();
            self.stats.tracks_evicted += 1;
        }
        self.entries.push_back(Entry {
            report: *report,
            best_len,
            first_period,
        });
        if best_len >= self.config.k {
            events.push(DetectionEvent {
                seq: self.next_seq,
                period: report.period,
                sensor: report.sensor,
                chain_len: best_len,
                first_period,
            });
            self.next_seq += 1;
            self.stats.events_emitted += 1;
        }
    }

    /// Longest feasible chain over every accepted report so far — equal to
    /// running `longest_feasible_chain` on the accepted prefix.
    pub fn longest_chain(&self) -> usize {
        self.longest
    }

    /// Whether a chain of ≥ `k` reports has formed (the batch
    /// `group_detects` decision over the accepted prefix).
    pub fn detected(&self) -> bool {
        self.longest >= self.config.k
    }

    /// Number of live DP entries.
    pub fn live_tracks(&self) -> usize {
        self.entries.len()
    }

    /// Highest period ingested so far (0 before the first report).
    pub fn frontier(&self) -> usize {
        self.frontier
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_geometry::point::Point;
    use gbd_sim::group_filter::longest_feasible_chain;
    use gbd_sim::reports::ReportKind;

    fn report(id: usize, period: usize, x: f64, y: f64) -> DetectionReport {
        DetectionReport::new(
            SensorId(id),
            period,
            Point::new(x, y),
            ReportKind::TrueDetection,
        )
    }

    fn rule() -> TrackRule {
        // Paper parameters: v_max 10 m/s, t = 60 s, Rs = 1000 m.
        TrackRule::new(10.0, 60.0, 1000.0)
    }

    #[test]
    fn true_track_fires_at_kth_report() {
        let mut det = StreamDetector::new(StreamConfig::new(rule(), 3, 20));
        let mut all_events = Vec::new();
        for p in 1..=6 {
            let events = det.ingest(&[report(p, p, 600.0 * p as f64, 100.0)]);
            if p < 3 {
                assert!(events.is_empty(), "no event before k reports");
            }
            all_events.extend(events);
        }
        assert_eq!(all_events[0].period, 3, "first event at the k-th period");
        assert_eq!(all_events[0].chain_len, 3);
        assert_eq!(all_events[0].first_period, 1);
        // Every subsequent report extends the chain, so it fires too.
        assert_eq!(all_events.len(), 4);
        assert_eq!(
            all_events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "deterministic monotone sequence numbers"
        );
        assert!(det.detected());
        assert_eq!(det.longest_chain(), 6);
    }

    #[test]
    fn scattered_false_alarms_do_not_fire() {
        let mut det = StreamDetector::new(StreamConfig::new(rule(), 3, 20));
        let reports = vec![
            report(1, 1, 0.0, 0.0),
            report(2, 2, 20_000.0, 0.0),
            report(3, 3, 0.0, 20_000.0),
            report(4, 4, 20_000.0, 20_000.0),
            report(5, 5, 10_000.0, 31_000.0),
        ];
        assert!(det.ingest(&reports).is_empty());
        assert!(!det.detected());
        assert_eq!(det.stats().reports_ingested, 5);
    }

    #[test]
    fn late_reports_are_dropped_and_counted() {
        let mut det = StreamDetector::new(StreamConfig::new(rule(), 2, 20));
        det.ingest(&[report(1, 5, 0.0, 0.0)]);
        let events = det.ingest(&[report(2, 3, 100.0, 0.0)]);
        assert!(events.is_empty());
        assert_eq!(det.stats().reports_late, 1);
        assert_eq!(det.stats().reports_ingested, 1);
        assert_eq!(det.live_tracks(), 1);
        // Same-period arrivals are not late.
        det.ingest(&[report(3, 5, 100.0, 0.0)]);
        assert_eq!(det.stats().reports_late, 1);
        assert!(det.detected());
    }

    #[test]
    fn window_expiry_reaps_stale_entries() {
        let mut det = StreamDetector::new(StreamConfig::new(rule(), 2, 5));
        det.ingest(&[report(1, 1, 0.0, 0.0)]);
        assert_eq!(det.live_tracks(), 1);
        // Period 6 puts the period-1 entry exactly M=5 periods behind.
        let events = det.ingest(&[report(2, 6, 100.0, 0.0)]);
        assert!(events.is_empty(), "expired entry must not chain");
        assert_eq!(det.live_tracks(), 1);
        assert_eq!(det.stats().tracks_expired, 1);
    }

    #[test]
    fn track_cap_evicts_oldest_and_counts() {
        let cfg = StreamConfig::new(rule(), 99, 20).with_max_tracks(3);
        let mut det = StreamDetector::new(cfg);
        for i in 0..5 {
            det.ingest(&[report(i, 1, 3000.0 * i as f64, 0.0)]);
        }
        assert_eq!(det.live_tracks(), 3);
        assert_eq!(det.stats().tracks_evicted, 2);
    }

    #[test]
    fn batch_ingest_sorts_by_period() {
        // Reports delivered out of order within one batch still chain.
        let mut det = StreamDetector::new(StreamConfig::new(rule(), 3, 20));
        let events = det.ingest(&[
            report(3, 3, 1800.0, 0.0),
            report(1, 1, 600.0, 0.0),
            report(2, 2, 1200.0, 0.0),
        ]);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].period, 3);
        assert_eq!(det.stats().reports_late, 0);
    }

    #[test]
    fn wrapped_rule_links_across_borders() {
        let cfg = StreamConfig::new(rule().with_wrap(32_000.0, 32_000.0), 2, 20);
        let mut det = StreamDetector::new(cfg);
        det.ingest(&[report(1, 1, 100.0, 0.0)]);
        let events = det.ingest(&[report(2, 1, 31_900.0, 0.0)]);
        assert_eq!(events.len(), 1, "200 m through the wrap must chain");
    }

    #[test]
    fn prefix_equality_with_batch_filter_on_fixed_sequence() {
        // A mixed true-track + clutter sequence, fed one report at a time:
        // after every prefix the incremental longest chain must equal the
        // batch DP on that prefix.
        let m = 6;
        let reports = vec![
            report(1, 1, 600.0, 100.0),
            report(2, 1, 25_000.0, 9_000.0),
            report(3, 2, 1200.0, 80.0),
            report(4, 3, 30_000.0, 2_000.0),
            report(5, 3, 1900.0, 150.0),
            report(6, 5, 3100.0, 60.0),
            report(7, 8, 4900.0, 120.0),
            report(8, 9, 15_000.0, 15_000.0),
            report(9, 9, 5500.0, 40.0),
        ];
        let mut det = StreamDetector::new(StreamConfig::new(rule(), 4, m));
        for prefix in 1..=reports.len() {
            det.ingest(&reports[prefix - 1..prefix]);
            let batch = longest_feasible_chain(&reports[..prefix], &rule(), m);
            assert_eq!(det.longest_chain(), batch, "prefix {prefix}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gbd_geometry::point::Point;
    use gbd_sim::group_filter::longest_feasible_chain;
    use gbd_sim::reports::ReportKind;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For any period-sorted report sequence fed in arbitrary chunks,
        /// the incremental longest chain equals the batch DP on every
        /// chunk boundary prefix — the bit-identity the module docs claim.
        #[test]
        fn incremental_matches_batch_on_every_prefix(
            xs in proptest::collection::vec(
                (0.0f64..32_000.0, 0.0f64..32_000.0, 1usize..25), 1..30),
            chunk in 1usize..5,
            m in 2usize..10,
        ) {
            let rule = TrackRule::new(10.0, 60.0, 1000.0);
            let mut reports: Vec<DetectionReport> = xs
                .iter()
                .enumerate()
                .map(|(i, &(x, y, p))| {
                    DetectionReport::new(SensorId(i), p, Point::new(x, y), ReportKind::FalseAlarm)
                })
                .collect();
            reports.sort_by_key(|r| r.period);
            let mut det = StreamDetector::new(StreamConfig::new(rule, 3, m));
            let mut fed = 0;
            while fed < reports.len() {
                let end = (fed + chunk).min(reports.len());
                det.ingest(&reports[fed..end]);
                fed = end;
                let batch = longest_feasible_chain(&reports[..fed], &rule, m);
                prop_assert_eq!(det.longest_chain(), batch, "prefix {}", fed);
            }
            prop_assert_eq!(det.stats().reports_ingested as usize, reports.len());
            prop_assert_eq!(det.stats().reports_late, 0);
        }

        /// Expiry never changes the answer: a detector with expiry enabled
        /// (frontier advancing) agrees with the batch filter even when many
        /// entries are reaped along the way.
        #[test]
        fn expiry_is_lossless(
            xs in proptest::collection::vec(
                (0.0f64..32_000.0, 0.0f64..32_000.0), 1..25),
            m in 2usize..5,
        ) {
            let rule = TrackRule::new(10.0, 60.0, 1000.0);
            // Strictly increasing periods force an expiry pass per report.
            let reports: Vec<DetectionReport> = xs
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    DetectionReport::new(SensorId(i), i + 1, Point::new(x, y), ReportKind::FalseAlarm)
                })
                .collect();
            let mut det = StreamDetector::new(StreamConfig::new(rule, 2, m));
            for r in &reports {
                det.ingest(std::slice::from_ref(r));
            }
            let batch = longest_feasible_chain(&reports, &rule, m);
            prop_assert_eq!(det.longest_chain(), batch);
        }
    }
}
