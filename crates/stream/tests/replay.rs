//! Ground-truth replay: streaming detection over the simulator's report
//! streams must be bit-identical to the batch group filter, and must
//! reproduce the committed `results/time_to_detection.csv` scenario's
//! first-detection periods exactly.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::engine::run_trial;
use gbd_sim::group_filter::{group_detects, longest_feasible_chain, TrackRule};
use gbd_sim::reports::DetectionReport;
use gbd_stream::{StreamConfig, StreamDetector};

/// The scenario behind `results/time_to_detection.csv` (see
/// `crates/bench/src/bin/time_to_detection.rs`): paper defaults with
/// M = 10, N = 240, k = 3, bench seed 2008.
fn csv_scenario() -> (SystemParams, SimConfig) {
    let params = SystemParams::paper_defaults()
        .with_m_periods(10)
        .with_n_sensors(240)
        .with_k(3);
    let config = SimConfig::new(params).with_seed(2008);
    (params, config)
}

fn stream_detector(params: &SystemParams) -> StreamDetector {
    let rule = TrackRule::new(params.speed(), params.period_s(), params.sensing_range())
        .with_wrap(params.field_width(), params.field_height());
    StreamDetector::new(StreamConfig::new(rule, params.k(), params.m_periods()))
}

/// Replays one trial's reports per period and returns the period of the
/// first streaming detection event, if any.
fn stream_first_detection(
    det: &mut StreamDetector,
    reports: &[DetectionReport],
) -> Option<usize> {
    let mut first = None;
    let mut i = 0;
    while i < reports.len() {
        let period = reports[i].period;
        let mut j = i;
        while j < reports.len() && reports[j].period == period {
            j += 1;
        }
        let events = det.ingest(&reports[i..j]);
        if first.is_none() {
            first = events.first().map(|e| e.period);
        }
        i = j;
    }
    first
}

#[test]
fn streaming_replay_matches_batch_filter_per_trial() {
    let (params, config) = csv_scenario();
    let rule = TrackRule::new(params.speed(), params.period_s(), params.sensing_range())
        .with_wrap(params.field_width(), params.field_height());
    let trials = 400;
    let mut detections = 0usize;
    for trial in 0..trials {
        let outcome = run_trial(&config, trial);
        let mut det = stream_detector(&params);
        // Report-by-report prefix equality against the batch DP.
        for prefix in 1..=outcome.reports.len() {
            det.ingest(&outcome.reports[prefix - 1..prefix]);
            let batch =
                longest_feasible_chain(&outcome.reports[..prefix], &rule, params.m_periods());
            assert_eq!(
                det.longest_chain(),
                batch,
                "trial {trial} prefix {prefix}: incremental chain diverged from batch"
            );
        }
        assert_eq!(
            det.detected(),
            group_detects(&outcome.reports, &rule, params.k(), params.m_periods()),
            "trial {trial}: detection decision diverged"
        );
        // Streaming first event == the simulator's first-detection period.
        let mut replay = stream_detector(&params);
        let streamed = stream_first_detection(&mut replay, &outcome.reports);
        assert_eq!(
            streamed,
            outcome.first_detection_period(params.k()),
            "trial {trial}: streaming time-to-detection diverged from the simulator"
        );
        assert_eq!(replay.stats().reports_late, 0, "trial {trial}");
        assert_eq!(replay.stats().tracks_evicted, 0, "trial {trial}");
        if streamed.is_some() {
            detections += 1;
        }
    }
    assert!(
        detections > 0,
        "scenario must produce detections for the replay to mean anything"
    );
}

#[test]
fn streaming_replay_reproduces_simulator_over_full_csv_scenario() {
    // The full CSV scenario: 4000 trials, seed 2008 (what generated
    // `results/time_to_detection.csv`). Every trial's streaming
    // time-to-detection must equal the simulator's first-detection period
    // exactly — `Option` equality per trial, nothing statistical.
    let (params, config) = csv_scenario();
    let trials = 4_000u64;
    let m = params.m_periods();
    let mut counts = vec![0u64; m];
    for trial in 0..trials {
        let outcome = run_trial(&config, trial);
        let mut det = stream_detector(&params);
        let streamed = stream_first_detection(&mut det, &outcome.reports);
        assert_eq!(
            streamed,
            outcome.first_detection_period(params.k()),
            "trial {trial}: streaming time-to-detection diverged from the simulator"
        );
        if let Some(p) = streamed {
            for slot in counts.iter_mut().skip(p - 1) {
                *slot += 1;
            }
        }
    }
    // Tie the replay to the committed artifact: the streaming-derived
    // cumulative detection curve tracks the committed simulation column.
    // (The committed CSV predates later engine changes that shifted the
    // per-trial RNG stream, so equality is statistical, not digit-level;
    // the digit-level claim above is streaming ≡ simulator per trial.)
    let csv = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/time_to_detection.csv"
    ))
    .expect("committed results/time_to_detection.csv");
    let mut rows = 0usize;
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4, "unexpected CSV row: {line}");
        let period: usize = fields[0].parse().expect("period column");
        let committed_sim: f64 = fields[3].parse().expect("simulation column");
        let streamed = counts[period - 1] as f64 / trials as f64;
        assert!(
            (streamed - committed_sim).abs() < 0.02,
            "period {period}: streaming curve {streamed:.4} strayed from committed {committed_sim:.4}"
        );
        rows += 1;
    }
    assert_eq!(rows, m, "CSV must cover every period");
}
