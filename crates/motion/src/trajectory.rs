//! Trajectories and the motion-model trait.

use gbd_geometry::point::{Point, Segment};
use gbd_geometry::stadium::Stadium;
use rand::Rng;

/// A target trajectory: positions at the boundaries of `M` sensing periods
/// (`M + 1` points).
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    positions: Vec<Point>,
}

impl Trajectory {
    /// Creates a trajectory from boundary positions.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two positions are given (a trajectory spans at
    /// least one period).
    pub fn new(positions: Vec<Point>) -> Self {
        assert!(
            positions.len() >= 2,
            "a trajectory needs at least two positions"
        );
        Trajectory { positions }
    }

    /// Number of sensing periods `M`.
    pub fn periods(&self) -> usize {
        self.positions.len() - 1
    }

    /// Position at the end of period `l` (`position(0)` is the start).
    ///
    /// # Panics
    ///
    /// Panics if `l > M`.
    pub fn position(&self, l: usize) -> Point {
        self.positions[l]
    }

    /// All boundary positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The segment traversed during period `l` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `l` is outside `1 ..= M`.
    pub fn segment(&self, l: usize) -> Segment {
        assert!((1..=self.periods()).contains(&l), "period {l} out of range");
        Segment::new(self.positions[l - 1], self.positions[l])
    }

    /// The Detectable Region of period `l`: the stadium of radius `rs`
    /// around the period's segment.
    pub fn detectable_region(&self, l: usize, rs: f64) -> Stadium {
        let seg = self.segment(l);
        Stadium::new(seg.a, seg.b, rs)
    }

    /// Per-period step lengths.
    pub fn step_lengths(&self) -> Vec<f64> {
        (1..=self.periods())
            .map(|l| self.segment(l).length())
            .collect()
    }

    /// Total path length.
    pub fn total_length(&self) -> f64 {
        self.step_lengths().iter().sum()
    }
}

/// A mobility model that generates trajectories.
///
/// `start` is the initial position, `heading` the initial heading in
/// radians, `period_s` the sensing-period length in seconds and `periods`
/// the number of periods `M`.
pub trait MotionModel {
    /// Generates one trajectory.
    fn generate<R: Rng + ?Sized>(
        &self,
        start: Point,
        heading: f64,
        period_s: f64,
        periods: usize,
        rng: &mut R,
    ) -> Trajectory;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 10.0),
        ]);
        assert_eq!(t.periods(), 2);
        assert_eq!(t.position(0), Point::new(0.0, 0.0));
        assert_eq!(t.segment(2).a, Point::new(3.0, 4.0));
        assert_eq!(t.step_lengths(), vec![5.0, 6.0]);
        assert_eq!(t.total_length(), 11.0);
    }

    #[test]
    fn detectable_region_geometry() {
        let t = Trajectory::new(vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)]);
        let dr = t.detectable_region(1, 2.0);
        assert!(dr.contains(Point::new(3.0, 1.9)));
        assert!(!dr.contains(Point::new(3.0, 2.1)));
    }

    #[test]
    #[should_panic(expected = "at least two positions")]
    fn too_short_panics() {
        Trajectory::new(vec![Point::ORIGIN]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_out_of_range_panics() {
        Trajectory::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]).segment(2);
    }
}
