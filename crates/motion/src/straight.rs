//! Constant-speed straight-line motion — the paper's primary assumption.

use crate::trajectory::{MotionModel, Trajectory};
use gbd_geometry::point::{Point, Vector};
use rand::Rng;

/// A target moving in a straight line at constant speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StraightLine {
    speed: f64,
}

impl StraightLine {
    /// Creates the model with the given speed in m/s.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative or not finite.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed >= 0.0,
            "speed must be finite and >= 0"
        );
        StraightLine { speed }
    }

    /// Target speed in m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }
}

impl MotionModel for StraightLine {
    fn generate<R: Rng + ?Sized>(
        &self,
        start: Point,
        heading: f64,
        period_s: f64,
        periods: usize,
        _rng: &mut R,
    ) -> Trajectory {
        let step = Vector::from_heading(heading) * (self.speed * period_s);
        let mut positions = Vec::with_capacity(periods + 1);
        let mut pos = start;
        positions.push(pos);
        for _ in 0..periods {
            pos = pos + step;
            positions.push(pos);
        }
        Trajectory::new(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn straight_line_paper_settings() {
        let model = StraightLine::new(10.0);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let t = model.generate(Point::ORIGIN, 0.0, 60.0, 20, &mut rng);
        assert_eq!(t.periods(), 20);
        assert!((t.total_length() - 12_000.0).abs() < 1e-9);
        // Every step has the same length V·t = 600.
        for s in t.step_lengths() {
            assert!((s - 600.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heading_rotates_direction() {
        let model = StraightLine::new(1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let t = model.generate(Point::ORIGIN, std::f64::consts::FRAC_PI_2, 1.0, 1, &mut rng);
        let end = t.position(1);
        assert!(end.x.abs() < 1e-12);
        assert!((end.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_speed_stays_put() {
        let model = StraightLine::new(0.0);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let t = model.generate(Point::new(5.0, 5.0), 1.0, 60.0, 3, &mut rng);
        assert_eq!(t.total_length(), 0.0);
        assert_eq!(t.position(3), Point::new(5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn negative_speed_panics() {
        StraightLine::new(-1.0);
    }
}
