//! Straight-line motion with per-period varying speed.
//!
//! The paper's §6 lists "the case when the target travels in varying
//! speeds" as future work; `gbd-core::varying_speed` implements the
//! corresponding analysis and this model generates the matching
//! trajectories: the heading is fixed, but each period's speed is drawn
//! uniformly from `[v_min, v_max]`.

use crate::trajectory::{MotionModel, Trajectory};
use gbd_geometry::point::{Point, Vector};
use rand::Rng;

/// Straight-line motion whose speed is redrawn each sensing period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VaryingSpeed {
    v_min: f64,
    v_max: f64,
}

impl VaryingSpeed {
    /// Creates the model with speeds drawn uniformly from `[v_min, v_max]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite, negative, or out of order.
    pub fn new(v_min: f64, v_max: f64) -> Self {
        assert!(
            v_min.is_finite() && v_max.is_finite() && v_min >= 0.0 && v_max >= v_min,
            "speed bounds must satisfy 0 <= v_min <= v_max"
        );
        VaryingSpeed { v_min, v_max }
    }

    /// Lower speed bound (m/s).
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Upper speed bound (m/s).
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Draws the per-period speeds a trajectory will use; exposed so that
    /// the analysis side can be built for the *same* speed sequence.
    pub fn draw_speeds<R: Rng + ?Sized>(&self, periods: usize, rng: &mut R) -> Vec<f64> {
        (0..periods)
            .map(|_| {
                if self.v_max > self.v_min {
                    rng.gen_range(self.v_min..self.v_max)
                } else {
                    self.v_min
                }
            })
            .collect()
    }

    /// Builds the trajectory for an explicit speed sequence.
    pub fn trajectory_for_speeds(
        start: Point,
        heading: f64,
        period_s: f64,
        speeds: &[f64],
    ) -> Trajectory {
        let dir = Vector::from_heading(heading);
        let mut positions = Vec::with_capacity(speeds.len() + 1);
        let mut pos = start;
        positions.push(pos);
        for &v in speeds {
            pos = pos + dir * (v * period_s);
            positions.push(pos);
        }
        Trajectory::new(positions)
    }
}

impl MotionModel for VaryingSpeed {
    fn generate<R: Rng + ?Sized>(
        &self,
        start: Point,
        heading: f64,
        period_s: f64,
        periods: usize,
        rng: &mut R,
    ) -> Trajectory {
        let speeds = self.draw_speeds(periods, rng);
        Self::trajectory_for_speeds(start, heading, period_s, &speeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn steps_within_speed_bounds() {
        let model = VaryingSpeed::new(4.0, 10.0);
        let t = model.generate(Point::ORIGIN, 0.5, 60.0, 25, &mut rng(1));
        for s in t.step_lengths() {
            assert!((4.0 * 60.0 - 1e-9..=10.0 * 60.0 + 1e-9).contains(&s));
        }
    }

    #[test]
    fn collinear_motion() {
        let model = VaryingSpeed::new(2.0, 8.0);
        let t = model.generate(Point::ORIGIN, 0.0, 60.0, 10, &mut rng(2));
        for p in t.positions() {
            assert!(p.y.abs() < 1e-9);
        }
        // Positions are monotone along the heading.
        for l in 1..=t.periods() {
            assert!(t.position(l).x >= t.position(l - 1).x);
        }
    }

    #[test]
    fn degenerate_range_is_constant_speed() {
        let model = VaryingSpeed::new(5.0, 5.0);
        let t = model.generate(Point::ORIGIN, 0.0, 60.0, 4, &mut rng(3));
        for s in t.step_lengths() {
            assert!((s - 300.0).abs() < 1e-9);
        }
    }

    #[test]
    fn trajectory_for_speeds_matches_drawn_sequence() {
        let model = VaryingSpeed::new(1.0, 9.0);
        let speeds = model.draw_speeds(6, &mut rng(4));
        let t = VaryingSpeed::trajectory_for_speeds(Point::ORIGIN, 0.0, 60.0, &speeds);
        for (l, &v) in speeds.iter().enumerate() {
            assert!((t.segment(l + 1).length() - v * 60.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "speed bounds")]
    fn reversed_bounds_panic() {
        VaryingSpeed::new(5.0, 1.0);
    }
}
