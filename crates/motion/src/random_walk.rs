//! Random-walk motion: the paper's §4 robustness experiment.
//!
//! "the target randomly chooses a new direction within \[−π/4, π/4\] of
//! its current direction, every 1 minute" — i.e. every sensing period the
//! heading is perturbed by a uniform draw in `±max_turn`, while the speed
//! stays constant.

use crate::trajectory::{MotionModel, Trajectory};
use gbd_geometry::point::{Point, Vector};
use rand::Rng;

/// Constant-speed motion with a bounded random heading change each period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalk {
    speed: f64,
    max_turn: f64,
}

impl RandomWalk {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative/not finite or `max_turn` is negative,
    /// not finite, or larger than π.
    pub fn new(speed: f64, max_turn: f64) -> Self {
        assert!(
            speed.is_finite() && speed >= 0.0,
            "speed must be finite and >= 0"
        );
        assert!(
            max_turn.is_finite() && (0.0..=std::f64::consts::PI).contains(&max_turn),
            "max_turn must be in [0, pi]"
        );
        RandomWalk { speed, max_turn }
    }

    /// The paper's configuration: given speed, turns bounded by π/4.
    pub fn paper(speed: f64) -> Self {
        RandomWalk::new(speed, std::f64::consts::FRAC_PI_4)
    }

    /// Target speed in m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Maximum per-period heading change in radians.
    pub fn max_turn(&self) -> f64 {
        self.max_turn
    }
}

impl MotionModel for RandomWalk {
    fn generate<R: Rng + ?Sized>(
        &self,
        start: Point,
        heading: f64,
        period_s: f64,
        periods: usize,
        rng: &mut R,
    ) -> Trajectory {
        let mut positions = Vec::with_capacity(periods + 1);
        let mut pos = start;
        let mut theta = heading;
        positions.push(pos);
        for _ in 0..periods {
            pos = pos + Vector::from_heading(theta) * (self.speed * period_s);
            positions.push(pos);
            if self.max_turn > 0.0 {
                theta += rng.gen_range(-self.max_turn..self.max_turn);
            }
        }
        Trajectory::new(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn steps_have_constant_length() {
        let model = RandomWalk::paper(10.0);
        let t = model.generate(Point::ORIGIN, 0.3, 60.0, 20, &mut rng(1));
        for s in t.step_lengths() {
            assert!((s - 600.0).abs() < 1e-9);
        }
        assert!((t.total_length() - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_turn_reduces_to_straight_line() {
        let model = RandomWalk::new(10.0, 0.0);
        let t = model.generate(Point::ORIGIN, 0.0, 60.0, 5, &mut rng(2));
        let end = t.position(5);
        assert!((end.x - 3000.0).abs() < 1e-9);
        assert!(end.y.abs() < 1e-9);
    }

    #[test]
    fn turns_are_bounded() {
        let model = RandomWalk::paper(10.0);
        let t = model.generate(Point::ORIGIN, 0.0, 60.0, 50, &mut rng(3));
        for l in 2..=t.periods() {
            let prev = t.segment(l - 1);
            let cur = t.segment(l);
            let h_prev = (prev.b - prev.a).heading();
            let h_cur = (cur.b - cur.a).heading();
            let mut d = (h_cur - h_prev).abs();
            if d > std::f64::consts::PI {
                d = 2.0 * std::f64::consts::PI - d;
            }
            assert!(
                d <= std::f64::consts::FRAC_PI_4 + 1e-9,
                "turn {d} too large"
            );
        }
    }

    #[test]
    fn displacement_shrinks_relative_to_straight() {
        // Averaged over many walks the net displacement is below the
        // straight-line displacement — the mechanism behind Figure 9(c)'s
        // slightly lower detection probability.
        let model = RandomWalk::paper(10.0);
        let mut total = 0.0;
        let runs = 200;
        for i in 0..runs {
            let t = model.generate(Point::ORIGIN, 0.0, 60.0, 20, &mut rng(100 + i));
            total += t.position(0).distance(t.position(20));
        }
        let mean = total / runs as f64;
        assert!(mean < 12_000.0 * 0.98, "mean displacement {mean}");
        assert!(mean > 12_000.0 * 0.5);
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let model = RandomWalk::paper(4.0);
        let a = model.generate(Point::ORIGIN, 1.0, 60.0, 10, &mut rng(9));
        let b = model.generate(Point::ORIGIN, 1.0, 60.0, 10, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_turn")]
    fn oversized_turn_panics() {
        RandomWalk::new(1.0, 4.0);
    }
}
