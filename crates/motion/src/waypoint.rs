//! Random-waypoint mobility.
//!
//! The target repeatedly picks a waypoint uniformly inside a region and
//! moves toward it at constant speed, picking a new waypoint on arrival.
//! Not evaluated in the paper, but a standard mobility comparator for the
//! robustness experiments (it produces sharper turns than the bounded
//! random walk).

use crate::trajectory::{MotionModel, Trajectory};
use gbd_geometry::point::{Aabb, Point};
use rand::Rng;

/// Random-waypoint motion within a rectangular region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    speed: f64,
    region: Aabb,
}

impl RandomWaypoint {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative/not finite or the region has zero
    /// area.
    pub fn new(speed: f64, region: Aabb) -> Self {
        assert!(
            speed.is_finite() && speed >= 0.0,
            "speed must be finite and >= 0"
        );
        assert!(
            region.area() > 0.0,
            "waypoint region must have positive area"
        );
        RandomWaypoint { speed, region }
    }

    /// Target speed in m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Waypoint region.
    pub fn region(&self) -> Aabb {
        self.region
    }
}

impl MotionModel for RandomWaypoint {
    fn generate<R: Rng + ?Sized>(
        &self,
        start: Point,
        _heading: f64,
        period_s: f64,
        periods: usize,
        rng: &mut R,
    ) -> Trajectory {
        let mut positions = Vec::with_capacity(periods + 1);
        let mut pos = start;
        positions.push(pos);
        let mut waypoint = sample_waypoint(&self.region, rng);
        for _ in 0..periods {
            let mut remaining = self.speed * period_s;
            // Walk toward successive waypoints until the period's travel
            // budget is exhausted.
            while remaining > 0.0 {
                let to_wp = waypoint - pos;
                let dist = to_wp.norm();
                if dist <= remaining {
                    pos = waypoint;
                    remaining -= dist;
                    waypoint = sample_waypoint(&self.region, rng);
                    if self.speed == 0.0 {
                        break;
                    }
                } else {
                    pos = pos + to_wp * (remaining / dist);
                    remaining = 0.0;
                }
            }
            positions.push(pos);
        }
        Trajectory::new(positions)
    }
}

fn sample_waypoint<R: Rng + ?Sized>(region: &Aabb, rng: &mut R) -> Point {
    Point::new(
        rng.gen_range(region.min.x..region.max.x),
        rng.gen_range(region.min.y..region.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn period_displacement_never_exceeds_budget() {
        let region = Aabb::from_extent(10_000.0, 10_000.0);
        let model = RandomWaypoint::new(10.0, region);
        let t = model.generate(Point::new(5000.0, 5000.0), 0.0, 60.0, 30, &mut rng(1));
        for l in 1..=t.periods() {
            // Straight-line displacement <= distance traveled <= V·t.
            assert!(t.segment(l).length() <= 600.0 + 1e-9);
        }
    }

    #[test]
    fn stays_inside_region() {
        let region = Aabb::from_extent(1000.0, 1000.0);
        let model = RandomWaypoint::new(50.0, region);
        let t = model.generate(Point::new(500.0, 500.0), 0.0, 60.0, 50, &mut rng(2));
        // Positions interpolate between in-region waypoints starting from an
        // in-region start, so they stay inside.
        for p in t.positions() {
            assert!(region.contains(*p), "{p:?} escaped");
        }
    }

    #[test]
    fn zero_speed_stays_put() {
        let region = Aabb::from_extent(100.0, 100.0);
        let model = RandomWaypoint::new(0.0, region);
        let t = model.generate(Point::new(1.0, 2.0), 0.0, 60.0, 5, &mut rng(3));
        assert_eq!(t.total_length(), 0.0);
    }

    #[test]
    fn reproducible() {
        let region = Aabb::from_extent(1000.0, 1000.0);
        let model = RandomWaypoint::new(10.0, region);
        let a = model.generate(Point::new(1.0, 1.0), 0.0, 60.0, 10, &mut rng(4));
        let b = model.generate(Point::new(1.0, 1.0), 0.0, 60.0, 10, &mut rng(4));
        assert_eq!(a, b);
    }
}
