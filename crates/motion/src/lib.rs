#![warn(missing_docs)]
//! Target motion substrate for the `sparse-groupdet` workspace.
//!
//! A trajectory is the sequence of target positions at sensing-period
//! boundaries; the Detectable Region of period `l` is the stadium around
//! the `l`-th segment. Models provided:
//!
//! * [`straight::StraightLine`] — constant speed and heading (the paper's
//!   primary assumption);
//! * [`random_walk::RandomWalk`] — heading perturbed uniformly within
//!   `±max_turn` each period (the paper's §4 "Random Walk", `±π/4`);
//! * [`waypoint::RandomWaypoint`] — classic random-waypoint mobility;
//! * [`varying_speed::VaryingSpeed`] — straight line with per-period speeds
//!   drawn from a range (the paper's §6 future-work case).
//!
//! # Example
//!
//! ```
//! use gbd_motion::straight::StraightLine;
//! use gbd_motion::trajectory::MotionModel;
//! use gbd_geometry::point::Point;
//! use rand::SeedableRng;
//!
//! let model = StraightLine::new(10.0); // 10 m/s
//! let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(9);
//! let start = Point::new(0.0, 0.0);
//! let traj = model.generate(start, 0.0, 60.0, 20, &mut rng);
//! assert_eq!(traj.periods(), 20);
//! assert!((traj.total_length() - 12_000.0).abs() < 1e-9);
//! ```

pub mod random_walk;
pub mod straight;
pub mod trajectory;
pub mod varying_speed;
pub mod waypoint;
