#![warn(missing_docs)]
//! Shared plumbing for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one figure (or ablation) of the
//! paper: it prints the series to stdout in a paper-comparable layout and
//! writes a CSV under `results/` for plotting. Trial counts default to the
//! paper's 10 000 and can be lowered with `--trials <n>` for smoke runs.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Monte Carlo trials per point.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl ExpOptions {
    /// Parses `--trials <n>`, `--seed <n>` and `--out <dir>` from the
    /// process arguments; everything else is ignored.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed values.
    pub fn from_args(default_trials: u64) -> Self {
        let mut opts = ExpOptions {
            trials: default_trials,
            seed: 2008,
            out_dir: PathBuf::from("results"),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--trials" => {
                    opts.trials = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs a positive integer");
                    i += 2;
                }
                "--seed" => {
                    opts.seed = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                    i += 2;
                }
                "--out" => {
                    opts.out_dir =
                        PathBuf::from(args.get(i + 1).expect("--out needs a directory"));
                    i += 2;
                }
                _ => i += 1,
            }
        }
        opts
    }
}

/// A minimal CSV writer (no quoting needed for numeric experiment output).
pub struct Csv {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl Csv {
    /// Creates `<dir>/<name>` (and the directory), writing the header row.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created.
    pub fn create(dir: &Path, name: &str, header: &[&str]) -> Self {
        std::fs::create_dir_all(dir).expect("cannot create results directory");
        let path = dir.join(name);
        let mut writer = BufWriter::new(File::create(&path).expect("cannot create csv"));
        writeln!(writer, "{}", header.join(",")).expect("csv write failed");
        Csv { writer, path }
    }

    /// Writes one row of values.
    pub fn row(&mut self, values: &[String]) {
        writeln!(self.writer, "{}", values.join(",")).expect("csv write failed");
    }

    /// Flushes and reports the path written.
    pub fn finish(mut self) {
        self.writer.flush().expect("csv flush failed");
        println!("\n[written] {}", self.path.display());
    }
}

/// Formats a float with 4 decimals for CSV rows.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// The paper's Figure 9 sensor-count sweep: 60 to 240 in steps of 30.
pub fn figure9_n_values() -> Vec<usize> {
    (60..=240).step_by(30).collect()
}

/// The paper's Figure 8 sensor-count sweep: 60 to 260 in steps of 20.
pub fn figure8_n_values() -> Vec<usize> {
    (60..=260).step_by(20).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper_axes() {
        let f9 = figure9_n_values();
        assert_eq!(f9.first(), Some(&60));
        assert_eq!(f9.last(), Some(&240));
        assert_eq!(f9.len(), 7);
        let f8 = figure8_n_values();
        assert_eq!(f8.first(), Some(&60));
        assert_eq!(f8.last(), Some(&260));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("gbd_bench_test_csv");
        let mut csv = Csv::create(&dir, "t.csv", &["a", "b"]);
        csv.row(&[f(1.0), f(2.5)]);
        csv.finish();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n1.0000,2.5000\n");
    }
}
