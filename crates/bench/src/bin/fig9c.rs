//! Figure 9(c): a target that changes direction (Random Walk: heading
//! perturbed uniformly in ±π/4 every period) simulated against the
//! straight-line analysis. The paper reports a maximum error of 2.4 %,
//! with the analysis slightly *above* the walk (a shrinking ARegion).
//!
//! Analysis and random-walk simulation are one engine batch; the analysis
//! points reuse the geometry/stage entries the engine computed for the
//! first sweep point of each speed.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin fig9c -- --trials 10000
//! ```

use gbd_bench::{f, figure9_n_values, Csv, ExpOptions};
use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, Engine, EvalRequest, SimulationSpec};
use gbd_sim::config::MotionSpec;

fn main() {
    let opts = ExpOptions::from_args(10_000);
    println!(
        "Figure 9(c) — random-walk target vs straight-line analysis ({} trials/point)\n",
        opts.trials
    );
    println!("   N  |  V  | analysis (straight) | simulation (walk) | analysis − walk");
    println!(" -----+-----+---------------------+-------------------+----------------");

    let spec = SimulationSpec {
        trials: opts.trials,
        seed: opts.seed,
        motion: MotionSpec::RandomWalk {
            max_turn: std::f64::consts::FRAC_PI_4,
        },
        ..SimulationSpec::default()
    };
    let mut points = Vec::new();
    let mut requests = Vec::new();
    for v in [4.0, 10.0] {
        for n in figure9_n_values() {
            let params = SystemParams::paper_defaults()
                .with_n_sensors(n)
                .with_speed(v);
            points.push((n, v));
            requests.push(EvalRequest::new(params, BackendSpec::ms_default()));
            requests.push(EvalRequest::new(params, BackendSpec::Simulation(spec)));
        }
    }
    let engine = Engine::new();
    let responses = engine.evaluate_batch(&requests);

    let mut csv = Csv::create(
        &opts.out_dir,
        "fig9c.csv",
        &["n", "v", "analysis_straight", "sim_random_walk", "gap"],
    );
    let mut max_err = 0.0f64;
    for (i, &(n, v)) in points.iter().enumerate() {
        let ana = responses[2 * i]
            .detection_probability()
            .expect("valid paper params");
        let outcome = responses[2 * i + 1].outcome.as_ref().expect("valid config");
        let sim = outcome.simulation().expect("simulation backend");
        let gap = ana - sim.detection_probability;
        max_err = max_err.max(gap.abs());
        println!(
            "  {n:3} | {v:3} |        {ana:.4}       |      {:.4}       |     {gap:+.4}",
            sim.detection_probability
        );
        csv.row(&[
            n.to_string(),
            v.to_string(),
            f(ana),
            f(sim.detection_probability),
            f(gap),
        ]);
    }
    csv.finish();
    println!("\nmax |error| = {max_err:.4} (paper: 2.4 %)");
    println!("Paper shape: the straight-line analysis upper-bounds the random walk");
    println!("slightly — direction changes shrink the explored region.");
}
