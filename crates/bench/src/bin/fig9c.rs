//! Figure 9(c): a target that changes direction (Random Walk: heading
//! perturbed uniformly in ±π/4 every period) simulated against the
//! straight-line analysis. The paper reports a maximum error of 2.4 %,
//! with the analysis slightly *above* the walk (a shrinking ARegion).
//!
//! ```text
//! cargo run --release -p gbd-bench --bin fig9c -- --trials 10000
//! ```

use gbd_bench::{f, figure9_n_values, Csv, ExpOptions};
use gbd_core::ms_approach::{analyze, MsOptions};
use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::runner::run;

fn main() {
    let opts = ExpOptions::from_args(10_000);
    println!(
        "Figure 9(c) — random-walk target vs straight-line analysis ({} trials/point)\n",
        opts.trials
    );
    println!("   N  |  V  | analysis (straight) | simulation (walk) | analysis − walk");
    println!(" -----+-----+---------------------+-------------------+----------------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "fig9c.csv",
        &["n", "v", "analysis_straight", "sim_random_walk", "gap"],
    );
    let mut max_err = 0.0f64;
    for v in [4.0, 10.0] {
        for n in figure9_n_values() {
            let params = SystemParams::paper_defaults()
                .with_n_sensors(n)
                .with_speed(v);
            let ana = analyze(&params, &MsOptions::default())
                .expect("valid paper params")
                .detection_probability(params.k());
            let sim = run(&SimConfig::new(params)
                .with_trials(opts.trials)
                .with_seed(opts.seed)
                .with_paper_random_walk());
            let gap = ana - sim.detection_probability;
            max_err = max_err.max(gap.abs());
            println!(
                "  {n:3} | {v:3} |        {ana:.4}       |      {:.4}       |     {gap:+.4}",
                sim.detection_probability
            );
            csv.row(&[
                n.to_string(),
                v.to_string(),
                f(ana),
                f(sim.detection_probability),
                f(gap),
            ]);
        }
    }
    csv.finish();
    println!("\nmax |error| = {max_err:.4} (paper: 2.4 %)");
    println!("Paper shape: the straight-line analysis upper-bounds the random walk");
    println!("slightly — direction changes shrink the explored region.");
}
