//! Baseline → optimized performance trajectory for the hot analytical
//! path, emitting `results/BENCH_pr4.json` and (for the persistent-store
//! leg) `results/BENCH_pr5.json`.
//!
//! Four legs, each timed as best-of-`repeats` wall clock:
//!
//! 1. **fig8 sweep, cold** — the Figure 8 `N` grid through the
//!    seed-faithful nested kernels ([`gbd_core::baseline`]) and through
//!    the flat kernels ([`gbd_core::ms_approach::analyze`]). Outputs are
//!    asserted bit-identical point by point before any number is
//!    reported, so the speedup is for the *same* answer.
//! 2. **engine sweep, cold vs warm** — the timing-table grid through the
//!    engine twice on one `Engine` value: the cold pass pays geometry +
//!    stage + assembly, the warm pass is answered from the result layer.
//! 3. **skewed design-space sweep, 1 worker vs all cores** — a batch
//!    whose per-request cost varies by an order of magnitude (`M` swept),
//!    through `Engine::with_workers(1)` and `with_workers(cores)`. On a
//!    multi-core host this shows the work-stealing pool absorbing the
//!    skew; the honest `cores` count is recorded so a single-core
//!    container's ~1× scaling reads as expected, not as a regression.
//! 4. **fig8 sweep, cold boot vs store-warmed boot** — a fresh engine
//!    with an attached `gbd-store` log runs the fig8 grid (computing and
//!    spilling every stage), then a second fresh engine over the same
//!    store boots warm and reruns it. Responses are asserted bit-identical
//!    with zero warm-side misses before the ratio is reported.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin perf_trajectory -- [--quick] [--out dir]
//! ```

use gbd_bench::figure8_n_values;
use gbd_core::baseline;
use gbd_core::ms_approach::{self, AnalysisResult, MsOptions};
use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, Engine, EvalRequest};
use gbd_serve::Json;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    quick: bool,
    out_dir: PathBuf,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        out_dir: PathBuf::from("results"),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--out" => {
                opts.out_dir = PathBuf::from(args.get(i + 1).expect("--out needs a directory"));
                i += 2;
            }
            other => {
                eprintln!("usage: perf_trajectory [--quick] [--out dir] (got {other})");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Best-of-`repeats` wall-clock milliseconds of `work`, with the results
/// of the last run returned for identity checks.
fn time_best<T>(repeats: usize, mut work: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let value = work();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("repeats >= 1"))
}

fn assert_bit_identical(a: &AnalysisResult, b: &AnalysisResult, what: &str) {
    let (x, y) = (
        a.raw_distribution().as_slice(),
        b.raw_distribution().as_slice(),
    );
    assert_eq!(x.len(), y.len(), "{what}: support length");
    for (i, (p, q)) in x.iter().zip(y).enumerate() {
        assert_eq!(p.to_bits(), q.to_bits(), "{what}: index {i}: {p} vs {q}");
    }
    assert_eq!(
        a.predicted_accuracy().to_bits(),
        b.predicted_accuracy().to_bits(),
        "{what}: predicted accuracy"
    );
}

fn entry(name: &str, mode: &str, impl_name: &str, wall_ms: f64, points: usize) -> Json {
    Json::obj(vec![
        ("name".to_string(), Json::from(name)),
        ("mode".to_string(), Json::from(mode)),
        ("impl".to_string(), Json::from(impl_name)),
        ("wall_ms".to_string(), Json::Num(wall_ms)),
        ("points".to_string(), Json::from(points)),
    ])
}

fn main() {
    let opts = parse_args();
    let repeats = if opts.quick { 2 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries: Vec<Json> = Vec::new();

    // Leg 1: fig8 sweep, baseline vs flat kernels, bit-identity asserted.
    // Quick mode keeps the full N grid: the speedup ratio grows with N
    // (the baseline's per-point cost does, the flat path's barely), so a
    // truncated grid would not be comparable to the committed full-run
    // ratios the --bench-smoke gate checks against. The whole leg is
    // milliseconds either way; --quick saves time elsewhere.
    let base = SystemParams::paper_defaults().with_speed(10.0);
    let n_values = figure8_n_values();
    let grid: Vec<SystemParams> = n_values.iter().map(|&n| base.with_n_sensors(n)).collect();
    let ms = MsOptions::default();
    println!(
        "leg 1: fig8 sweep, {} points, best of {repeats}",
        grid.len()
    );
    let (baseline_ms, baseline_results) = time_best(repeats, || {
        grid.iter()
            .map(|p| baseline::analyze_baseline(p, &ms).expect("fig8 baseline"))
            .collect::<Vec<_>>()
    });
    let (optimized_ms, optimized_results) = time_best(repeats, || {
        grid.iter()
            .map(|p| ms_approach::analyze(p, &ms).expect("fig8 optimized"))
            .collect::<Vec<_>>()
    });
    for (i, (a, b)) in baseline_results.iter().zip(&optimized_results).enumerate() {
        assert_bit_identical(a, b, &format!("fig8 N={}", n_values[i]));
    }
    let fig8_speedup = baseline_ms / optimized_ms.max(1e-9);
    println!(
        "  baseline {baseline_ms:.2} ms, optimized {optimized_ms:.2} ms ({fig8_speedup:.2}x)"
    );
    entries.push(entry(
        "fig8_sweep",
        "cold",
        "baseline",
        baseline_ms,
        grid.len(),
    ));
    entries.push(entry(
        "fig8_sweep",
        "cold",
        "optimized",
        optimized_ms,
        grid.len(),
    ));

    // Leg 2: engine cold vs warm over the timing-table grid.
    let mut requests: Vec<EvalRequest> = Vec::new();
    for &speed in &[4.0, 10.0] {
        for &n in &n_values {
            requests.push(EvalRequest::new(
                base.with_speed(speed).with_n_sensors(n),
                BackendSpec::ms_default(),
            ));
        }
    }
    println!(
        "leg 2: engine sweep, {} requests, cold then warm",
        requests.len()
    );
    let engine = Engine::new();
    let t = Instant::now();
    let cold = engine.evaluate_batch(&requests);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let warm = engine.evaluate_batch(&requests);
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.outcome, w.outcome, "warm response diverged from cold");
    }
    let warm_speedup = cold_ms / warm_ms.max(1e-9);
    println!("  cold {cold_ms:.2} ms, warm {warm_ms:.2} ms ({warm_speedup:.1}x)");
    entries.push(entry(
        "engine_sweep",
        "cold",
        "optimized",
        cold_ms,
        requests.len(),
    ));
    entries.push(entry(
        "engine_sweep",
        "warm",
        "optimized",
        warm_ms,
        requests.len(),
    ));

    // Leg 3: skewed sweep (M varies 4..28, so per-request cost is skewed)
    // through 1 worker vs all cores. Bypassing the cache would change
    // values never — but here each request is distinct anyway, so the
    // batch is all misses and the measurement is pure compute + stealing.
    let m_values: &[usize] = if opts.quick {
        &[4, 12, 20]
    } else {
        &[4, 8, 12, 16, 20, 24, 28]
    };
    let skewed: Vec<EvalRequest> = m_values
        .iter()
        .flat_map(|&m| {
            n_values.iter().map(move |&n| {
                EvalRequest::new(
                    base.with_m_periods(m).with_n_sensors(n),
                    BackendSpec::ms_default(),
                )
            })
        })
        .collect();
    println!(
        "leg 3: skewed design-space sweep, {} requests, 1 vs {cores} worker(s)",
        skewed.len()
    );
    let (serial_ms, serial) =
        time_best(repeats, || Engine::with_workers(1).evaluate_batch(&skewed));
    let (parallel_ms, parallel) = time_best(repeats, || {
        Engine::with_workers(cores).evaluate_batch(&skewed)
    });
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.outcome, b.outcome, "worker count changed a response");
    }
    let scaling = serial_ms / parallel_ms.max(1e-9);
    println!(
        "  workers=1 {serial_ms:.2} ms, workers={cores} {parallel_ms:.2} ms ({scaling:.2}x)"
    );
    entries.push(entry(
        "design_space_skewed",
        "cold",
        "workers_1",
        serial_ms,
        skewed.len(),
    ));
    entries.push(entry(
        "design_space_skewed",
        "cold",
        &format!("workers_{cores}"),
        parallel_ms,
        skewed.len(),
    ));

    // Leg 4: cold boot vs store-warmed boot over the fig8 grid. Timing
    // includes `with_store` itself, so the warm number honestly pays for
    // reading and decoding the log.
    std::fs::create_dir_all(&opts.out_dir).expect("cannot create output directory");
    let store_path = opts.out_dir.join("warmstart.gbdstore");
    let _ = std::fs::remove_file(&store_path);
    let fig8_requests: Vec<EvalRequest> = n_values
        .iter()
        .map(|&n| EvalRequest::new(base.with_n_sensors(n), BackendSpec::ms_default()))
        .collect();
    println!(
        "leg 4: fig8 sweep, {} requests, cold boot vs store-warmed boot",
        fig8_requests.len()
    );
    let t = Instant::now();
    let spilling = Engine::new()
        .with_store(&store_path)
        .expect("open fresh store");
    let store_cold = spilling.evaluate_batch(&fig8_requests);
    let store_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    spilling
        .snapshot_store()
        .expect("store attached")
        .expect("snapshot store");
    drop(spilling);
    let t = Instant::now();
    let warmed = Engine::new().with_store(&store_path).expect("reopen store");
    let store_warm = warmed.evaluate_batch(&fig8_requests);
    let store_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut warm_misses = 0;
    for (c, w) in store_cold.iter().zip(&store_warm) {
        assert_eq!(c.outcome, w.outcome, "store-warmed response diverged");
        warm_misses += w.cache.misses;
    }
    assert_eq!(warm_misses, 0, "store-warmed sweep recomputed a stage");
    let store_loads = warmed.cache_stats().store_loads;
    assert!(store_loads > 0, "warm boot loaded nothing from the store");
    let store_warm_ratio = store_cold_ms / store_warm_ms.max(1e-9);
    println!(
        "  cold boot {store_cold_ms:.2} ms, warmed boot {store_warm_ms:.2} ms \
         ({store_warm_ratio:.1}x, {store_loads} records loaded)"
    );
    let store_entries = vec![
        entry(
            "fig8_store_boot",
            "cold",
            "store_spill",
            store_cold_ms,
            fig8_requests.len(),
        ),
        entry(
            "fig8_store_boot",
            "warm",
            "store_loaded",
            store_warm_ms,
            fig8_requests.len(),
        ),
    ];
    let _ = std::fs::remove_file(&store_path);

    let store_report = Json::obj(vec![
        ("bench".to_string(), Json::from("pr5_store_warmstart")),
        ("cores".to_string(), Json::from(cores)),
        ("quick".to_string(), Json::Bool(opts.quick)),
        ("entries".to_string(), Json::Arr(store_entries)),
        (
            "derived".to_string(),
            Json::obj(vec![
                ("store_warm_ratio".to_string(), Json::Num(store_warm_ratio)),
                ("store_loads".to_string(), Json::from(store_loads)),
                ("bit_identical".to_string(), Json::Bool(true)),
            ]),
        ),
    ]);
    let pr5_path = opts.out_dir.join("BENCH_pr5.json");
    std::fs::write(&pr5_path, format!("{}\n", store_report.render()))
        .expect("cannot write BENCH_pr5.json");
    println!("[written] {}", pr5_path.display());

    let report = Json::obj(vec![
        ("bench".to_string(), Json::from("pr4_perf_trajectory")),
        ("cores".to_string(), Json::from(cores)),
        ("quick".to_string(), Json::Bool(opts.quick)),
        ("repeats".to_string(), Json::from(repeats)),
        ("entries".to_string(), Json::Arr(entries)),
        (
            "derived".to_string(),
            Json::obj(vec![
                ("fig8_cold_speedup".to_string(), Json::Num(fig8_speedup)),
                ("engine_warm_speedup".to_string(), Json::Num(warm_speedup)),
                ("thread_scaling".to_string(), Json::Num(scaling)),
                ("bit_identical".to_string(), Json::Bool(true)),
            ]),
        ),
    ]);
    std::fs::create_dir_all(&opts.out_dir).expect("cannot create output directory");
    let path = opts.out_dir.join("BENCH_pr4.json");
    std::fs::write(&path, format!("{}\n", report.render()))
        .expect("cannot write BENCH_pr4.json");
    println!("\n[written] {}", path.display());
}
