//! Baseline → optimized performance trajectory for the hot analytical
//! path, emitting `results/BENCH_pr4.json` and (for the persistent-store
//! leg) `results/BENCH_pr5.json`.
//!
//! Four legs, each timed as best-of-`repeats` wall clock:
//!
//! 1. **fig8 sweep, cold** — the Figure 8 `N` grid through the
//!    seed-faithful nested kernels ([`gbd_core::baseline`]) and through
//!    the flat kernels ([`gbd_core::ms_approach::analyze`]). Outputs are
//!    asserted bit-identical point by point before any number is
//!    reported, so the speedup is for the *same* answer.
//! 2. **engine sweep, cold vs warm** — the timing-table grid through the
//!    engine twice on one `Engine` value: the cold pass pays geometry +
//!    stage + assembly, the warm pass is answered from the result layer.
//! 3. **skewed design-space sweep, 1 worker vs all cores** — a batch
//!    whose per-request cost varies by an order of magnitude (`M` swept),
//!    through `Engine::with_workers(1)` and `with_workers(cores)`. On a
//!    multi-core host this shows the work-stealing pool absorbing the
//!    skew; the honest `cores` count is recorded so a single-core
//!    container's ~1× scaling reads as expected, not as a regression.
//! 4. **fig8 sweep, cold boot vs store-warmed boot** — a fresh engine
//!    with an attached `gbd-store` log runs the fig8 grid (computing and
//!    spilling every stage), then a second fresh engine over the same
//!    store boots warm and reruns it. Responses are asserted bit-identical
//!    with zero warm-side misses before the ratio is reported.
//! 5. **sim grid, CSR + focus vs nested oracle** (`results/BENCH_pr9.json`)
//!    — per N in {10^4, 10^5, 10^6}, the per-trial field work of one
//!    simulated track (index build + the M Detectable-Region queries)
//!    through the retained nested-`Vec` oracle and through the focused CSR
//!    field. Query answers are asserted identical id-for-id before any
//!    ratio is reported; deployment ingest is excluded on both sides.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin perf_trajectory -- [--quick] [--sim-only] [--out dir]
//! ```

use gbd_bench::figure8_n_values;
use gbd_core::baseline;
use gbd_core::ms_approach::{self, AnalysisResult, MsOptions};
use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, Engine, EvalRequest};
use gbd_serve::Json;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    quick: bool,
    sim_only: bool,
    out_dir: PathBuf,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        sim_only: false,
        out_dir: PathBuf::from("results"),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--sim-only" => {
                opts.sim_only = true;
                i += 1;
            }
            "--out" => {
                opts.out_dir = PathBuf::from(args.get(i + 1).expect("--out needs a directory"));
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: perf_trajectory [--quick] [--sim-only] [--out dir] (got {other})"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Best-of-`repeats` wall-clock milliseconds of `work`, with the results
/// of the last run returned for identity checks.
fn time_best<T>(repeats: usize, mut work: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let value = work();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("repeats >= 1"))
}

fn assert_bit_identical(a: &AnalysisResult, b: &AnalysisResult, what: &str) {
    let (x, y) = (
        a.raw_distribution().as_slice(),
        b.raw_distribution().as_slice(),
    );
    assert_eq!(x.len(), y.len(), "{what}: support length");
    for (i, (p, q)) in x.iter().zip(y).enumerate() {
        assert_eq!(p.to_bits(), q.to_bits(), "{what}: index {i}: {p} vs {q}");
    }
    assert_eq!(
        a.predicted_accuracy().to_bits(),
        b.predicted_accuracy().to_bits(),
        "{what}: predicted accuracy"
    );
}

fn entry(name: &str, mode: &str, impl_name: &str, wall_ms: f64, points: usize) -> Json {
    Json::obj(vec![
        ("name".to_string(), Json::from(name)),
        ("mode".to_string(), Json::from(mode)),
        ("impl".to_string(), Json::from(impl_name)),
        ("wall_ms".to_string(), Json::Num(wall_ms)),
        ("points".to_string(), Json::from(points)),
    ])
}

/// Median of the samples (destructive: sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Leg 5: the per-trial field work of one simulated track — index build
/// plus the M Detectable-Region stadium queries — through the retained
/// nested-`Vec` oracle and through the focused CSR field, per N. Writes
/// `BENCH_pr9.json`.
fn run_sim_grid_leg(opts: &Options) {
    use gbd_field::field::{BoundaryPolicy, SensorField};
    use gbd_field::oracle::NestedGridField;
    use gbd_field::sensor::SensorId;
    use gbd_geometry::point::{Aabb, Point};
    use gbd_geometry::stadium::Stadium;
    use rand::Rng as _;
    use rand::SeedableRng as _;
    use std::hint::black_box;

    let n_values: &[usize] = if opts.quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let reps: usize = if opts.quick { 3 } else { 5 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let m_periods = 20usize;
    let rs = 1_000.0f64;
    let step = 600.0f64;
    println!(
        "leg 5: sim grid, CSR + focus vs nested oracle, N = {n_values:?}, median of {reps}"
    );

    let mut entries: Vec<Json> = Vec::new();
    let mut derived: Vec<(String, Json)> = Vec::new();
    let mut query_medians: Vec<(usize, f64)> = Vec::new();
    let mut last_speedup = 0.0f64;
    for &n in n_values {
        // Paper-density field: side scales with sqrt(N) so every N sees
        // the same 240-sensors-per-(32 km)^2 density the paper uses.
        let side = 32_000.0 * (n as f64 / 240.0).sqrt();
        let extent = Aabb::from_extent(side, side);
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(0x9E0 + n as u64);
        let mut positions: Vec<Point> = Vec::with_capacity(n);
        for _ in 0..n {
            positions.push(Point::new(
                rng.gen_range(extent.min.x..extent.max.x),
                rng.gen_range(extent.min.y..extent.max.y),
            ));
        }
        // Mid-field straight track: exactly the query shape one engine
        // trial issues (M consecutive stadium queries of radius Rs).
        let heading = 0.37f64;
        let (dx, dy) = (heading.cos(), heading.sin());
        let track_len = m_periods as f64 * step;
        let start = Point::new(
            side * 0.5 - dx * track_len * 0.5,
            side * 0.5 - dy * track_len * 0.5,
        );
        let drs: Vec<Stadium> = (1..=m_periods)
            .map(|p| {
                let a = Point::new(
                    start.x + dx * step * (p - 1) as f64,
                    start.y + dy * step * (p - 1) as f64,
                );
                let b = Point::new(
                    start.x + dx * step * p as f64,
                    start.y + dy * step * p as f64,
                );
                Stadium::new(a, b, rs)
            })
            .collect();
        let mut focus = drs[0].bounding_box();
        for dr in &drs[1..] {
            focus = focus.union(&dr.bounding_box());
        }

        // The CSR field ingests the positions once, untimed: deployment
        // ingest is excluded on both sides (the oracle receives its Vec
        // pre-cloned outside the timed region too). The timed CSR work —
        // refocus (corridor filter + index) plus the M queries — is what
        // a warm TrialScratch pays per trial.
        let mut field = SensorField::new(extent, positions.clone(), BoundaryPolicy::Torus);
        let mut hits: Vec<SensorId> = Vec::new();

        let mut oracle_samples = Vec::new();
        let mut csr_samples = Vec::new();
        let mut csr_query_samples = Vec::new();
        let mut oracle_ids: Vec<Vec<SensorId>> = Vec::new();
        for rep in 0..reps {
            // Interleaved A/B so drift hits both sides equally.
            let cloned = positions.clone();
            let t = Instant::now();
            let oracle = NestedGridField::new(extent, cloned, BoundaryPolicy::Torus);
            let mut ids: Vec<Vec<SensorId>> = Vec::with_capacity(m_periods);
            for dr in &drs {
                ids.push(oracle.query_stadium(dr));
            }
            drop(oracle);
            oracle_samples.push(t.elapsed().as_secs_f64() * 1e3);
            if rep == 0 {
                oracle_ids = ids;
            }

            let t = Instant::now();
            field.refocus(focus);
            let mut total = 0usize;
            for dr in &drs {
                field.query_stadium_into(dr, &mut hits);
                total += hits.len();
            }
            csr_samples.push(t.elapsed().as_secs_f64() * 1e3);
            black_box(total);

            // Queries alone (index already focused): the steady-state
            // per-period cost whose growth in N must be sub-linear.
            let t = Instant::now();
            let mut total = 0usize;
            for dr in &drs {
                field.query_stadium_into(dr, &mut hits);
                total += hits.len();
            }
            csr_query_samples.push(t.elapsed().as_secs_f64() * 1e3);
            black_box(total);
        }
        // Same answers, id for id, before any ratio is reported.
        let csr_ids: Vec<Vec<SensorId>> =
            drs.iter().map(|dr| field.query_stadium(dr)).collect();
        assert_eq!(
            oracle_ids, csr_ids,
            "CSR answers diverged from the oracle at N = {n}"
        );

        let oracle_ms = median(&mut oracle_samples);
        let csr_ms = median(&mut csr_samples);
        let query_ms = median(&mut csr_query_samples);
        let speedup = oracle_ms / csr_ms.max(1e-9);
        last_speedup = speedup;
        println!(
            "  N = {n:>9}: oracle {oracle_ms:8.2} ms, csr+focus {csr_ms:7.2} ms \
             ({speedup:5.1}x), queries alone {query_ms:6.3} ms"
        );
        let mode = format!("n{n}");
        entries.push(entry(
            "sim_grid",
            &mode,
            "oracle_nested",
            oracle_ms,
            m_periods,
        ));
        entries.push(entry("sim_grid", &mode, "csr_focus", csr_ms, m_periods));
        entries.push(entry(
            "sim_grid",
            &mode,
            "csr_query_only",
            query_ms,
            m_periods,
        ));
        derived.push((format!("sim_speedup_n{n}"), Json::Num(speedup)));
        query_medians.push((n, query_ms));
    }

    // Sub-linearity of the steady-state query path: N grows by
    // `n_ratio`, the per-track query time must grow by strictly less.
    let (n_lo, q_lo) = query_medians[0];
    let (n_hi, q_hi) = query_medians[query_medians.len() - 1];
    let n_ratio = n_hi as f64 / n_lo as f64;
    let query_growth = q_hi / q_lo.max(1e-9);
    println!(
        "  query growth {n_lo} -> {n_hi}: {query_growth:.2}x over a {n_ratio:.0}x N increase"
    );
    assert!(
        query_growth < n_ratio,
        "steady-state query cost grew super-linearly: {query_growth:.2}x over {n_ratio:.0}x"
    );
    if !opts.quick {
        assert!(
            last_speedup >= 10.0,
            "per-trial speedup at N = 10^6 fell below 10x: {last_speedup:.2}x"
        );
    }
    derived.push(("query_growth".to_string(), Json::Num(query_growth)));
    derived.push(("query_growth_n_ratio".to_string(), Json::Num(n_ratio)));
    derived.push(("bit_identical".to_string(), Json::Bool(true)));

    let report = Json::obj(vec![
        ("bench".to_string(), Json::from("pr9_sim_grid")),
        ("cores".to_string(), Json::from(cores)),
        ("quick".to_string(), Json::Bool(opts.quick)),
        ("repeats".to_string(), Json::from(reps)),
        ("entries".to_string(), Json::Arr(entries)),
        ("derived".to_string(), Json::obj(derived)),
    ]);
    std::fs::create_dir_all(&opts.out_dir).expect("cannot create output directory");
    let path = opts.out_dir.join("BENCH_pr9.json");
    std::fs::write(&path, format!("{}\n", report.render()))
        .expect("cannot write BENCH_pr9.json");
    println!("[written] {}", path.display());
}

fn main() {
    let opts = parse_args();
    if opts.sim_only {
        run_sim_grid_leg(&opts);
        return;
    }
    let repeats = if opts.quick { 2 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries: Vec<Json> = Vec::new();

    // Leg 1: fig8 sweep, baseline vs flat kernels, bit-identity asserted.
    // Quick mode keeps the full N grid: the speedup ratio grows with N
    // (the baseline's per-point cost does, the flat path's barely), so a
    // truncated grid would not be comparable to the committed full-run
    // ratios the --bench-smoke gate checks against. The whole leg is
    // milliseconds either way; --quick saves time elsewhere.
    let base = SystemParams::paper_defaults().with_speed(10.0);
    let n_values = figure8_n_values();
    let grid: Vec<SystemParams> = n_values.iter().map(|&n| base.with_n_sensors(n)).collect();
    let ms = MsOptions::default();
    println!(
        "leg 1: fig8 sweep, {} points, best of {repeats}",
        grid.len()
    );
    let (baseline_ms, baseline_results) = time_best(repeats, || {
        grid.iter()
            .map(|p| baseline::analyze_baseline(p, &ms).expect("fig8 baseline"))
            .collect::<Vec<_>>()
    });
    let (optimized_ms, optimized_results) = time_best(repeats, || {
        grid.iter()
            .map(|p| ms_approach::analyze(p, &ms).expect("fig8 optimized"))
            .collect::<Vec<_>>()
    });
    for (i, (a, b)) in baseline_results.iter().zip(&optimized_results).enumerate() {
        assert_bit_identical(a, b, &format!("fig8 N={}", n_values[i]));
    }
    let fig8_speedup = baseline_ms / optimized_ms.max(1e-9);
    println!(
        "  baseline {baseline_ms:.2} ms, optimized {optimized_ms:.2} ms ({fig8_speedup:.2}x)"
    );
    entries.push(entry(
        "fig8_sweep",
        "cold",
        "baseline",
        baseline_ms,
        grid.len(),
    ));
    entries.push(entry(
        "fig8_sweep",
        "cold",
        "optimized",
        optimized_ms,
        grid.len(),
    ));

    // Leg 2: engine cold vs warm over the timing-table grid.
    let mut requests: Vec<EvalRequest> = Vec::new();
    for &speed in &[4.0, 10.0] {
        for &n in &n_values {
            requests.push(EvalRequest::new(
                base.with_speed(speed).with_n_sensors(n),
                BackendSpec::ms_default(),
            ));
        }
    }
    println!(
        "leg 2: engine sweep, {} requests, cold then warm",
        requests.len()
    );
    let engine = Engine::new();
    let t = Instant::now();
    let cold = engine.evaluate_batch(&requests);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let warm = engine.evaluate_batch(&requests);
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.outcome, w.outcome, "warm response diverged from cold");
    }
    let warm_speedup = cold_ms / warm_ms.max(1e-9);
    println!("  cold {cold_ms:.2} ms, warm {warm_ms:.2} ms ({warm_speedup:.1}x)");
    entries.push(entry(
        "engine_sweep",
        "cold",
        "optimized",
        cold_ms,
        requests.len(),
    ));
    entries.push(entry(
        "engine_sweep",
        "warm",
        "optimized",
        warm_ms,
        requests.len(),
    ));

    // Leg 3: skewed sweep (M varies 4..28, so per-request cost is skewed)
    // through 1 worker vs all cores. Bypassing the cache would change
    // values never — but here each request is distinct anyway, so the
    // batch is all misses and the measurement is pure compute + stealing.
    let m_values: &[usize] = if opts.quick {
        &[4, 12, 20]
    } else {
        &[4, 8, 12, 16, 20, 24, 28]
    };
    let skewed: Vec<EvalRequest> = m_values
        .iter()
        .flat_map(|&m| {
            n_values.iter().map(move |&n| {
                EvalRequest::new(
                    base.with_m_periods(m).with_n_sensors(n),
                    BackendSpec::ms_default(),
                )
            })
        })
        .collect();
    println!(
        "leg 3: skewed design-space sweep, {} requests, 1 vs {cores} worker(s)",
        skewed.len()
    );
    let (serial_ms, serial) =
        time_best(repeats, || Engine::with_workers(1).evaluate_batch(&skewed));
    let (parallel_ms, parallel) = time_best(repeats, || {
        Engine::with_workers(cores).evaluate_batch(&skewed)
    });
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.outcome, b.outcome, "worker count changed a response");
    }
    let scaling = serial_ms / parallel_ms.max(1e-9);
    println!(
        "  workers=1 {serial_ms:.2} ms, workers={cores} {parallel_ms:.2} ms ({scaling:.2}x)"
    );
    entries.push(entry(
        "design_space_skewed",
        "cold",
        "workers_1",
        serial_ms,
        skewed.len(),
    ));
    entries.push(entry(
        "design_space_skewed",
        "cold",
        &format!("workers_{cores}"),
        parallel_ms,
        skewed.len(),
    ));

    // Leg 4: cold boot vs store-warmed boot over the fig8 grid. Timing
    // includes `with_store` itself, so the warm number honestly pays for
    // reading and decoding the log.
    std::fs::create_dir_all(&opts.out_dir).expect("cannot create output directory");
    let store_path = opts.out_dir.join("warmstart.gbdstore");
    let _ = std::fs::remove_file(&store_path);
    let fig8_requests: Vec<EvalRequest> = n_values
        .iter()
        .map(|&n| EvalRequest::new(base.with_n_sensors(n), BackendSpec::ms_default()))
        .collect();
    println!(
        "leg 4: fig8 sweep, {} requests, cold boot vs store-warmed boot",
        fig8_requests.len()
    );
    let t = Instant::now();
    let spilling = Engine::new()
        .with_store(&store_path)
        .expect("open fresh store");
    let store_cold = spilling.evaluate_batch(&fig8_requests);
    let store_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    spilling
        .snapshot_store()
        .expect("store attached")
        .expect("snapshot store");
    drop(spilling);
    let t = Instant::now();
    let warmed = Engine::new().with_store(&store_path).expect("reopen store");
    let store_warm = warmed.evaluate_batch(&fig8_requests);
    let store_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut warm_misses = 0;
    for (c, w) in store_cold.iter().zip(&store_warm) {
        assert_eq!(c.outcome, w.outcome, "store-warmed response diverged");
        warm_misses += w.cache.misses;
    }
    assert_eq!(warm_misses, 0, "store-warmed sweep recomputed a stage");
    let store_loads = warmed.cache_stats().store_loads;
    assert!(store_loads > 0, "warm boot loaded nothing from the store");
    let store_warm_ratio = store_cold_ms / store_warm_ms.max(1e-9);
    println!(
        "  cold boot {store_cold_ms:.2} ms, warmed boot {store_warm_ms:.2} ms \
         ({store_warm_ratio:.1}x, {store_loads} records loaded)"
    );
    let store_entries = vec![
        entry(
            "fig8_store_boot",
            "cold",
            "store_spill",
            store_cold_ms,
            fig8_requests.len(),
        ),
        entry(
            "fig8_store_boot",
            "warm",
            "store_loaded",
            store_warm_ms,
            fig8_requests.len(),
        ),
    ];
    let _ = std::fs::remove_file(&store_path);

    let store_report = Json::obj(vec![
        ("bench".to_string(), Json::from("pr5_store_warmstart")),
        ("cores".to_string(), Json::from(cores)),
        ("quick".to_string(), Json::Bool(opts.quick)),
        ("entries".to_string(), Json::Arr(store_entries)),
        (
            "derived".to_string(),
            Json::obj(vec![
                ("store_warm_ratio".to_string(), Json::Num(store_warm_ratio)),
                ("store_loads".to_string(), Json::from(store_loads)),
                ("bit_identical".to_string(), Json::Bool(true)),
            ]),
        ),
    ]);
    let pr5_path = opts.out_dir.join("BENCH_pr5.json");
    std::fs::write(&pr5_path, format!("{}\n", store_report.render()))
        .expect("cannot write BENCH_pr5.json");
    println!("[written] {}", pr5_path.display());

    let report = Json::obj(vec![
        ("bench".to_string(), Json::from("pr4_perf_trajectory")),
        ("cores".to_string(), Json::from(cores)),
        ("quick".to_string(), Json::Bool(opts.quick)),
        ("repeats".to_string(), Json::from(repeats)),
        ("entries".to_string(), Json::Arr(entries)),
        (
            "derived".to_string(),
            Json::obj(vec![
                ("fig8_cold_speedup".to_string(), Json::Num(fig8_speedup)),
                ("engine_warm_speedup".to_string(), Json::Num(warm_speedup)),
                ("thread_scaling".to_string(), Json::Num(scaling)),
                ("bit_identical".to_string(), Json::Bool(true)),
            ]),
        ),
    ]);
    std::fs::create_dir_all(&opts.out_dir).expect("cannot create output directory");
    let path = opts.out_dir.join("BENCH_pr4.json");
    std::fs::write(&path, format!("{}\n", report.render()))
        .expect("cannot write BENCH_pr4.json");
    println!("\n[written] {}", path.display());

    run_sim_grid_leg(&opts);
}
