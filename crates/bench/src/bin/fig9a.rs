//! Figure 9(a): detection probability vs number of deployed nodes,
//! analysis (M-S-approach, normalized) against simulation, for a target
//! moving in a straight line at V = 4 and 10 m/s.
//!
//! The whole grid — both speeds, analysis and simulation — is submitted as
//! one batch to the evaluation engine, which shares the NEDR geometry and
//! Body-stage distributions across the N sweep.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin fig9a            # 10 000 trials/point
//! cargo run --release -p gbd-bench --bin fig9a -- --trials 2000
//! ```

use gbd_bench::{f, figure9_n_values, Csv, ExpOptions};
use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, Engine, EvalRequest, SimulationSpec};

fn main() {
    let opts = ExpOptions::from_args(10_000);
    println!(
        "Figure 9(a) — detection probability, straight-line target ({} trials/point)\n",
        opts.trials
    );
    println!("   N  |  V  | analysis | simulation | 95% CI          | |err|");
    println!(" -----+-----+----------+------------+-----------------+------");

    let spec = SimulationSpec {
        trials: opts.trials,
        seed: opts.seed,
        ..SimulationSpec::default()
    };
    let mut points = Vec::new();
    let mut requests = Vec::new();
    for v in [4.0, 10.0] {
        for n in figure9_n_values() {
            let params = SystemParams::paper_defaults()
                .with_n_sensors(n)
                .with_speed(v);
            points.push((n, v));
            requests.push(EvalRequest::new(params, BackendSpec::ms_default()));
            requests.push(EvalRequest::new(params, BackendSpec::Simulation(spec)));
        }
    }
    let engine = Engine::new();
    let responses = engine.evaluate_batch(&requests);

    let mut csv = Csv::create(
        &opts.out_dir,
        "fig9a.csv",
        &[
            "n",
            "v",
            "analysis",
            "simulation",
            "ci_lo",
            "ci_hi",
            "abs_err",
        ],
    );
    let mut max_err = 0.0f64;
    for (i, &(n, v)) in points.iter().enumerate() {
        let ana = responses[2 * i]
            .detection_probability()
            .expect("valid paper params");
        let outcome = responses[2 * i + 1].outcome.as_ref().expect("valid config");
        let sim = outcome.simulation().expect("simulation backend");
        let err = (ana - sim.detection_probability).abs();
        max_err = max_err.max(err);
        println!(
            "  {n:3} | {v:3} |  {ana:.4}  |   {:.4}   | [{:.4},{:.4}] | {err:.4}",
            sim.detection_probability, sim.confidence.lo, sim.confidence.hi
        );
        csv.row(&[
            n.to_string(),
            v.to_string(),
            f(ana),
            f(sim.detection_probability),
            f(sim.confidence.lo),
            f(sim.confidence.hi),
            f(err),
        ]);
    }
    csv.finish();
    let stats = engine.cache_stats();
    println!("\nmax |analysis − simulation| = {max_err:.4}");
    println!(
        "engine cache: {} hits, {} misses across {} requests",
        stats.hits,
        stats.misses,
        requests.len()
    );
    println!("Paper shape: curves rise with N; V = 10 m/s above V = 4 m/s; analysis");
    println!("coincides with simulation (the paper calls it 'extremely accurate').");
}
