//! Figure 9(b): the same comparison as Figure 9(a) but with the analysis
//! **not normalized** (Eq (13) skipped): the truncated analysis visibly
//! undershoots, and the error grows with N and V, approaching the Eq (14)
//! bound (≈ 2–4 % at N = 240, V = 10 m/s).
//!
//! ```text
//! cargo run --release -p gbd-bench --bin fig9b -- --trials 10000
//! ```

use gbd_bench::{f, figure9_n_values, Csv, ExpOptions};
use gbd_core::ms_approach::{analyze, MsOptions};
use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::runner::run;

fn main() {
    let opts = ExpOptions::from_args(10_000);
    println!(
        "Figure 9(b) — unnormalized analysis vs simulation ({} trials/point)\n",
        opts.trials
    );
    println!("   N  |  V  | raw analysis | simulation | undershoot | Eq(14) mass deficit");
    println!(" -----+-----+--------------+------------+------------+--------------------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "fig9b.csv",
        &[
            "n",
            "v",
            "analysis_raw",
            "simulation",
            "undershoot",
            "mass_deficit",
        ],
    );
    for v in [4.0, 10.0] {
        for n in figure9_n_values() {
            let params = SystemParams::paper_defaults()
                .with_n_sensors(n)
                .with_speed(v);
            let r = analyze(&params, &MsOptions::default()).expect("valid paper params");
            let raw = r.detection_probability_unnormalized(params.k());
            let sim = run(&SimConfig::new(params)
                .with_trials(opts.trials)
                .with_seed(opts.seed));
            let under = sim.detection_probability - raw;
            let deficit = 1.0 - r.retained_mass();
            println!(
                "  {n:3} | {v:3} |    {raw:.4}    |   {:.4}   |  {under:+.4}   |  {deficit:.4}",
                sim.detection_probability
            );
            csv.row(&[
                n.to_string(),
                v.to_string(),
                f(raw),
                f(sim.detection_probability),
                f(under),
                f(deficit),
            ]);
        }
    }
    csv.finish();
    println!("\nPaper shape: undershoot grows with N and V (more truncated mass);");
    println!("the Eq (14) mass deficit upper-bounds it, matching §4's discussion.");
}
