//! Figure 9(b): the same comparison as Figure 9(a) but with the analysis
//! **not normalized** (Eq (13) skipped): the truncated analysis visibly
//! undershoots, and the error grows with N and V, approaching the Eq (14)
//! bound (≈ 2–4 % at N = 240, V = 10 m/s).
//!
//! All points go through the evaluation engine as one batch; the raw
//! (unnormalized) tail and the retained mass are read off the returned
//! report distributions.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin fig9b -- --trials 10000
//! ```

use gbd_bench::{f, figure9_n_values, Csv, ExpOptions};
use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, Engine, EvalRequest, SimulationSpec};

fn main() {
    let opts = ExpOptions::from_args(10_000);
    println!(
        "Figure 9(b) — unnormalized analysis vs simulation ({} trials/point)\n",
        opts.trials
    );
    println!("   N  |  V  | raw analysis | simulation | undershoot | Eq(14) mass deficit");
    println!(" -----+-----+--------------+------------+------------+--------------------");

    let spec = SimulationSpec {
        trials: opts.trials,
        seed: opts.seed,
        ..SimulationSpec::default()
    };
    let mut points = Vec::new();
    let mut requests = Vec::new();
    for v in [4.0, 10.0] {
        for n in figure9_n_values() {
            let params = SystemParams::paper_defaults()
                .with_n_sensors(n)
                .with_speed(v);
            points.push((n, v, params.k()));
            requests.push(EvalRequest::new(params, BackendSpec::ms_default()));
            requests.push(EvalRequest::new(params, BackendSpec::Simulation(spec)));
        }
    }
    let engine = Engine::new();
    let responses = engine.evaluate_batch(&requests);

    let mut csv = Csv::create(
        &opts.out_dir,
        "fig9b.csv",
        &[
            "n",
            "v",
            "analysis_raw",
            "simulation",
            "undershoot",
            "mass_deficit",
        ],
    );
    for (i, &(n, v, k)) in points.iter().enumerate() {
        let outcome = responses[2 * i]
            .outcome
            .as_ref()
            .expect("valid paper params");
        let dist = outcome.analysis().expect("analysis backend");
        let raw = dist.detection_probability_unnormalized(k);
        let sim_outcome = responses[2 * i + 1].outcome.as_ref().expect("valid config");
        let sim = sim_outcome.simulation().expect("simulation backend");
        let under = sim.detection_probability - raw;
        let deficit = 1.0 - dist.retained_mass();
        println!(
            "  {n:3} | {v:3} |    {raw:.4}    |   {:.4}   |  {under:+.4}   |  {deficit:.4}",
            sim.detection_probability
        );
        csv.row(&[
            n.to_string(),
            v.to_string(),
            f(raw),
            f(sim.detection_probability),
            f(under),
            f(deficit),
        ]);
    }
    csv.finish();
    println!("\nPaper shape: undershoot grows with N and V (more truncated mass);");
    println!("the Eq (14) mass deficit upper-bounds it, matching §4's discussion.");
}
