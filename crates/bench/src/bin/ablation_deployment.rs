//! Ablation: how sensitive is the analysis to the uniform-deployment
//! assumption (§2)?
//!
//! The analytical model assumes i.i.d. uniform sensor positions. Real
//! deployments are often *more regular* (planned drops). This experiment
//! simulates grid and jittered-grid deployments against the same analysis.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin ablation_deployment -- --trials 4000
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::ms_approach::{analyze, MsOptions};
use gbd_core::params::SystemParams;
use gbd_sim::config::{DeploymentSpec, SimConfig};
use gbd_sim::runner::run;

fn main() {
    let opts = ExpOptions::from_args(4_000);
    println!(
        "Deployment ablation — analysis assumes uniform random ({} trials)\n",
        opts.trials
    );
    println!("   N  | analysis | sim uniform | sim grid | sim jittered(0.5)");
    println!(" -----+----------+-------------+----------+------------------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "ablation_deployment.csv",
        &["n", "analysis", "uniform", "grid", "jittered"],
    );
    for n in [60usize, 120, 180, 240] {
        let params = SystemParams::paper_defaults().with_n_sensors(n);
        let ana = analyze(&params, &MsOptions::default())
            .unwrap()
            .detection_probability(5);
        let base = SimConfig::new(params)
            .with_trials(opts.trials)
            .with_seed(opts.seed);
        let uniform = run(&base.clone());
        let grid = run(&base
            .clone()
            .with_deployment(DeploymentSpec::Grid { jitter: 0.0 }));
        let jittered = run(&base
            .clone()
            .with_deployment(DeploymentSpec::Grid { jitter: 0.5 }));
        println!(
            "  {n:3} |  {ana:.4}  |   {:.4}    |  {:.4}  |      {:.4}",
            uniform.detection_probability,
            grid.detection_probability,
            jittered.detection_probability
        );
        csv.row(&[
            n.to_string(),
            f(ana),
            f(uniform.detection_probability),
            f(grid.detection_probability),
            f(jittered.detection_probability),
        ]);
    }
    csv.finish();
    println!("\nShape: a regular grid spreads coverage more evenly than random");
    println!("placement — no clumps, no double-covered strips — which *changes* the");
    println!("detection probability relative to the uniform-deployment analysis");
    println!("(typically raising it at low N where random voids dominate). The");
    println!("uniform assumption is load-bearing: apply the analysis to planned");
    println!("deployments with care.");
}
