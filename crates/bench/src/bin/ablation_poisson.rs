//! Ablation: binomial (fixed-N) vs Poisson-field sensor model.
//!
//! Under a Poisson point process the M-S chain's independence assumption
//! is exact and no truncation caps are needed; under the paper's fixed-N
//! binomial model the chain approximates. How much does the choice matter
//! across the evaluated densities?
//!
//! ```text
//! cargo run --release -p gbd-bench --bin ablation_poisson
//! ```

use gbd_bench::{f, figure9_n_values, Csv, ExpOptions};
use gbd_core::exact;
use gbd_core::ms_approach::{self, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::poisson_model;

fn main() {
    let opts = ExpOptions::from_args(0);
    println!("Binomial vs Poisson sensor-count model (V = 10 m/s, k = 5)\n");
    println!("   N  | binomial M-S | Poisson M-S | exact (fixed N) | poisson − exact");
    println!(" -----+--------------+-------------+-----------------+----------------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "ablation_poisson.csv",
        &["n", "binomial_ms", "poisson_ms", "exact", "gap"],
    );
    for n in figure9_n_values() {
        let params = SystemParams::paper_defaults().with_n_sensors(n);
        let binom = ms_approach::analyze(&params, &MsOptions::default())
            .unwrap()
            .detection_probability(5);
        let poisson = poisson_model::analyze(&params)
            .unwrap()
            .detection_probability(5);
        let truth = exact::detection_probability(&params, 5);
        let gap = poisson - truth;
        println!(
            "  {n:3} |    {binom:.4}    |   {poisson:.4}    |     {truth:.4}      |    {gap:+.4}"
        );
        csv.row(&[n.to_string(), f(binom), f(poisson), f(truth), f(gap)]);
    }
    csv.finish();
    println!("\nShape: all three agree to a few parts in a thousand at every density");
    println!("the paper evaluates — the binomial/Poisson choice is immaterial in the");
    println!("sparse regime, so the simpler Poisson field (no g/gh caps, exact");
    println!("independence) is a legitimate modeling shortcut.");
}
