//! §4 premise check: "6-hop end-to-end communication can be easily
//! finished within a single sensing period". Routes every sensor to the
//! base station over the unit-disk graph (GF with GPSR perimeter
//! fallback) and checks latency against the 60 s deadline, for both radio
//! and undersea-acoustic link models, across densities and comm ranges.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin comm_check
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::params::SystemParams;
use gbd_field::deployment::{Deployer, UniformRandom};
use gbd_geometry::point::{Aabb, Point};
use gbd_net::graph::UnitDiskGraph;
use gbd_net::latency::LatencyModel;
use gbd_net::mac::{simulate_burst, MacConfig};
use gbd_sim::comm_check::check_deployment;
use gbd_stats::rng::rng_stream;
use rand::Rng as _;

fn main() {
    let opts = ExpOptions::from_args(0);
    println!("Communication premise — GF/GPSR to the base station, 60 s deadline\n");
    println!("   N  | range | link     | delivered | greedy-only | mean hops | max lat (s) | meet deadline");
    println!(" -----+-------+----------+-----------+-------------+-----------+-------------+--------------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "comm_check.csv",
        &[
            "n",
            "range",
            "link",
            "delivered",
            "greedy",
            "mean_hops",
            "max_latency_s",
            "deadline_frac",
        ],
    );
    for n in [60usize, 120, 240] {
        for range in [4_000.0, 6_000.0] {
            for (name, model) in [
                ("radio", LatencyModel::long_range_radio()),
                ("acoustic", LatencyModel::undersea_acoustic()),
            ] {
                let params = SystemParams::paper_defaults().with_n_sensors(n);
                let r = check_deployment(&params, range, &model, opts.seed);
                println!(
                    "  {n:3} | {range:5.0} | {name:8} | {:4}/{:3}  |    {:4}     |   {:5.2}   |   {:7.2}   |   {:5.1} %",
                    r.delivered,
                    r.sensors,
                    r.delivered_greedy,
                    r.hops.mean(),
                    r.latency_s.max(),
                    100.0 * r.deadline_fraction()
                );
                csv.row(&[
                    n.to_string(),
                    range.to_string(),
                    name.to_string(),
                    r.delivered.to_string(),
                    r.delivered_greedy.to_string(),
                    f(r.hops.mean()),
                    f(r.latency_s.max()),
                    f(r.deadline_fraction()),
                ]);
            }
        }
    }
    csv.finish();

    // Burst stress: k near-simultaneous reports under a slotted MAC.
    println!("\nBurst stress — k = 5 simultaneous reports, slotted acoustic MAC (1 s slots):");
    println!("   N  | delivered | worst latency (s) | within 60 s | collisions");
    let mut csv2 = Csv::create(
        &opts.out_dir,
        "comm_burst.csv",
        &[
            "n",
            "delivery_ratio",
            "max_latency_s",
            "deadline_frac",
            "collisions",
        ],
    );
    for n in [60usize, 120, 240] {
        let params = SystemParams::paper_defaults().with_n_sensors(n);
        let extent = Aabb::from_extent(params.field_width(), params.field_height());
        let mut rng = rng_stream(opts.seed, n as u64);
        let mut positions = UniformRandom.deploy(n, &extent, &mut rng);
        let base = Point::new(16_000.0, 16_000.0);
        positions.push(base);
        let graph = UnitDiskGraph::new(positions.clone(), 6_000.0);
        let dst = graph.len() - 1;
        // Five sensors nearest a random point report together.
        let hot = Point::new(rng.gen_range(0.0..32_000.0), rng.gen_range(0.0..32_000.0));
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            positions[a]
                .distance(hot)
                .total_cmp(&positions[b].distance(hot))
        });
        let sources: Vec<usize> = idx[..5.min(n)].to_vec();
        let out = simulate_burst(&graph, &sources, dst, &MacConfig::acoustic(), &mut rng);
        println!(
            "  {n:3} |   {:4.0} %   |      {:6.1}       |   {:5.1} %   |   {:4}",
            100.0 * out.delivery_ratio(),
            out.max_latency_s().unwrap_or(f64::NAN),
            100.0 * out.deadline_fraction(60.0),
            out.collisions
        );
        csv2.row(&[
            n.to_string(),
            f(out.delivery_ratio()),
            f(out.max_latency_s().unwrap_or(f64::NAN)),
            f(out.deadline_fraction(60.0)),
            out.collisions.to_string(),
        ]);
    }
    csv2.finish();
    println!("\nShape: at the paper's 6 km comm range the network is connected and");
    println!("every delivered report meets the one-minute deadline even on acoustic");
    println!("links — the premise behind ignoring the communication stack holds.");
    println!("At 4 km and low density, delivery fails for part of the field: the");
    println!("'communication coverage is available' assumption is not free.");
}
