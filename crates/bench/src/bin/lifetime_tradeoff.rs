//! Extension: the detection-vs-lifetime frontier of duty-cycled sensing.
//!
//! The §5 related work argues that "sacrificing a little coverage can
//! substantially increase network lifetime". With duty cycling equivalent
//! to scaling `Pd` (validated in `tests/extensions.rs`) and an energy
//! model for acoustic nodes, the paper's own analytical machinery computes
//! that frontier directly.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin lifetime_tradeoff
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_net::latency::LatencyModel;
use gbd_sim::comm_check::check_deployment;
use gbd_sim::energy::{duty_cycle_tradeoff, EnergyModel};

fn main() {
    let opts = ExpOptions::from_args(0);
    let energy = EnergyModel::undersea_acoustic();

    println!("Duty-cycled sensing: detection probability vs node lifetime");
    println!("(acoustic energy model: sense 1 J/period, sleep 0.01 J, 200 kJ battery)\n");

    let mut csv = Csv::create(
        &opts.out_dir,
        "lifetime_tradeoff.csv",
        &["n", "duty", "p_detect", "lifetime_days"],
    );
    for n in [150usize, 240] {
        let params = SystemParams::paper_defaults().with_n_sensors(n);
        // Mean hop count from an actual routed deployment.
        let comm = check_deployment(&params, 6_000.0, &LatencyModel::undersea_acoustic(), 11);
        let mean_hops = comm.hops.mean();
        println!("N = {n} (mean route length {mean_hops:.1} hops):");
        println!("   duty | P(detect) | lifetime (days) | vs always-on");
        let duties = [0.2, 0.4, 0.6, 0.8, 1.0];
        let pts =
            duty_cycle_tradeoff(&params, &energy, mean_hops, &duties, &MsOptions::default())
                .expect("valid tradeoff inputs");
        let full_life = pts.last().expect("nonempty").lifetime_periods;
        for pt in &pts {
            let days = pt.lifetime_periods * params.period_s() / 86_400.0;
            println!(
                "   {:.1}  |   {:.3}   |     {days:7.1}     |   x{:.2}",
                pt.duty,
                pt.detection_probability,
                pt.lifetime_periods / full_life
            );
            csv.row(&[
                n.to_string(),
                f(pt.duty),
                f(pt.detection_probability),
                f(days),
            ]);
        }
        println!();
    }
    csv.finish();
    println!("Shape: at N = 240, cutting duty to 60% keeps P(detect) within a few");
    println!("points of the always-on fleet while extending lifetime ~1.6x — the");
    println!("related-work claim, now derivable from this paper's model instead of");
    println!("per-protocol simulation. At lower density the same cut costs far more");
    println!("detection: density buys the right to sleep.");
}
