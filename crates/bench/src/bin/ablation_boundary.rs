//! Ablation: how large is the border effect the analysis ignores?
//!
//! The analytical model implicitly assumes the target's Aggregate Region
//! sees full sensor density everywhere. A torus-wrapped simulation
//! realizes exactly that; a bounded field loses the part of the ARegion
//! that sticks out past the border. This experiment measures the gap.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin ablation_boundary -- --trials 4000
//! ```

use gbd_bench::{f, figure9_n_values, Csv, ExpOptions};
use gbd_core::ms_approach::{analyze, MsOptions};
use gbd_core::params::SystemParams;
use gbd_sim::config::{BoundaryPolicy, SimConfig};
use gbd_sim::runner::run;

fn main() {
    let opts = ExpOptions::from_args(4_000);
    println!(
        "Boundary ablation — torus (analysis assumption) vs bounded field ({} trials)\n",
        opts.trials
    );
    println!("   N  |  V  | analysis | sim torus | sim bounded | border loss");
    println!(" -----+-----+----------+-----------+-------------+------------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "ablation_boundary.csv",
        &[
            "n",
            "v",
            "analysis",
            "sim_torus",
            "sim_bounded",
            "border_loss",
        ],
    );
    for v in [4.0, 10.0] {
        for n in figure9_n_values().into_iter().step_by(2) {
            let params = SystemParams::paper_defaults()
                .with_n_sensors(n)
                .with_speed(v);
            let ana = analyze(&params, &MsOptions::default())
                .unwrap()
                .detection_probability(params.k());
            let torus = run(&SimConfig::new(params)
                .with_trials(opts.trials)
                .with_seed(opts.seed));
            let bounded = run(&SimConfig::new(params)
                .with_trials(opts.trials)
                .with_seed(opts.seed)
                .with_boundary(BoundaryPolicy::Bounded));
            let loss = torus.detection_probability - bounded.detection_probability;
            println!(
                "  {n:3} | {v:3} |  {ana:.4}  |  {:.4}   |   {:.4}    |   {loss:+.4}",
                torus.detection_probability, bounded.detection_probability
            );
            csv.row(&[
                n.to_string(),
                v.to_string(),
                f(ana),
                f(torus.detection_probability),
                f(bounded.detection_probability),
                f(loss),
            ]);
        }
    }
    csv.finish();
    println!("\nThe border effect grows with V (longer tracks leave the field more");
    println!("often). The paper's simulator evidently avoids it (its analysis matches");
    println!("simulation at V = 10, N = 240 to ~1%); our torus policy reproduces that,");
    println!("and the bounded policy shows what a finite field would actually do.");
}
