//! §3.4.5 — the runtime claim: the S-approach (Algorithm 1 enumeration)
//! explodes exponentially in `G` ("many days"), while the M-S-approach
//! finishes "within one minute". This binary measures both on the paper's
//! parameters, sweeping `G` until the per-step growth factor makes the
//! trend unambiguous, then extrapolates to the `G` that 99 % accuracy
//! would require (from Figure 8).
//!
//! ```text
//! cargo run --release -p gbd-bench --bin timing_table
//! ```

use gbd_bench::{Csv, ExpOptions};
use gbd_core::accuracy::required_caps;
use gbd_core::ms_approach::{self, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::s_approach::{self, SOptions};
use std::time::Instant;

fn main() {
    let opts = ExpOptions::from_args(0);
    let params = SystemParams::paper_defaults();
    let caps = required_caps(&params, 0.99);

    println!("§3.4.5 runtime comparison (paper params: N = 240, M = 20, V = 10 m/s)\n");

    // M-S-approach at the paper's caps and at the 99%-accuracy caps.
    let t = Instant::now();
    let r = ms_approach::analyze(&params, &MsOptions::default()).unwrap();
    let ms_default = t.elapsed();
    let t = Instant::now();
    let r99 = ms_approach::analyze(
        &params,
        &MsOptions {
            g: caps.g,
            gh: caps.gh,
        },
    )
    .unwrap();
    let ms_99 = t.elapsed();
    println!(
        "M-S-approach  g=gh=3          : {:>12.3?}  (P = {:.4})",
        ms_default,
        r.detection_probability(5)
    );
    println!(
        "M-S-approach  g={}, gh={} (99%) : {:>12.3?}  (P = {:.4})",
        caps.g,
        caps.gh,
        ms_99,
        r99.detection_probability(5)
    );

    // S-approach: fast convolution path (our factorization) for reference.
    let t = Instant::now();
    let s_fast = s_approach::analyze(
        &params,
        &SOptions {
            cap_sensors: caps.g_s_approach,
        },
    )
    .unwrap();
    let s_fast_t = t.elapsed();
    println!(
        "S-approach    G={} (factorized): {:>12.3?}  (P = {:.4})",
        caps.g_s_approach,
        s_fast_t,
        s_fast.detection_probability(5)
    );

    // S-approach, paper-faithful Algorithm 1: measure G = 1..=4 and fit the
    // growth factor.
    println!("\nS-approach, Algorithm 1 enumeration (the paper's implementation):");
    println!("   G | time          | growth");
    let mut csv = Csv::create(&opts.out_dir, "timing.csv", &["g", "seconds"]);
    let mut times = Vec::new();
    let max_g = 6usize;
    for g in 1..=max_g {
        let t = Instant::now();
        let _ = s_approach::analyze_enumeration(&params, &SOptions { cap_sensors: g }).unwrap();
        let dt = t.elapsed().as_secs_f64();
        let growth = times
            .last()
            .map(|&prev: &f64| format!("x{:.0}", dt / prev))
            .unwrap_or_else(|| "-".into());
        println!("   {g} | {dt:>12.6} s | {growth}");
        csv.row(&[g.to_string(), format!("{dt:.6}")]);
        times.push(dt);
    }
    // Extrapolate to the 99%-accuracy G from the last (least noisy) step.
    let factor = times[max_g - 1] / times[max_g - 2];
    let mut projected = times[max_g - 1];
    for _ in max_g..caps.g_s_approach {
        projected *= factor;
    }
    csv.finish();
    println!(
        "\nper-step growth factor ≈ {factor:.0}; projected time at G = {}:",
        caps.g_s_approach
    );
    let days = projected / 86_400.0;
    println!("  ≈ {projected:.0} s ≈ {days:.1} days  (paper: 'many days')");
    println!(
        "\nSpeedup of the M-S-approach at matched 99% accuracy: ~{:.0e}x",
        projected / ms_99.as_secs_f64()
    );
}
