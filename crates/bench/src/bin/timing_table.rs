//! §3.4.5 — the runtime claim: the S-approach (Algorithm 1 enumeration)
//! explodes exponentially in `G` ("many days"), while the M-S-approach
//! finishes "within one minute". This binary measures both on the paper's
//! parameters, sweeping `G` until the per-step growth factor makes the
//! trend unambiguous, then extrapolates to the `G` that 99 % accuracy
//! would require (from Figure 8).
//!
//! ```text
//! cargo run --release -p gbd-bench --bin timing_table
//! ```

use gbd_bench::{figure9_n_values, Csv, ExpOptions};
use gbd_core::accuracy::required_caps;
use gbd_core::ms_approach::{self, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::s_approach::{self, SOptions};
use gbd_engine::{BackendSpec, Engine, EvalOptions, EvalRequest};
use std::time::{Duration, Instant};

fn main() {
    let opts = ExpOptions::from_args(0);
    let params = SystemParams::paper_defaults();
    let caps = required_caps(&params, 0.99);

    println!("§3.4.5 runtime comparison (paper params: N = 240, M = 20, V = 10 m/s)\n");

    // M-S-approach at the paper's caps and at the 99%-accuracy caps.
    let t = Instant::now();
    let r = ms_approach::analyze(&params, &MsOptions::default()).unwrap();
    let ms_default = t.elapsed();
    let t = Instant::now();
    let r99 = ms_approach::analyze(
        &params,
        &MsOptions {
            g: caps.g,
            gh: caps.gh,
            eps: 0.0,
        },
    )
    .unwrap();
    let ms_99 = t.elapsed();
    println!(
        "M-S-approach  g=gh=3          : {:>12.3?}  (P = {:.4})",
        ms_default,
        r.detection_probability(5)
    );
    println!(
        "M-S-approach  g={}, gh={} (99%) : {:>12.3?}  (P = {:.4})",
        caps.g,
        caps.gh,
        ms_99,
        r99.detection_probability(5)
    );

    // S-approach: fast convolution path (our factorization) for reference.
    let t = Instant::now();
    let s_fast = s_approach::analyze(
        &params,
        &SOptions {
            cap_sensors: caps.g_s_approach,
        },
    )
    .unwrap();
    let s_fast_t = t.elapsed();
    println!(
        "S-approach    G={} (factorized): {:>12.3?}  (P = {:.4})",
        caps.g_s_approach,
        s_fast_t,
        s_fast.detection_probability(5)
    );

    // S-approach, paper-faithful Algorithm 1: measure G = 1..=4 and fit the
    // growth factor.
    println!("\nS-approach, Algorithm 1 enumeration (the paper's implementation):");
    println!("   G | time          | growth");
    let mut csv = Csv::create(&opts.out_dir, "timing.csv", &["g", "seconds"]);
    let mut times = Vec::new();
    let max_g = 6usize;
    for g in 1..=max_g {
        let t = Instant::now();
        let _ = s_approach::analyze_enumeration(&params, &SOptions { cap_sensors: g }).unwrap();
        let dt = t.elapsed().as_secs_f64();
        let growth = times
            .last()
            .map(|&prev: &f64| format!("x{:.0}", dt / prev))
            .unwrap_or_else(|| "-".into());
        println!("   {g} | {dt:>12.6} s | {growth}");
        csv.row(&[g.to_string(), format!("{dt:.6}")]);
        times.push(dt);
    }
    // Extrapolate to the 99%-accuracy G from the last (least noisy) step.
    let factor = times[max_g - 1] / times[max_g - 2];
    let mut projected = times[max_g - 1];
    for _ in max_g..caps.g_s_approach {
        projected *= factor;
    }
    csv.finish();
    println!(
        "\nper-step growth factor ≈ {factor:.0}; projected time at G = {}:",
        caps.g_s_approach
    );
    let days = projected / 86_400.0;
    println!("  ≈ {projected:.0} s ≈ {days:.1} days  (paper: 'many days')");
    println!(
        "\nSpeedup of the M-S-approach at matched 99% accuracy: ~{:.0e}x",
        projected / ms_99.as_secs_f64()
    );

    // Engine memoization: the Figure 9 analysis grid (both speeds, all N),
    // evaluated cold (cache bypassed per request) and warm (second cached
    // pass over a populated engine).
    println!("\nEngine batch over the Figure 9 grid (M-S-approach, 2 speeds x 7 N):");
    let grid: Vec<EvalRequest> = [4.0, 10.0]
        .iter()
        .flat_map(|&v| {
            figure9_n_values().into_iter().map(move |n| {
                EvalRequest::new(
                    SystemParams::paper_defaults()
                        .with_n_sensors(n)
                        .with_speed(v),
                    BackendSpec::ms_default(),
                )
            })
        })
        .collect();
    let cold_grid: Vec<EvalRequest> = grid
        .iter()
        .cloned()
        .map(|mut request| {
            request.options = EvalOptions {
                bypass_cache: true,
                ..request.options.clone()
            };
            request
        })
        .collect();
    let engine = Engine::with_workers(1);
    let total = |responses: &[gbd_engine::EvalResponse]| -> Duration {
        responses.iter().map(|r| r.duration).sum()
    };
    let cold = total(&engine.evaluate_batch(&cold_grid));
    let first = total(&engine.evaluate_batch(&grid));
    let warm = total(&engine.evaluate_batch(&grid));
    let stats = engine.cache_stats();
    println!("  cold (cache bypassed)     : {cold:>12.3?}");
    println!("  first cached pass         : {first:>12.3?}  (intra-sweep sharing)");
    println!("  warm repeat               : {warm:>12.3?}");
    println!(
        "  cache                     : {} hits, {} misses",
        stats.hits, stats.misses
    );
    println!(
        "  warm speedup over cold    : {:.0}x",
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
    );
}
