//! §4 extension: ">= k reports from >= h distinct nodes", analysis vs
//! simulation.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin h_extension -- --trials 4000
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::extension_h;
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::engine::run_trial;
use std::collections::HashSet;

fn main() {
    let opts = ExpOptions::from_args(4_000);
    let h_max = 5usize;
    println!(
        "§4 h-node extension — P[>= k reports from >= h nodes] ({} trials)\n",
        opts.trials
    );
    println!("   N  |  h  | analysis | simulation");
    println!(" -----+-----+----------+-----------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "h_extension.csv",
        &["n", "h", "analysis", "simulation"],
    );
    for n in [90usize, 150, 240] {
        let params = SystemParams::paper_defaults().with_n_sensors(n);
        let analysis = extension_h::analyze(&params, h_max, &MsOptions::default()).unwrap();

        // One simulation pass per N, classifying each trial by its distinct
        // reporting-node count.
        let config = SimConfig::new(params)
            .with_trials(opts.trials)
            .with_seed(opts.seed);
        let mut hits = vec![0u64; h_max + 1];
        for trial in 0..opts.trials {
            let out = run_trial(&config, trial);
            if out.true_reports < params.k() {
                continue;
            }
            let distinct: HashSet<_> = out.reports.iter().map(|r| r.sensor).collect();
            for slot in hits.iter_mut().take(h_max.min(distinct.len()) + 1).skip(1) {
                *slot += 1;
            }
        }
        for (h, &hit) in hits.iter().enumerate().take(h_max + 1).skip(1) {
            let ana = analysis.detection_probability(params.k(), h);
            let sim = hit as f64 / opts.trials as f64;
            println!("  {n:3} |  {h}  |  {ana:.4}  |  {sim:.4}");
            csv.row(&[n.to_string(), h.to_string(), f(ana), f(sim)]);
        }
        println!(" -----+-----+----------+-----------");
    }
    csv.finish();
    println!("\nShape: probability falls as h rises — in a sparse network a slow");
    println!("target may hand several of its k reports to the same sensor, so");
    println!("requiring distinct witnesses is strictly harder.");
}
