//! False-alarm study: the two claims the paper makes but does not measure.
//!
//! 1. §2: mixing false alarms into the report stream "only increases the
//!    probability of the real target being detected" — so the analysis
//!    (computed without false alarms) is a slight lower bound.
//! 2. §1: group based detection filters out system-level false alarms
//!    because noise rarely forms a track-feasible sequence; the threshold
//!    `k` is "chosen based on the system's false alarm rate".
//!
//! ```text
//! cargo run --release -p gbd-bench --bin false_alarm_study -- --trials 500
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::false_alarm::{run_no_target, run_with_filter};

fn main() {
    let opts = ExpOptions::from_args(500);
    let params = SystemParams::paper_defaults().with_n_sensors(150);

    println!(
        "Claim 1 — false alarms only help ({} trials, N = 150):\n",
        opts.trials
    );
    println!("  node FA rate | P(detect) true-only | P(detect) with noise, filtered");
    let mut csv1 = Csv::create(
        &opts.out_dir,
        "false_alarm_target.csv",
        &["fa_rate", "p_true_only", "p_filtered"],
    );
    for far in [0.0, 0.0005, 0.001, 0.002, 0.005] {
        let cfg = SimConfig::new(params)
            .with_trials(opts.trials)
            .with_seed(opts.seed)
            .with_false_alarm_rate(far);
        let r = run_with_filter(&cfg);
        let p_true = r.detections_true_only as f64 / r.trials as f64;
        let p_filt = r.detections_filtered as f64 / r.trials as f64;
        println!(
            "     {:6.2} % |        {p_true:.3}        |        {p_filt:.3}",
            far * 100.0
        );
        csv1.row(&[format!("{far}"), f(p_true), f(p_filt)]);
    }
    csv1.finish();

    println!("\nClaim 2 — choosing k from the false alarm rate (no target present):\n");
    println!("   k  | naive alarm rate | track-filtered alarm rate");
    let mut csv2 = Csv::create(
        &opts.out_dir,
        "false_alarm_no_target.csv",
        &["k", "naive_rate", "filtered_rate"],
    );
    for k in [3usize, 4, 5, 6, 8] {
        let cfg = SimConfig::new(params.with_k(k))
            .with_trials(opts.trials)
            .with_seed(opts.seed + 1)
            .with_false_alarm_rate(0.002);
        let r = run_no_target(&cfg);
        let naive = r.naive_alarms as f64 / r.trials as f64;
        let filt = r.filtered_alarms as f64 / r.trials as f64;
        println!(
            "   {k:2} |      {:6.1} %    |        {:6.1} %",
            naive * 100.0,
            filt * 100.0
        );
        csv2.row(&[k.to_string(), f(naive), f(filt)]);
    }
    csv2.finish();
    println!("\nShape: the filtered column falls steeply with k while detection of a");
    println!("real target (claim 1) barely moves — exactly the trade the paper's");
    println!("'k is chosen based on the false alarm rate' refers to.");
}
