//! Figure 8: required `g`, `gh` (M-S-approach) and `G` (S-approach) to
//! reach 99 % analysis accuracy, versus the number of deployed nodes.
//!
//! Paper settings: S = 32 km × 32 km, Rs = 1 km, t = 1 min, M = 20,
//! V = 10 m/s, N swept 60..260.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin fig8
//! ```

use gbd_bench::{figure8_n_values, Csv, ExpOptions};
use gbd_core::accuracy::required_caps;
use gbd_core::params::SystemParams;

fn main() {
    let opts = ExpOptions::from_args(0);
    let eta = 0.99;
    let base = SystemParams::paper_defaults().with_speed(10.0);

    println!(
        "Figure 8 — required caps for {:.0}% analysis accuracy",
        eta * 100.0
    );
    println!("(S = 32x32 km, Rs = 1 km, t = 60 s, M = 20, V = 10 m/s)\n");
    println!("  N   | g (M-S) | gh (M-S) | G (S-approach)");
    println!(" -----+---------+----------+---------------");

    let mut csv = Csv::create(&opts.out_dir, "fig8.csv", &["n", "g", "gh", "g_s"]);
    for n in figure8_n_values() {
        let caps = required_caps(&base.with_n_sensors(n), eta);
        println!(
            "  {n:3} |    {:2}   |    {:2}    |      {:2}",
            caps.g, caps.gh, caps.g_s_approach
        );
        csv.row(&[
            n.to_string(),
            caps.g.to_string(),
            caps.gh.to_string(),
            caps.g_s_approach.to_string(),
        ]);
    }
    csv.finish();
    println!("\nPaper shape: G >> gh >= g across the sweep; all grow slowly with N.");
}
