//! Figure 8: required `g`, `gh` (M-S-approach) and `G` (S-approach) to
//! reach 99 % analysis accuracy, versus the number of deployed nodes.
//!
//! Paper settings: S = 32 km × 32 km, Rs = 1 km, t = 1 min, M = 20,
//! V = 10 m/s, N swept 60..260.
//!
//! The `η achieved` column re-evaluates the M-S-approach *at* the chosen
//! caps through the evaluation engine (one batch over the sweep) and
//! reports the Eq (14) accuracy actually reached — verifying that the
//! search returned sufficient caps.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin fig8
//! ```

use gbd_bench::{f, figure8_n_values, Csv, ExpOptions};
use gbd_core::accuracy::required_caps;
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, Engine, EvalRequest};

fn main() {
    let opts = ExpOptions::from_args(0);
    let eta = 0.99;
    let base = SystemParams::paper_defaults().with_speed(10.0);

    println!(
        "Figure 8 — required caps for {:.0}% analysis accuracy",
        eta * 100.0
    );
    println!("(S = 32x32 km, Rs = 1 km, t = 60 s, M = 20, V = 10 m/s)\n");
    println!("  N   | g (M-S) | gh (M-S) | G (S-approach) | η achieved");
    println!(" -----+---------+----------+----------------+-----------");

    let rows: Vec<_> = figure8_n_values()
        .into_iter()
        .map(|n| (n, required_caps(&base.with_n_sensors(n), eta)))
        .collect();
    let requests: Vec<EvalRequest> = rows
        .iter()
        .map(|&(n, ref caps)| {
            EvalRequest::new(
                base.with_n_sensors(n),
                BackendSpec::Ms(MsOptions {
                    g: caps.g,
                    gh: caps.gh,
                    eps: 0.0,
                }),
            )
        })
        .collect();
    let engine = Engine::new();
    let responses = engine.evaluate_batch(&requests);

    let mut csv = Csv::create(
        &opts.out_dir,
        "fig8.csv",
        &["n", "g", "gh", "g_s", "eta_achieved"],
    );
    for ((n, caps), response) in rows.iter().zip(&responses) {
        let achieved = response
            .outcome
            .as_ref()
            .expect("valid paper params")
            .analysis()
            .expect("analysis backend")
            .predicted_accuracy();
        assert!(
            achieved >= eta,
            "caps search returned insufficient caps at N = {n}"
        );
        println!(
            "  {n:3} |    {:2}   |    {:2}    |      {:2}        |   {achieved:.4}",
            caps.g, caps.gh, caps.g_s_approach
        );
        csv.row(&[
            n.to_string(),
            caps.g.to_string(),
            caps.gh.to_string(),
            caps.g_s_approach.to_string(),
            f(achieved),
        ]);
    }
    csv.finish();
    println!("\nPaper shape: G >> gh >= g across the sweep; all grow slowly with N.");
}
