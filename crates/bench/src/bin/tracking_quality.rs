//! Extension: track-estimation quality after detection.
//!
//! The deployed systems the paper cites estimate the target's track from
//! the detection reports. This experiment measures how well a
//! constant-velocity least-squares fit recovers the simulated ground
//! truth, as a function of the sensor count (a bounded field, since
//! tracking on the analysis torus is an artifact).
//!
//! ```text
//! cargo run --release -p gbd-bench --bin tracking_quality -- --trials 2000
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::params::SystemParams;
use gbd_sim::config::{BoundaryPolicy, SimConfig};
use gbd_sim::engine::run_trial;
use gbd_sim::tracking::{evaluate, fit_track};
use gbd_stats::summary::Summary;

fn main() {
    let opts = ExpOptions::from_args(2_000);
    println!(
        "Track estimation quality (straight-line target, bounded field, {} trials)\n",
        opts.trials
    );
    println!("   N  | tracks fitted | RMSE (m)        | speed err (m/per) | heading err (rad)");
    println!(" -----+---------------+-----------------+-------------------+------------------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "tracking_quality.csv",
        &[
            "n",
            "fitted",
            "rmse_mean",
            "speed_err_mean",
            "heading_err_mean",
        ],
    );
    for n in [90usize, 150, 240] {
        let params = SystemParams::paper_defaults().with_n_sensors(n);
        let cfg = SimConfig::new(params)
            .with_trials(opts.trials)
            .with_seed(opts.seed)
            .with_boundary(BoundaryPolicy::Bounded);
        let mut rmse = Summary::new();
        let mut speed = Summary::new();
        let mut heading = Summary::new();
        for trial in 0..opts.trials {
            let out = run_trial(&cfg, trial);
            if out.true_reports < params.k() {
                continue;
            }
            let Some(est) = fit_track(&out.reports) else {
                continue;
            };
            let first = out.reports.first().expect("nonempty").period;
            let last = out.reports.last().expect("nonempty").period;
            if first == last {
                continue;
            }
            let q = evaluate(&est, &out.trajectory, first, last);
            rmse.push(q.position_rmse);
            speed.push(q.speed_error);
            heading.push(q.heading_error);
        }
        println!(
            "  {n:3} |     {:5}     | {:6.0} ± {:5.0}  |      {:6.1}       |      {:.3}",
            rmse.count(),
            rmse.mean(),
            rmse.std_dev(),
            speed.mean(),
            heading.mean()
        );
        csv.row(&[
            n.to_string(),
            rmse.count().to_string(),
            f(rmse.mean()),
            f(speed.mean()),
            f(heading.mean()),
        ]);
    }
    csv.finish();
    println!("\nShape: with 1 km-coarse sensors the fitted track localizes the");
    println!("target to ~0.4-0.5 sensing ranges and the heading to ~7-11 degrees");
    println!("once k = 5 reports exist; every metric improves with N as more");
    println!("reports constrain the fit. Detection hands the tracker a usable");
    println!("initial state — the hand-off the paper's cited systems perform.");
}
