//! Ablation: truncation caps vs accuracy, and what normalization buys.
//!
//! Sweeps `g = gh` from 1 to 6 and reports the M-S-approach's error
//! against the exact (untruncated) model, both raw and normalized — the
//! mechanism behind the Figure 9(a)/9(b) difference, quantified.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin ablation_truncation
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::exact;
use gbd_core::ms_approach::{analyze, MsOptions};
use gbd_core::params::SystemParams;

fn main() {
    let opts = ExpOptions::from_args(0);
    let mut csv = Csv::create(
        &opts.out_dir,
        "ablation_truncation.csv",
        &["n", "v", "caps", "raw_err", "norm_err", "mass_deficit"],
    );
    for (n, v) in [(120usize, 4.0), (240, 10.0)] {
        let params = SystemParams::paper_defaults()
            .with_n_sensors(n)
            .with_speed(v);
        let truth = exact::detection_probability(&params, params.k());
        println!("\nN = {n}, V = {v} m/s  (exact P = {truth:.4})");
        println!("  g=gh | raw err  | normalized err | truncated mass");
        println!(" ------+----------+----------------+---------------");
        for caps in 1..=6usize {
            let r = analyze(
                &params,
                &MsOptions {
                    g: caps,
                    gh: caps,
                    eps: 0.0,
                },
            )
            .unwrap();
            let raw_err = (r.detection_probability_unnormalized(params.k()) - truth).abs();
            let norm_err = (r.detection_probability(params.k()) - truth).abs();
            let deficit = 1.0 - r.retained_mass();
            println!("    {caps}  | {raw_err:.5}  |    {norm_err:.5}     |    {deficit:.5}");
            csv.row(&[
                n.to_string(),
                v.to_string(),
                caps.to_string(),
                f(raw_err),
                f(norm_err),
                f(deficit),
            ]);
        }
    }
    csv.finish();
    println!("\nNormalization recovers most of the truncated mass: at the paper's");
    println!("g = gh = 3 the normalized error is an order of magnitude below the raw");
    println!("error (§4: 'The normalization helps improve analysis accuracy').");
    println!("The floor visible at large caps (~1e-3) is the chain's independent-");
    println!("binomial treatment of per-NEDR sensor counts (multinomial in truth).");
}
