//! §6 future work: the lower bound of `k` for a specified false alarm
//! model, plus the resulting detection/false-alarm operating curve.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin k_bound
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::false_alarm::{operating_curve, required_k, FalseAlarmModel};
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;

fn main() {
    let opts = ExpOptions::from_args(0);
    let params = SystemParams::paper_defaults().with_n_sensors(150);

    println!("Lower bound of k (count-based guarantee, N = 150, M = 20):\n");
    println!("   node FA rate pf | E[noise/window] | k for eps=1% | k for eps=0.1%");
    println!(" -----------------+-----------------+--------------+----------------");
    let mut csv = Csv::create(
        &opts.out_dir,
        "k_bound.csv",
        &["pf", "mean_noise", "k_1pct", "k_01pct"],
    );
    for pf in [1e-5, 1e-4, 5e-4, 1e-3, 2e-3] {
        let model = FalseAlarmModel::new(pf).unwrap();
        let k1 = required_k(&params, &model, 0.01).unwrap();
        let k01 = required_k(&params, &model, 0.001).unwrap();
        let mean = model.expected_noise_reports(&params);
        println!("      {pf:8.5}   |      {mean:6.2}     |      {k1:2}      |      {k01:2}");
        csv.row(&[format!("{pf}"), f(mean), k1.to_string(), k01.to_string()]);
    }
    csv.finish();

    println!("\nOperating curve at pf = 5e-4 (detection from the M-S-approach,");
    println!("false alarm from the count-based bound):\n");
    println!("   k | P(detect target) | P(window false alarm) <=");
    let model = FalseAlarmModel::new(5e-4).unwrap();
    let curve = operating_curve(&params, &model, 10, &MsOptions::default()).unwrap();
    let mut csv2 = Csv::create(
        &opts.out_dir,
        "operating_curve.csv",
        &["k", "p_detect", "p_false_alarm"],
    );
    for pt in &curve {
        println!(
            "  {:2} |      {:.4}      |      {:.2e}",
            pt.k, pt.p_detect, pt.p_false_alarm
        );
        csv2.row(&[
            pt.k.to_string(),
            f(pt.p_detect),
            format!("{:.3e}", pt.p_false_alarm),
        ]);
    }
    csv2.finish();
    println!("\nShape: the paper's k = 5 at its parameters bounds the count-based");
    println!("window false alarm rate below ~1% for pf <= ~2e-4 while giving up");
    println!("little detection probability — matching '§2: k is given based on");
    println!("empirically obtained false alarm patterns'. Track filtering only");
    println!("lowers the false-alarm side further (see false_alarm_study).");
}
