//! §3.2 made measurable: the T-approach's state explosion.
//!
//! The paper rejects the Temporal approach because tracking temporally
//! correlated coverage "requires a huge number of states… millions or
//! more". This experiment runs our exact T-approach implementation —
//! whose result provably equals the M-S-approach's — and reports the peak
//! live state count next to the M-S chain's state count, sweeping the
//! window length and the target speed (which controls `ms`).
//!
//! ```text
//! cargo run --release -p gbd-bench --bin t_approach_explosion
//! ```

use gbd_bench::{Csv, ExpOptions};
use gbd_core::ms_approach::{self, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::t_approach;
use std::time::Instant;

fn main() {
    let opts = ExpOptions::from_args(0);
    let caps = MsOptions {
        g: 2,
        gh: 2,
        eps: 0.0,
    };
    println!("T-approach state explosion (g = gh = 2, N = 120)\n");
    println!("   M  |  V  | ms | T states (peak) | M-S states | T time     | result gap");
    println!(" -----+-----+----+-----------------+------------+------------+-----------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "t_approach.csv",
        &["m", "v", "ms", "t_states", "ms_states", "t_seconds", "gap"],
    );
    for v in [10.0, 20.0] {
        for m in [4usize, 6, 8, 10, 12] {
            let params = SystemParams::paper_defaults()
                .with_n_sensors(120)
                .with_speed(v)
                .with_m_periods(m);
            let started = Instant::now();
            let t = match t_approach::analyze(&params, &caps, 50_000_000) {
                Ok(t) => t,
                Err(e) => {
                    println!("  {m:3} | {v:3} | {:2} | {e}", params.ms());
                    continue;
                }
            };
            let dt = started.elapsed().as_secs_f64();
            let ms_r = ms_approach::analyze(&params, &caps).unwrap();
            let ms_states = ms_r.raw_distribution().support_max() + 1;
            let gap = t.raw.max_abs_diff(ms_r.raw_distribution());
            println!(
                "  {m:3} | {v:3} | {:2} |    {:>10}   |   {ms_states:>5}    | {dt:>8.3} s | {gap:.1e}",
                params.ms(),
                t.peak_states
            );
            csv.row(&[
                m.to_string(),
                v.to_string(),
                params.ms().to_string(),
                t.peak_states.to_string(),
                ms_states.to_string(),
                format!("{dt:.4}"),
                format!("{gap:.2e}"),
            ]);
        }
    }
    csv.finish();

    // The combinatorial bound at the paper's full configuration.
    let full = SystemParams::paper_defaults().with_speed(4.0);
    println!(
        "\nCombinatorial state bound at the paper's V = 4 m/s (ms = 9), M = 20, g = gh = 3:"
    );
    println!(
        "  ~{:.1e} states  (§3.2: 'millions or more')",
        t_approach::state_space_bound(&full, &MsOptions::default()) as f64
    );
    println!("\nBoth approaches produce the same distribution (gap column ~1e-16):");
    println!("the T-approach pays a combinatorial state set for information the");
    println!("M-S-approach shows is unnecessary for window detection probability —");
    println!("though it is exactly what exact time-to-detection needs (see the");
    println!("time_to_detection experiment).");
}
