//! §6 future-work extension: varying target speed, analysis vs simulation.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin varying_speed -- --trials 4000
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_core::varying_speed;
use gbd_sim::config::{MotionSpec, SimConfig};
use gbd_sim::runner::run;

fn main() {
    let opts = ExpOptions::from_args(4_000);
    println!(
        "Varying-speed extension — speed drawn per period from [v_min, v_max] ({} trials)\n",
        opts.trials
    );
    println!("   N  |  range (m/s) | band lo | band hi | simulation");
    println!(" -----+--------------+---------+---------+-----------");

    let mut csv = Csv::create(
        &opts.out_dir,
        "varying_speed.csv",
        &["n", "v_min", "v_max", "band_lo", "band_hi", "simulation"],
    );
    for n in [90usize, 150, 240] {
        for (v_min, v_max) in [(4.0, 10.0), (2.0, 6.0)] {
            let params = SystemParams::paper_defaults().with_n_sensors(n);
            let (lo, hi) = varying_speed::detection_probability_band(
                &params,
                v_min,
                v_max,
                params.k(),
                &MsOptions::default(),
            )
            .unwrap();
            let sim = run(&SimConfig::new(params)
                .with_trials(opts.trials)
                .with_seed(opts.seed)
                .with_motion(MotionSpec::VaryingSpeed { v_min, v_max }));
            println!(
                "  {n:3} |  [{v_min}, {v_max}]  | {lo:.4}  | {hi:.4}  |  {:.4}",
                sim.detection_probability
            );
            csv.row(&[
                n.to_string(),
                v_min.to_string(),
                v_max.to_string(),
                f(lo),
                f(hi),
                f(sim.detection_probability),
            ]);
        }
    }
    csv.finish();

    // A deterministic profile check: accelerate mid-window.
    println!("\nDeterministic profile (N = 150): 4 m/s for 10 periods, then 10 m/s");
    let params = SystemParams::paper_defaults().with_n_sensors(150);
    let speeds: Vec<f64> = (0..20).map(|i| if i < 10 { 4.0 } else { 10.0 }).collect();
    let ana = varying_speed::analyze_speeds(&params, &speeds, &MsOptions::default())
        .unwrap()
        .detection_probability(params.k());
    println!("  generalized M-S analysis: {ana:.4}");
    println!("\nShape: simulated varying-speed probability falls inside the constant-");
    println!("speed band and tracks the generalized per-period analysis.");
}
