//! Load generator for the `gbd-serve` JSON-lines protocol.
//!
//! Drives N client threads against a running server (each with a bounded
//! pipelining window, optionally rate-limited), mixes analytical and
//! simulation requests, and reports achieved throughput plus p50/p95/p99
//! latency to stdout and CSV (or JSON with `--json`).
//!
//! ```text
//! groupdet serve --addr 127.0.0.1:0 --json &
//! cargo run --release -p gbd-bench --bin loadgen -- \
//!     --addr 127.0.0.1:<port> --clients 8 --requests 100 --sim-every 10
//! ```
//!
//! `--assert-coalescing` queries the server's `stats` verb afterwards and
//! fails (exit 1) unless the mean coalesced batch size exceeds 1;
//! `--assert-split` queries the versioned `metrics` verb and fails unless
//! the queue-wait and compute histograms sum (within 25%) to the latency
//! histogram; `--watch-windows n` attaches a streaming `watch` client with
//! replay that reads windows (up to `n` past the ring backlog) until the
//! run's completed requests appear in them, then fails unless the windowed
//! deltas telescope to the lifetime totals and cover the whole run;
//! `--shutdown` sends the `shutdown` verb once done — together
//! they make this the smoke driver used by `scripts/check.sh`.
//!
//! `--warmstart <path>` switches to a self-contained benchmark that
//! ignores `--addr`: it boots an in-process server over a fresh store at
//! `path`, drives the request mix (cold), drains (which snapshots the
//! store), boots a second server over the same store (warm), and replays
//! the identical mix. It fails unless every warm response is bit-identical
//! to its cold counterpart and the warm boot actually loaded records.
//!
//! `--router` points `--addr` at a `gbd-router` front end instead of a
//! single shard. Clients then retry the two retryable error codes
//! (`overloaded`, `shard_unavailable`) with bounded attempts — so a shard
//! killed mid-run (the check.sh chaos stage) costs retries, not wrong
//! answers — and at the end every routed `detection` is compared against
//! an in-process single-server evaluation of the same request shape. The
//! run fails unless all requests were eventually answered bit-identically.
//!
//! `--report-stream` switches to the streaming workload: each client
//! opens a detection session (`stream_open`), replays simulator-generated
//! intruder trials as per-period report bursts — thinned by the delivery
//! ratio the committed `results/comm_burst.csv` measured for the
//! scenario's sensor count, since a sensing burst contends for the radio
//! — and reads back pushed `detection` events, measuring per-event
//! report→detection latency percentiles. `--assert-stream` then queries
//! the server's `stream` metrics section and fails unless every report
//! and event the clients counted is accounted for there, at least one
//! detection fired, and no session was left open.

use gbd_bench::Csv;
use gbd_serve::Json;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Options {
    addr: String,
    clients: usize,
    requests: usize,
    /// Outstanding requests per client connection.
    pipeline: usize,
    /// Target total request rate across all clients (req/s); 0 = unpaced.
    rate: f64,
    /// Every `sim_every`-th request uses the simulation backend (0 = none).
    sim_every: usize,
    /// Trials for simulation requests (kept small: this is a protocol
    /// load test, not a Monte Carlo campaign).
    trials: u64,
    seed: u64,
    out_dir: PathBuf,
    json: bool,
    assert_coalescing: bool,
    /// Assert queue_wait + compute ≈ latency from the `metrics` verb.
    assert_split: bool,
    /// Attach a `watch` client reading this many windowed deltas (0 = off).
    watch_windows: u64,
    shutdown: bool,
    /// Run the self-contained cold-vs-warm store benchmark against this
    /// store path instead of driving `--addr`.
    warmstart: Option<PathBuf>,
    /// Treat `--addr` as a gbd-router front end: retry retryable errors
    /// and verify routed answers bit-identically against a local engine.
    router: bool,
    /// Drive streaming detection sessions instead of eval requests:
    /// each client opens one session and replays `--requests` simulated
    /// intruder trials as per-period report bursts.
    report_stream: bool,
    /// After a `--report-stream` run, verify the server's `stream`
    /// metrics section accounts every report and event.
    assert_stream: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7171".to_string(),
            clients: 4,
            requests: 64,
            pipeline: 8,
            rate: 0.0,
            sim_every: 0,
            trials: 50,
            seed: 2008,
            out_dir: PathBuf::from("results"),
            json: false,
            assert_coalescing: false,
            assert_split: false,
            watch_windows: 0,
            shutdown: false,
            warmstart: None,
            router: false,
            report_stream: false,
            assert_stream: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr host:port [--clients n] [--requests n] [--pipeline n]\n\
         \x20              [--rate req/s] [--sim-every n] [--trials n] [--seed n]\n\
         \x20              [--out dir] [--json] [--assert-coalescing] [--assert-split]\n\
         \x20              [--watch-windows n] [--shutdown] [--warmstart store-path]\n\
         \x20              [--router] [--report-stream] [--assert-stream]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |args: &[String], i: usize| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                opts.addr = value(&args, i);
                i += 2;
            }
            "--clients" => {
                opts.clients = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--requests" => {
                opts.requests = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--pipeline" => {
                opts.pipeline = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--rate" => {
                opts.rate = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--sim-every" => {
                opts.sim_every = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--trials" => {
                opts.trials = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                opts.seed = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--out" => {
                opts.out_dir = PathBuf::from(value(&args, i));
                i += 2;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            "--assert-coalescing" => {
                opts.assert_coalescing = true;
                i += 1;
            }
            "--assert-split" => {
                opts.assert_split = true;
                i += 1;
            }
            "--watch-windows" => {
                opts.watch_windows = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--shutdown" => {
                opts.shutdown = true;
                i += 1;
            }
            "--warmstart" => {
                opts.warmstart = Some(PathBuf::from(value(&args, i)));
                i += 2;
            }
            "--router" => {
                opts.router = true;
                i += 1;
            }
            "--report-stream" => {
                opts.report_stream = true;
                i += 1;
            }
            "--assert-stream" => {
                opts.assert_stream = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    opts
}

/// Builds the request line for global request number `seq`. Sensor counts
/// cycle over a small set so the engine sees a realistic mix of cache hits
/// and misses; every `sim_every`-th request goes to the simulator.
fn request_line(seq: usize, id: u64, opts: &Options) -> String {
    let n = 60 + 30 * (seq % 7);
    let params = Json::obj(vec![("n".to_string(), Json::from(n))]);
    let mut fields = vec![
        ("id".to_string(), Json::from(id)),
        ("verb".to_string(), Json::from("eval")),
        ("params".to_string(), params),
    ];
    if opts.sim_every > 0 && seq.is_multiple_of(opts.sim_every) {
        fields.push((
            "backend".to_string(),
            Json::obj(vec![
                ("kind".to_string(), Json::from("sim")),
                ("trials".to_string(), Json::from(opts.trials)),
                ("seed".to_string(), Json::from(opts.seed)),
            ]),
        ));
    }
    let mut line = Json::Obj(fields).render();
    line.push('\n');
    line
}

struct ClientResult {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    io_failure: bool,
}

/// One closed-loop client: keeps up to `pipeline` requests outstanding,
/// pacing sends to `rate / clients` when a rate is set. Responses arrive
/// in submission order (the server guarantees per-connection ordering), so
/// latency matching is a FIFO.
fn run_client(client: usize, opts: &Options) -> ClientResult {
    let mut result = ClientResult {
        latencies_us: Vec::with_capacity(opts.requests),
        ok: 0,
        errors: 0,
        io_failure: false,
    };
    let Ok(stream) = TcpStream::connect(&opts.addr) else {
        result.io_failure = true;
        return result;
    };
    let Ok(read_half) = stream.try_clone() else {
        result.io_failure = true;
        return result;
    };
    let mut writer = BufWriter::new(stream);
    let mut reader = BufReader::new(read_half);
    let per_client_rate = if opts.rate > 0.0 {
        opts.rate / opts.clients as f64
    } else {
        0.0
    };
    let start = Instant::now();
    let mut inflight: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
    let mut sent = 0usize;
    let mut received = 0usize;
    let mut line = String::new();
    while received < opts.requests {
        // Fill the window.
        while sent < opts.requests && inflight.len() < opts.pipeline.max(1) {
            if per_client_rate > 0.0 {
                let due = start + Duration::from_secs_f64(sent as f64 / per_client_rate);
                let now = Instant::now();
                if due > now {
                    // Under a rate cap, drain before sleeping so latency
                    // is not inflated by the pacing gap.
                    if !inflight.is_empty() {
                        break;
                    }
                    std::thread::sleep(due - now);
                }
            }
            let seq = client * opts.requests + sent;
            let line = request_line(seq, sent as u64, opts);
            if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
                result.io_failure = true;
                return result;
            }
            inflight.push_back(Instant::now());
            sent += 1;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                result.io_failure = true;
                return result;
            }
            Ok(_) => {}
        }
        let Some(sent_at) = inflight.pop_front() else {
            result.io_failure = true;
            return result;
        };
        result
            .latencies_us
            .push(u64::try_from(sent_at.elapsed().as_micros()).unwrap_or(u64::MAX));
        match Json::parse(line.trim()) {
            Ok(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                result.ok += 1
            }
            _ => result.errors += 1,
        }
        received += 1;
    }
    result
}

/// The two error codes a client may safely re-send on: backpressure shed
/// (`overloaded`) and a hash slot with no reachable shard mid-failover
/// (`shard_unavailable`). Everything else is a permanent answer.
fn retryable(code: Option<&str>) -> bool {
    matches!(code, Some("overloaded") | Some("shard_unavailable"))
}

/// The request shape `request_line` builds for global sequence `seq`:
/// the sensor count and whether it goes to the simulation backend. Two
/// requests with the same shape must produce bit-identical detections.
fn shape_key(seq: usize, opts: &Options) -> (usize, bool) {
    (
        60 + 30 * (seq % 7),
        opts.sim_every > 0 && seq.is_multiple_of(opts.sim_every),
    )
}

struct RouterClientResult {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    /// Re-sends (transport failures + retryable error codes).
    retries: u64,
    /// `(seq, rendered detection)` for every answered request.
    detections: Vec<(usize, String)>,
}

/// One router-mode client: strictly one request in flight, because a
/// request that fails mid-pipeline (shard killed under it) must be
/// re-sent without disturbing its neighbours. Transport failures and
/// retryable error codes re-send the same line with a short ramping
/// sleep — long enough to ride out a breaker cooldown plus failover.
fn run_router_client(client: usize, opts: &Options) -> RouterClientResult {
    const ATTEMPTS: usize = 120;
    let mut result = RouterClientResult {
        latencies_us: Vec::with_capacity(opts.requests),
        ok: 0,
        errors: 0,
        retries: 0,
        detections: Vec::with_capacity(opts.requests),
    };
    let mut conn: Option<(BufWriter<TcpStream>, BufReader<TcpStream>)> = None;
    let per_client_rate = if opts.rate > 0.0 {
        opts.rate / opts.clients as f64
    } else {
        0.0
    };
    let start = Instant::now();
    for i in 0..opts.requests {
        if per_client_rate > 0.0 {
            let due = start + Duration::from_secs_f64(i as f64 / per_client_rate);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let seq = client * opts.requests + i;
        let line = request_line(seq, i as u64, opts);
        let sent_at = Instant::now();
        let mut answered = false;
        for attempt in 0..ATTEMPTS {
            if attempt > 0 {
                result.retries += 1;
                std::thread::sleep(Duration::from_millis(25 * attempt.min(8) as u64));
            }
            if conn.is_none() {
                conn = TcpStream::connect(&opts.addr).ok().and_then(|stream| {
                    let read_half = stream.try_clone().ok()?;
                    Some((BufWriter::new(stream), BufReader::new(read_half)))
                });
            }
            let Some((writer, reader)) = conn.as_mut() else {
                continue;
            };
            if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
                conn = None;
                continue;
            }
            let mut reply = String::new();
            match reader.read_line(&mut reply) {
                Ok(n) if n > 0 => {}
                _ => {
                    conn = None;
                    continue;
                }
            }
            let Ok(response) = Json::parse(reply.trim()) else {
                conn = None;
                continue;
            };
            if response.get("ok").and_then(Json::as_bool) == Some(true) {
                let detection = response
                    .get("detection")
                    .map_or_else(|| "missing".to_string(), Json::render);
                result.detections.push((seq, detection));
                result.ok += 1;
                answered = true;
                break;
            }
            let code = response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str);
            if !retryable(code) {
                break;
            }
        }
        if answered {
            result
                .latencies_us
                .push(u64::try_from(sent_at.elapsed().as_micros()).unwrap_or(u64::MAX));
        } else {
            result.errors += 1;
        }
    }
    result
}

/// Evaluates one representative of every distinct request shape this run
/// will send against an in-process single-server engine — the ground
/// truth the acceptance criterion names — and returns shape → rendered
/// `detection`. Going through a real `gbd-serve` instance (rather than
/// the engine API directly) exercises the identical parse and render
/// path, so equality is bit-identity of the wire text.
fn reference_detections(
    opts: &Options,
) -> Result<std::collections::HashMap<(usize, bool), String>, String> {
    let total = opts.clients * opts.requests;
    let mut seen = std::collections::HashSet::new();
    let mut representatives: Vec<usize> = Vec::new();
    for seq in 0..total {
        if seen.insert(shape_key(seq, opts)) {
            representatives.push(seq);
        }
    }
    let config = gbd_serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..gbd_serve::ServeConfig::default()
    };
    let server = gbd_serve::Server::bind(config, Arc::new(gbd_engine::Engine::new()))
        .map_err(|e| format!("cannot bind reference server: {e}"))?;
    let addr = server.local_addr().to_string();
    let run = std::thread::spawn(move || server.run());
    let drive = || -> Result<std::collections::HashMap<(usize, bool), String>, String> {
        let stream =
            TcpStream::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let read_half = stream.try_clone().map_err(|e| e.to_string())?;
        let mut writer = BufWriter::new(stream);
        let mut reader = BufReader::new(read_half);
        let mut expected = std::collections::HashMap::new();
        for &seq in &representatives {
            let line = request_line(seq, seq as u64, opts);
            writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.flush())
                .map_err(|e| format!("reference request {seq}: {e}"))?;
            let mut reply = String::new();
            reader
                .read_line(&mut reply)
                .map_err(|e| format!("reference response {seq}: {e}"))?;
            let response = Json::parse(reply.trim())
                .map_err(|e| format!("reference response {seq}: {e}"))?;
            let detection = response
                .get("detection")
                .filter(|_| response.get("ok").and_then(Json::as_bool) == Some(true))
                .ok_or_else(|| format!("reference request {seq} errored: {}", reply.trim()))?;
            expected.insert(shape_key(seq, opts), detection.render());
        }
        Ok(expected)
    };
    let driven = drive();
    let _ = control_round_trip(&addr, "shutdown");
    let _ = run.join();
    driven
}

/// The `--router` driver: clients with per-request retries against the
/// router address, then a bit-identity sweep of every routed answer
/// against the in-process reference, then the router's own `metrics`
/// verb for failover/breaker accounting.
fn run_router(opts: &Arc<Options>) -> ExitCode {
    let start = Instant::now();
    let workers: Vec<_> = (0..opts.clients)
        .map(|client| {
            let opts = Arc::clone(opts);
            std::thread::spawn(move || run_router_client(client, &opts))
        })
        .collect();
    let results: Vec<RouterClientResult> = workers
        .into_iter()
        .map(|w| {
            w.join().unwrap_or_else(|_| RouterClientResult {
                latencies_us: Vec::new(),
                ok: 0,
                errors: 1,
                retries: 0,
                detections: Vec::new(),
            })
        })
        .collect();
    let elapsed = start.elapsed();

    let ok: u64 = results.iter().map(|r| r.ok).sum();
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let retries: u64 = results.iter().map(|r| r.retries).sum();
    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let throughput = ok as f64 / elapsed.as_secs_f64();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );

    let mut failed = false;
    let expected_total = (opts.clients * opts.requests) as u64;
    if ok < expected_total || errors > 0 {
        eprintln!(
            "router: FAILED — only {ok}/{expected_total} requests answered ({errors} gave up)"
        );
        failed = true;
    }

    // Bit-identity: every routed detection must match the single-process
    // evaluation of the same request shape, byte for byte.
    let mut mismatches = 0u64;
    let mut checked = 0u64;
    match reference_detections(opts) {
        Ok(expected) => {
            for result in &results {
                for (seq, detection) in &result.detections {
                    checked += 1;
                    if expected.get(&shape_key(*seq, opts)) != Some(detection) {
                        if mismatches == 0 {
                            eprintln!(
                                "router: FAILED — request {seq} diverged from the local engine: {detection}"
                            );
                        }
                        mismatches += 1;
                    }
                }
            }
            if mismatches > 0 {
                eprintln!("router: FAILED — {mismatches}/{checked} answers not bit-identical");
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("router: FAILED — reference evaluation: {e}");
            failed = true;
        }
    }
    let bit_identical = mismatches == 0 && checked > 0;

    // The router's own accounting: per-slot failover state and counters.
    let metrics = control_round_trip(&opts.addr, "metrics");
    let counter = |key: &str| {
        metrics
            .as_ref()
            .and_then(|m| m.get("router"))
            .and_then(|r| r.get("counters"))
            .and_then(|c| c.get(key))
            .and_then(Json::as_u64)
    };
    let failovers = counter("failovers");
    let router_retries = counter("retries");
    let shed = counter("shed");

    if opts.json {
        println!(
            "{}",
            Json::obj(vec![
                ("mode".to_string(), Json::from("router")),
                ("clients".to_string(), Json::from(opts.clients)),
                ("requests_per_client".to_string(), Json::from(opts.requests)),
                ("ok".to_string(), Json::from(ok)),
                ("errors".to_string(), Json::from(errors)),
                ("client_retries".to_string(), Json::from(retries)),
                ("elapsed_s".to_string(), Json::Num(elapsed.as_secs_f64())),
                ("throughput_rps".to_string(), Json::Num(throughput)),
                ("p50_us".to_string(), Json::from(p50)),
                ("p95_us".to_string(), Json::from(p95)),
                ("p99_us".to_string(), Json::from(p99)),
                (
                    "router_failovers".to_string(),
                    failovers.map_or(Json::Null, Json::from),
                ),
                (
                    "router_retries".to_string(),
                    router_retries.map_or(Json::Null, Json::from),
                ),
                (
                    "router_shed".to_string(),
                    shed.map_or(Json::Null, Json::from),
                ),
                ("bit_identical".to_string(), Json::Bool(bit_identical)),
            ])
            .render()
        );
    } else {
        println!(
            "router: {} clients x {} requests through {}",
            opts.clients, opts.requests, opts.addr
        );
        println!(
            "  answered {ok}/{expected_total} ({errors} gave up, {retries} client retries) in {:.2} s",
            elapsed.as_secs_f64()
        );
        println!("  throughput {throughput:.1} req/s");
        println!("  latency p50 {p50} µs, p95 {p95} µs, p99 {p99} µs");
        if let (Some(failovers), Some(router_retries), Some(shed)) =
            (failovers, router_retries, shed)
        {
            println!("  router: {failovers} failovers, {router_retries} retries, {shed} shed");
        }
        println!("  bit-identical to local engine: {bit_identical}");
    }

    let mut csv = Csv::create(
        &opts.out_dir,
        "loadgen_router.csv",
        &[
            "clients",
            "requests_per_client",
            "ok",
            "errors",
            "client_retries",
            "elapsed_s",
            "throughput_rps",
            "p50_us",
            "p95_us",
            "p99_us",
            "router_failovers",
            "bit_identical",
        ],
    );
    csv.row(&[
        opts.clients.to_string(),
        opts.requests.to_string(),
        ok.to_string(),
        errors.to_string(),
        retries.to_string(),
        format!("{:.3}", elapsed.as_secs_f64()),
        format!("{throughput:.1}"),
        p50.to_string(),
        p95.to_string(),
        p99.to_string(),
        failovers.map_or_else(|| "-".to_string(), |v| v.to_string()),
        bit_identical.to_string(),
    ]);
    csv.finish();

    if opts.shutdown {
        let ack = control_round_trip(&opts.addr, "shutdown");
        let acked = ack
            .as_ref()
            .and_then(|a| a.get("shutting_down"))
            .and_then(Json::as_bool)
            == Some(true);
        if acked {
            println!("shutdown: acknowledged");
        } else {
            eprintln!("shutdown: no acknowledgement");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Sends one control verb on a fresh connection and returns the reply.
fn control_round_trip(addr: &str, verb: &str) -> Option<Json> {
    control_line(addr, &format!("{{\"id\":0,\"verb\":\"{verb}\"}}"))
}

/// Sends one request line on a fresh connection and returns the reply.
fn control_line(addr: &str, line: &str) -> Option<Json> {
    let stream = TcpStream::connect(addr).ok()?;
    let read_half = stream.try_clone().ok()?;
    let mut writer = BufWriter::new(stream);
    writer.write_all(line.as_bytes()).ok()?;
    writer.write_all(b"\n").ok()?;
    writer.flush().ok()?;
    let mut reply = String::new();
    BufReader::new(read_half).read_line(&mut reply).ok()?;
    Json::parse(reply.trim()).ok()
}

/// The streaming scenario: the `results/time_to_detection.csv` operating
/// point (M = 10, N = 240, k = 3), so replayed trials carry the same
/// report streams the simulator's figures are built from.
const STREAM_N: usize = 240;
const STREAM_M: usize = 10;
const STREAM_K: usize = 3;

/// The delivery ratio `results/comm_burst.csv` measured for the sensor
/// count closest to `n` — the fraction of a sensing burst that survives
/// radio contention. Missing or malformed CSV degrades to full delivery.
fn burst_delivery_ratio(opts: &Options, n: usize) -> f64 {
    let Ok(text) = std::fs::read_to_string(opts.out_dir.join("comm_burst.csv")) else {
        return 1.0;
    };
    let mut best: Option<(usize, f64)> = None;
    for line in text.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 2 {
            continue;
        }
        let (Ok(row_n), Ok(ratio)) = (fields[0].parse::<usize>(), fields[1].parse::<f64>())
        else {
            continue;
        };
        let distance = row_n.abs_diff(n);
        if best.is_none_or(|(b, _)| distance < b) {
            best = Some((distance, ratio));
        }
    }
    best.map_or(1.0, |(_, ratio)| ratio.clamp(0.0, 1.0))
}

/// Deterministic per-report delivery coin flip (splitmix-style hash of
/// seed/trial/index), so reruns thin the same reports.
fn delivered(seed: u64, trial: u64, index: u64, ratio: f64) -> bool {
    if ratio >= 1.0 {
        return true;
    }
    let mut x = seed
        ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) < ratio
}

#[derive(Default)]
struct StreamClientResult {
    reports: u64,
    events: u64,
    trials: u64,
    trials_detected: u64,
    event_latencies_us: Vec<u64>,
}

/// One streaming client: opens a session, replays `opts.requests`
/// simulated trials as per-period report bursts (periods offset per
/// trial by more than the window M, so tracks can never chain across
/// trials), reads back pushed detection events, and closes. The close
/// ack's totals must match what the client counted.
fn drive_stream_session(
    client: usize,
    ratio: f64,
    opts: &Options,
) -> Result<StreamClientResult, String> {
    use gbd_core::params::SystemParams;
    let params = SystemParams::paper_defaults()
        .with_m_periods(STREAM_M)
        .with_n_sensors(STREAM_N)
        .with_k(STREAM_K);
    let config = gbd_sim::config::SimConfig::new(params).with_seed(opts.seed);

    let stream =
        TcpStream::connect(&opts.addr).map_err(|e| format!("client {client} connect: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let read_half = stream.try_clone().map_err(|e| e.to_string())?;
    let mut writer = BufWriter::new(stream);
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let recv = |reader: &mut BufReader<TcpStream>, line: &mut String| -> Result<Json, String> {
        line.clear();
        match reader.read_line(line) {
            Ok(0) => Err("session closed by server".to_string()),
            Err(e) => Err(format!("session read: {e}")),
            Ok(_) => Json::parse(line.trim()).map_err(|e| format!("session line: {e}")),
        }
    };

    let open = format!(
        "{{\"id\":1,\"verb\":\"stream_open\",\"params\":{{\"n\":{STREAM_N},\"m\":{STREAM_M},\"k\":{STREAM_K}}},\"boundary\":\"torus\"}}\n"
    );
    writer
        .write_all(open.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("stream_open: {e}"))?;
    let ack = recv(&mut reader, &mut line)?;
    if ack.get("streaming").and_then(Json::as_bool) != Some(true) {
        return Err(format!("stream_open rejected: {}", line.trim()));
    }

    let per_client_rate = if opts.rate > 0.0 {
        opts.rate / opts.clients as f64
    } else {
        0.0
    };
    let start = Instant::now();
    let mut result = StreamClientResult::default();
    // Gap between trials exceeds the window M, so a track from one trial
    // can never extend a chain into the next.
    let stride = 2 * STREAM_M;
    let mut next_id = 10u64;
    let mut bursts = 0u64;
    for i in 0..opts.requests {
        let trial = (client * opts.requests + i) as u64;
        let outcome = gbd_sim::engine::run_trial(&config, trial);
        let offset = i * stride;
        let mut trial_events = 0u64;
        let mut index = 0u64;
        let reports = &outcome.reports;
        let mut r = 0;
        while r < reports.len() {
            let period = reports[r].period;
            let mut burst = Vec::new();
            while r < reports.len() && reports[r].period == period {
                if delivered(opts.seed, trial, index, ratio) {
                    let report = &reports[r];
                    burst.push(Json::obj(vec![
                        ("sensor".to_string(), Json::from(report.sensor.0)),
                        ("period".to_string(), Json::from(report.period + offset)),
                        ("x".to_string(), Json::Num(report.position.x)),
                        ("y".to_string(), Json::Num(report.position.y)),
                    ]));
                }
                index += 1;
                r += 1;
            }
            if burst.is_empty() {
                continue;
            }
            if per_client_rate > 0.0 {
                let due = start + Duration::from_secs_f64(bursts as f64 / per_client_rate);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let burst_len = burst.len() as u64;
            let request = Json::obj(vec![
                ("id".to_string(), Json::from(next_id)),
                ("verb".to_string(), Json::from("report")),
                ("reports".to_string(), Json::Arr(burst)),
            ]);
            writer
                .write_all(request.render().as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .map_err(|e| format!("report burst: {e}"))?;
            let sent_at = Instant::now();
            let ack = recv(&mut reader, &mut line)?;
            if ack.get("id").and_then(Json::as_u64) != Some(next_id)
                || ack.get("ok").and_then(Json::as_bool) != Some(true)
            {
                return Err(format!("burst {next_id} not acked: {}", line.trim()));
            }
            let ingested = ack.get("ingested").and_then(Json::as_u64).unwrap_or(0);
            if ingested != burst_len {
                return Err(format!(
                    "burst {next_id}: sent {burst_len} reports, server ingested {ingested}"
                ));
            }
            result.reports += ingested;
            let events = ack.get("events").and_then(Json::as_u64).unwrap_or(0);
            for _ in 0..events {
                let event = recv(&mut reader, &mut line)?;
                if event.get("event").is_none() {
                    return Err(format!("expected event line, got: {}", line.trim()));
                }
                result
                    .event_latencies_us
                    .push(u64::try_from(sent_at.elapsed().as_micros()).unwrap_or(u64::MAX));
                result.events += 1;
                trial_events += 1;
            }
            next_id += 1;
            bursts += 1;
        }
        result.trials += 1;
        if trial_events > 0 {
            result.trials_detected += 1;
        }
    }

    writer
        .write_all(format!("{{\"id\":{next_id},\"verb\":\"stream_close\"}}\n").as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("stream_close: {e}"))?;
    let end = recv(&mut reader, &mut line)?;
    if end.get("stream_end").and_then(Json::as_bool) != Some(true) {
        return Err(format!("stream_close not acked: {}", line.trim()));
    }
    let closed_reports = end.get("reports").and_then(Json::as_u64);
    let closed_events = end.get("events").and_then(Json::as_u64);
    if closed_reports != Some(result.reports) || closed_events != Some(result.events) {
        return Err(format!(
            "close ack counts {closed_reports:?}/{closed_events:?} disagree with client {}/{}",
            result.reports, result.events
        ));
    }
    Ok(result)
}

/// The `--report-stream` driver: one session per client, simulator-fed
/// report bursts, per-event report→detection latency percentiles, and
/// (with `--assert-stream`) reconciliation against the server's `stream`
/// metrics section.
fn run_report_stream(opts: &Arc<Options>) -> ExitCode {
    let ratio = burst_delivery_ratio(opts, STREAM_N);
    let start = Instant::now();
    let workers: Vec<_> = (0..opts.clients)
        .map(|client| {
            let opts = Arc::clone(opts);
            std::thread::spawn(move || drive_stream_session(client, ratio, &opts))
        })
        .collect();
    let mut failed = false;
    let mut total = StreamClientResult::default();
    for worker in workers {
        match worker.join() {
            Ok(Ok(result)) => {
                total.reports += result.reports;
                total.events += result.events;
                total.trials += result.trials;
                total.trials_detected += result.trials_detected;
                total.event_latencies_us.extend(result.event_latencies_us);
            }
            Ok(Err(e)) => {
                eprintln!("report-stream: FAILED — {e}");
                failed = true;
            }
            Err(_) => {
                eprintln!("report-stream: FAILED — client thread panicked");
                failed = true;
            }
        }
    }
    let elapsed = start.elapsed();
    total.event_latencies_us.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&total.event_latencies_us, 0.50),
        percentile(&total.event_latencies_us, 0.95),
        percentile(&total.event_latencies_us, 0.99),
    );
    let throughput = total.reports as f64 / elapsed.as_secs_f64();

    if opts.json {
        println!(
            "{}",
            Json::obj(vec![
                ("mode".to_string(), Json::from("report-stream")),
                ("sessions".to_string(), Json::from(opts.clients)),
                ("trials_per_session".to_string(), Json::from(opts.requests)),
                ("delivery_ratio".to_string(), Json::Num(ratio)),
                ("reports".to_string(), Json::from(total.reports)),
                ("events".to_string(), Json::from(total.events)),
                ("trials".to_string(), Json::from(total.trials)),
                (
                    "trials_detected".to_string(),
                    Json::from(total.trials_detected),
                ),
                ("elapsed_s".to_string(), Json::Num(elapsed.as_secs_f64())),
                ("reports_per_s".to_string(), Json::Num(throughput)),
                ("event_p50_us".to_string(), Json::from(p50)),
                ("event_p95_us".to_string(), Json::from(p95)),
                ("event_p99_us".to_string(), Json::from(p99)),
            ])
            .render()
        );
    } else {
        println!(
            "report-stream: {} sessions x {} trials against {} (delivery ratio {ratio:.2})",
            opts.clients, opts.requests, opts.addr
        );
        println!(
            "  {} reports, {} detection events ({} of {} trials detected) in {:.2} s",
            total.reports,
            total.events,
            total.trials_detected,
            total.trials,
            elapsed.as_secs_f64()
        );
        println!("  ingest {throughput:.0} reports/s");
        println!("  report→detection latency p50 {p50} µs, p95 {p95} µs, p99 {p99} µs");
    }

    let mut csv = Csv::create(
        &opts.out_dir,
        "loadgen_stream.csv",
        &[
            "sessions",
            "trials_per_session",
            "delivery_ratio",
            "reports",
            "events",
            "trials_detected",
            "elapsed_s",
            "reports_per_s",
            "event_p50_us",
            "event_p95_us",
            "event_p99_us",
        ],
    );
    csv.row(&[
        opts.clients.to_string(),
        opts.requests.to_string(),
        format!("{ratio:.4}"),
        total.reports.to_string(),
        total.events.to_string(),
        total.trials_detected.to_string(),
        format!("{:.3}", elapsed.as_secs_f64()),
        format!("{throughput:.1}"),
        p50.to_string(),
        p95.to_string(),
        p99.to_string(),
    ]);
    csv.finish();

    if opts.assert_stream {
        let metrics = control_line(
            &opts.addr,
            "{\"id\":0,\"verb\":\"metrics\",\"sections\":[\"stream\"]}",
        );
        let field = |key: &str| {
            metrics
                .as_ref()
                .and_then(|m| m.get("metrics"))
                .and_then(|m| m.get("stream"))
                .and_then(|s| s.get(key))
                .and_then(Json::as_u64)
        };
        let check = |key: &str, expected: u64| {
            let got = field(key);
            if got != Some(expected) {
                eprintln!("assert-stream: FAILED — {key} = {got:?}, wanted {expected}");
                true
            } else {
                false
            }
        };
        let mut stream_failed = false;
        stream_failed |= check("reports", total.reports);
        stream_failed |= check("events", total.events);
        stream_failed |= check("sessions_opened", opts.clients as u64);
        stream_failed |= check("sessions_closed", opts.clients as u64);
        stream_failed |= check("open_sessions", 0);
        if total.events == 0 {
            eprintln!("assert-stream: FAILED — no detection events fired");
            stream_failed = true;
        }
        if stream_failed {
            failed = true;
        } else {
            println!(
                "assert-stream: ok ({} reports and {} events reconciled, sessions drained)",
                total.reports, total.events
            );
        }
    }
    if opts.shutdown {
        let ack = control_round_trip(&opts.addr, "shutdown");
        let acked = ack
            .as_ref()
            .and_then(|a| a.get("shutting_down"))
            .and_then(Json::as_bool)
            == Some(true);
        if acked {
            println!("shutdown: acknowledged");
        } else {
            eprintln!("shutdown: no acknowledgement");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// What a `watch` client observed: window count, the first replayed
/// sequence number, and the telescoping check inputs for `evaluated`.
struct WatchReport {
    windows: u64,
    first_seq: u64,
    evaluated_delta_sum: u64,
    evaluated_total_last: u64,
    lagged: u64,
}

/// Attaches an unbounded streaming `watch` subscription with replay and
/// reads window lines until the server's `evaluated` lifetime total
/// reaches `expected` (the requests this run completed), then sends
/// `unwatch` and consumes the terminator and ack. Because replay starts at
/// the first ring window and deltas telescope, the sum of `evaluated`
/// deltas must equal the last window's `evaluated` total. `max_live`
/// bounds how many windows past the replay ring we wait for the total to
/// catch up.
fn run_watch(addr: &str, max_live: u64, expected: u64) -> Result<WatchReport, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("read timeout: {e}"))?;
    let read_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut writer = BufWriter::new(stream);
    writer
        .write_all(b"{\"id\":0,\"verb\":\"watch\",\"replay\":true}\n")
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send watch: {e}"))?;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("watch ack: {e}"))?;
    let ack = Json::parse(line.trim()).map_err(|e| format!("watch ack: {e}"))?;
    if ack.get("watching").and_then(Json::as_bool) != Some(true) {
        return Err(format!("watch not acknowledged: {}", line.trim()));
    }
    let mut report = WatchReport {
        windows: 0,
        first_seq: 0,
        evaluated_delta_sum: 0,
        evaluated_total_last: 0,
        lagged: 0,
    };
    // The replay backlog can be as deep as the ring; only windows beyond
    // that count against the live budget.
    let budget = 120 + max_live;
    while report.evaluated_total_last < expected || report.windows == 0 {
        if report.windows >= budget {
            return Err(format!(
                "evaluated total stuck at {} (wanted {expected}) after {} windows",
                report.evaluated_total_last, report.windows
            ));
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("stream closed mid-watch".to_string()),
            Err(e) => return Err(format!("watch stream: {e}")),
            Ok(_) => {}
        }
        let msg = Json::parse(line.trim()).map_err(|e| format!("watch line: {e}"))?;
        let window = msg
            .get("window")
            .ok_or_else(|| format!("unexpected watch line: {}", line.trim()))?;
        let seq = window
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("window without seq: {}", line.trim()))?;
        if report.windows == 0 {
            report.first_seq = seq;
        }
        if let Some(evaluated) = window.get("counters").and_then(|c| c.get("evaluated")) {
            report.evaluated_delta_sum +=
                evaluated.get("delta").and_then(Json::as_u64).unwrap_or(0);
            report.evaluated_total_last =
                evaluated.get("total").and_then(Json::as_u64).unwrap_or(0);
        }
        report.lagged += msg.get("lagged").and_then(Json::as_u64).unwrap_or(0);
        report.windows += 1;
    }
    // Cancel the stream: the server ends it with a terminator, then acks.
    writer
        .write_all(b"{\"id\":1,\"verb\":\"unwatch\"}\n")
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send unwatch: {e}"))?;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("stream closed before watch_end".to_string()),
            Err(e) => return Err(format!("watch drain: {e}")),
            Ok(_) => {}
        }
        let msg = Json::parse(line.trim()).map_err(|e| format!("watch line: {e}"))?;
        if msg.get("watch_end").and_then(Json::as_bool) == Some(true) {
            break;
        }
        // Windows still in flight before the cancel landed.
        if msg.get("window").is_none() {
            return Err(format!("unexpected watch line: {}", line.trim()));
        }
    }
    line.clear();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("unwatch ack: {e}"))?;
    let ack = Json::parse(line.trim()).map_err(|e| format!("unwatch ack: {e}"))?;
    if ack.get("unwatched").and_then(Json::as_u64) != Some(1) {
        return Err(format!("unwatch not acknowledged: {}", line.trim()));
    }
    Ok(report)
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// What one warm-start pass (boot + sweep) measured.
struct WarmPass {
    /// Boot (including store recovery) plus sweep, in seconds. Control
    /// verbs and drain are excluded.
    elapsed_s: f64,
    /// Rendered `detection` arrays in request order — the exact wire
    /// text, so equality is bit-identity of every probability.
    detections: Vec<String>,
    errors: u64,
    store_loads: u64,
    store_spills: u64,
}

/// Boots an in-process server over the store at `path`, drives
/// `opts.requests` requests on one connection, reads the `store` verb,
/// and drains (which snapshots the store for the next pass).
fn warm_pass(opts: &Options, path: &std::path::Path) -> Result<WarmPass, String> {
    let t = Instant::now();
    let engine = gbd_engine::Engine::new()
        .with_store(path)
        .map_err(|e| format!("cannot open store {}: {e}", path.display()))?;
    let config = gbd_serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..gbd_serve::ServeConfig::default()
    };
    let server = gbd_serve::Server::bind(config, Arc::new(engine))
        .map_err(|e| format!("cannot bind in-process server: {e}"))?;
    let addr = server.local_addr().to_string();
    let run = std::thread::spawn(move || server.run());

    let drive = || -> Result<(Vec<String>, u64), String> {
        let stream =
            TcpStream::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let read_half = stream.try_clone().map_err(|e| e.to_string())?;
        let mut writer = BufWriter::new(stream);
        let mut reader = BufReader::new(read_half);
        let mut detections = Vec::with_capacity(opts.requests);
        let mut errors = 0u64;
        for seq in 0..opts.requests {
            let line = request_line(seq, seq as u64, opts);
            writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.flush())
                .map_err(|e| format!("request {seq}: {e}"))?;
            let mut reply = String::new();
            reader
                .read_line(&mut reply)
                .map_err(|e| format!("response {seq}: {e}"))?;
            let response =
                Json::parse(reply.trim()).map_err(|e| format!("response {seq}: {e}"))?;
            match response.get("detection") {
                Some(detection) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                    detections.push(detection.render());
                }
                _ => {
                    errors += 1;
                    detections.push("error".to_string());
                }
            }
        }
        Ok((detections, errors))
    };
    let driven = drive();
    let elapsed_s = t.elapsed().as_secs_f64();

    let store = control_round_trip(&addr, "store");
    let store_field = |key: &str| {
        store
            .as_ref()
            .and_then(|s| s.get("store"))
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
    };
    let store_loads = store_field("loads").unwrap_or(0);
    let store_spills = store_field("spills").unwrap_or(0);
    let _ = control_round_trip(&addr, "shutdown");
    let _ = run.join();
    let (detections, errors) = driven?;
    Ok(WarmPass {
        elapsed_s,
        detections,
        errors,
        store_loads,
        store_spills,
    })
}

/// The `--warmstart` benchmark: cold pass over a fresh store, warm pass
/// over the same store, bit-identity and warm-load assertions, ratio
/// report.
fn run_warmstart(opts: &Options, path: &std::path::Path) -> ExitCode {
    let _ = std::fs::remove_file(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && std::fs::create_dir_all(parent).is_err() {
            eprintln!("warmstart: cannot create {}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    let cold = match warm_pass(opts, path) {
        Ok(pass) => pass,
        Err(e) => {
            eprintln!("warmstart cold pass: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm = match warm_pass(opts, path) {
        Ok(pass) => pass,
        Err(e) => {
            eprintln!("warmstart warm pass: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    if cold.errors > 0 || warm.errors > 0 {
        eprintln!(
            "warmstart: FAILED — {} cold / {} warm requests errored",
            cold.errors, warm.errors
        );
        failed = true;
    }
    let identical = cold.detections == warm.detections;
    if !identical {
        let diverged = cold
            .detections
            .iter()
            .zip(&warm.detections)
            .position(|(c, w)| c != w);
        eprintln!(
            "warmstart: FAILED — warm responses not bit-identical (first divergence at request {diverged:?})"
        );
        failed = true;
    }
    if warm.store_loads == 0 {
        eprintln!("warmstart: FAILED — warm boot loaded nothing from the store");
        failed = true;
    }
    let ratio = cold.elapsed_s / warm.elapsed_s.max(1e-9);
    if opts.json {
        println!(
            "{}",
            Json::obj(vec![
                ("mode".to_string(), Json::from("warmstart")),
                ("store".to_string(), Json::from(path.display().to_string()),),
                ("requests".to_string(), Json::from(opts.requests)),
                ("cold_s".to_string(), Json::Num(cold.elapsed_s)),
                ("warm_s".to_string(), Json::Num(warm.elapsed_s)),
                ("warm_ratio".to_string(), Json::Num(ratio)),
                ("cold_spills".to_string(), Json::from(cold.store_spills)),
                ("warm_loads".to_string(), Json::from(warm.store_loads)),
                ("bit_identical".to_string(), Json::Bool(identical)),
            ])
            .render()
        );
    } else {
        println!(
            "warmstart: {} requests against {}",
            opts.requests,
            path.display()
        );
        println!(
            "  cold boot + sweep {:.3} s ({} records spilled)",
            cold.elapsed_s, cold.store_spills
        );
        println!(
            "  warm boot + sweep {:.3} s ({} records loaded)",
            warm.elapsed_s, warm.store_loads
        );
        println!("  warm ratio {ratio:.2}x, bit-identical: {identical}");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let opts = Arc::new(parse_args());
    if opts.clients == 0 || opts.requests == 0 {
        usage();
    }
    if let Some(path) = opts.warmstart.clone() {
        return run_warmstart(&opts, &path);
    }
    if opts.router {
        return run_router(&opts);
    }
    if opts.report_stream {
        return run_report_stream(&opts);
    }
    let start = Instant::now();
    let workers: Vec<_> = (0..opts.clients)
        .map(|client| {
            let opts = Arc::clone(&opts);
            std::thread::spawn(move || run_client(client, &opts))
        })
        .collect();
    let results: Vec<ClientResult> = workers
        .into_iter()
        .map(|w| {
            w.join().unwrap_or_else(|_| ClientResult {
                latencies_us: Vec::new(),
                ok: 0,
                errors: 0,
                io_failure: true,
            })
        })
        .collect();
    let elapsed = start.elapsed();

    let io_failures = results.iter().filter(|r| r.io_failure).count();
    let ok: u64 = results.iter().map(|r| r.ok).sum();
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let throughput = completed as f64 / elapsed.as_secs_f64();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );

    // Server-side view: coalescing factor and shed count via `stats`.
    let stats = control_round_trip(&opts.addr, "stats");
    let coalescing = stats
        .as_ref()
        .and_then(|s| s.get("stats"))
        .and_then(|s| s.get("coalescing_factor"))
        .and_then(Json::as_f64);
    let shed = stats
        .as_ref()
        .and_then(|s| s.get("stats"))
        .and_then(|s| s.get("shed"))
        .and_then(Json::as_u64);
    // Server-side latency decomposition: time spent waiting in the
    // coalescer queue vs engine compute, both at p50.
    let split_p50 = |key: &str| {
        stats
            .as_ref()
            .and_then(|s| s.get("stats"))
            .and_then(|s| s.get(key))
            .and_then(|h| h.get("p50"))
            .and_then(Json::as_u64)
    };
    let queue_wait_p50 = split_p50("queue_wait_us");
    let compute_p50 = split_p50("compute_us");

    if opts.json {
        println!(
            "{}",
            Json::obj(vec![
                ("clients".to_string(), Json::from(opts.clients)),
                ("requests_per_client".to_string(), Json::from(opts.requests)),
                ("completed".to_string(), Json::from(completed)),
                ("ok".to_string(), Json::from(ok)),
                ("errors".to_string(), Json::from(errors)),
                ("io_failures".to_string(), Json::from(io_failures)),
                ("elapsed_s".to_string(), Json::Num(elapsed.as_secs_f64())),
                ("throughput_rps".to_string(), Json::Num(throughput)),
                ("p50_us".to_string(), Json::from(p50)),
                ("p95_us".to_string(), Json::from(p95)),
                ("p99_us".to_string(), Json::from(p99)),
                (
                    "coalescing_factor".to_string(),
                    coalescing.map_or(Json::Null, Json::Num),
                ),
                ("shed".to_string(), shed.map_or(Json::Null, Json::from)),
                (
                    "server_queue_wait_p50_us".to_string(),
                    queue_wait_p50.map_or(Json::Null, Json::from),
                ),
                (
                    "server_compute_p50_us".to_string(),
                    compute_p50.map_or(Json::Null, Json::from),
                ),
            ])
            .render()
        );
    } else {
        println!(
            "loadgen: {} clients x {} requests against {}",
            opts.clients, opts.requests, opts.addr
        );
        println!(
            "  completed {completed} ({ok} ok, {errors} errors, {io_failures} client failures) in {:.2} s",
            elapsed.as_secs_f64()
        );
        println!("  throughput {throughput:.1} req/s");
        println!("  latency p50 {p50} µs, p95 {p95} µs, p99 {p99} µs");
        if let (Some(factor), Some(shed)) = (coalescing, shed) {
            println!("  server: coalescing {factor:.2}x, shed {shed}");
        }
        if let (Some(wait), Some(compute)) = (queue_wait_p50, compute_p50) {
            let total = (wait + compute).max(1);
            println!(
                "  server p50 split: queue wait {wait} µs ({:.0}%), compute {compute} µs ({:.0}%)",
                100.0 * wait as f64 / total as f64,
                100.0 * compute as f64 / total as f64,
            );
        }
    }

    let mut csv = Csv::create(
        &opts.out_dir,
        "loadgen.csv",
        &[
            "clients",
            "requests_per_client",
            "completed",
            "ok",
            "errors",
            "elapsed_s",
            "throughput_rps",
            "p50_us",
            "p95_us",
            "p99_us",
            "coalescing_factor",
            "shed",
            "server_queue_wait_p50_us",
            "server_compute_p50_us",
        ],
    );
    csv.row(&[
        opts.clients.to_string(),
        opts.requests.to_string(),
        completed.to_string(),
        ok.to_string(),
        errors.to_string(),
        format!("{:.3}", elapsed.as_secs_f64()),
        format!("{throughput:.1}"),
        p50.to_string(),
        p95.to_string(),
        p99.to_string(),
        coalescing.map_or_else(|| "-".to_string(), |v| format!("{v:.3}")),
        shed.map_or_else(|| "-".to_string(), |v| v.to_string()),
        queue_wait_p50.map_or_else(|| "-".to_string(), |v| v.to_string()),
        compute_p50.map_or_else(|| "-".to_string(), |v| v.to_string()),
    ]);
    csv.finish();

    let mut failed = io_failures > 0;
    if opts.assert_coalescing {
        match coalescing {
            Some(factor) if factor > 1.0 => {
                println!("assert-coalescing: ok ({factor:.2}x)");
            }
            other => {
                eprintln!("assert-coalescing: FAILED (factor = {other:?})");
                failed = true;
            }
        }
    }
    if opts.assert_split {
        // Sum-level decomposition from the versioned `metrics` verb: every
        // request's latency is its queue wait plus its batch compute, so
        // the histogram sums must agree (within tolerance for timer skew).
        let metrics = control_round_trip(&opts.addr, "metrics");
        let hist_sum = |key: &str| {
            metrics
                .as_ref()
                .and_then(|m| m.get("metrics"))
                .and_then(|m| m.get("histograms"))
                .and_then(|h| h.get(key))
                .and_then(|h| h.get("sum_us"))
                .and_then(Json::as_u64)
        };
        match (
            hist_sum("latency_us"),
            hist_sum("queue_wait_us"),
            hist_sum("compute_us"),
        ) {
            (Some(latency), Some(wait), Some(compute)) if latency > 0 => {
                let gap = (wait + compute).abs_diff(latency);
                if 4 * gap <= latency {
                    println!(
                        "assert-split: ok (queue wait {wait} µs + compute {compute} µs ≈ latency {latency} µs)"
                    );
                } else {
                    eprintln!(
                        "assert-split: FAILED (queue wait {wait} + compute {compute} vs latency {latency} µs)"
                    );
                    failed = true;
                }
            }
            other => {
                eprintln!("assert-split: FAILED (histogram sums unavailable: {other:?})");
                failed = true;
            }
        }
    }
    if opts.watch_windows > 0 {
        match run_watch(&opts.addr, opts.watch_windows, ok) {
            Ok(report) => {
                let mut watch_failed = false;
                if report.first_seq != 1 {
                    eprintln!(
                        "watch: FAILED (replay started at seq {}, ring overflowed)",
                        report.first_seq
                    );
                    watch_failed = true;
                }
                if report.evaluated_delta_sum != report.evaluated_total_last {
                    eprintln!(
                        "watch: FAILED (evaluated deltas sum to {} but lifetime total is {})",
                        report.evaluated_delta_sum, report.evaluated_total_last
                    );
                    watch_failed = true;
                }
                if report.evaluated_total_last < ok {
                    eprintln!(
                        "watch: FAILED (windows show {} evaluations but the run completed {ok})",
                        report.evaluated_total_last
                    );
                    watch_failed = true;
                }
                if watch_failed {
                    failed = true;
                } else {
                    println!(
                        "watch: ok ({} windows, evaluated deltas telescope to {}, {} lagged)",
                        report.windows, report.evaluated_total_last, report.lagged
                    );
                }
            }
            Err(e) => {
                eprintln!("watch: FAILED ({e})");
                failed = true;
            }
        }
    }
    if opts.shutdown {
        let ack = control_round_trip(&opts.addr, "shutdown");
        let acked = ack
            .as_ref()
            .and_then(|a| a.get("shutting_down"))
            .and_then(Json::as_bool)
            == Some(true);
        if acked {
            println!("shutdown: acknowledged");
        } else {
            eprintln!("shutdown: no acknowledgement");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
