//! Extension: time-to-detection curves — `P[detected by period m]` from
//! the arrival-attributed chain, the exact T-approach and simulation.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin time_to_detection -- --trials 4000
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_core::time_to_detection;
use gbd_sim::config::SimConfig;
use gbd_sim::engine::run_trial;

fn main() {
    let opts = ExpOptions::from_args(4_000);
    // Reduced window/caps keep the exact (T-approach) computation light.
    let params = SystemParams::paper_defaults()
        .with_m_periods(10)
        .with_n_sensors(240)
        .with_k(3);
    let chain_opts = MsOptions {
        g: 3,
        gh: 3,
        eps: 0.0,
    };

    let fast = time_to_detection::analyze(&params, &chain_opts).unwrap();
    let exact = time_to_detection::analyze_exact(&params, &chain_opts, 50_000_000).unwrap();

    let config = SimConfig::new(params)
        .with_trials(opts.trials)
        .with_seed(opts.seed);
    let m = params.m_periods();
    let mut sim_counts = vec![0u64; m];
    for trial in 0..opts.trials {
        let out = run_trial(&config, trial);
        if let Some(p) = out.first_detection_period(params.k()) {
            for slot in sim_counts.iter_mut().skip(p - 1) {
                *slot += 1;
            }
        }
    }
    let sim: Vec<f64> = sim_counts
        .iter()
        .map(|&c| c as f64 / opts.trials as f64)
        .collect();

    println!(
        "Time to detection (N = 240, k = 3, M = 10, {} trials): P[detected by period m]\n",
        opts.trials
    );
    println!("   m | arrival-attributed | exact (T-approach) | simulation");
    println!(" ----+--------------------+--------------------+-----------");
    let mut csv = Csv::create(
        &opts.out_dir,
        "time_to_detection.csv",
        &["period", "arrival_attributed", "exact", "simulation"],
    );
    for (i, &sim_p) in sim.iter().enumerate().take(m) {
        println!(
            "  {:2} |       {:.4}       |       {:.4}       |   {:.4}",
            i + 1,
            fast.by_period[i],
            exact.by_period[i],
            sim_p
        );
        csv.row(&[
            (i + 1).to_string(),
            f(fast.by_period[i]),
            f(exact.by_period[i]),
            f(sim_p),
        ]);
    }
    csv.finish();
    println!(
        "\nmean detection period (given detected): arrival-attributed {:.2}, exact {:.2}",
        fast.mean_period_given_detected().unwrap_or(f64::NAN),
        exact.mean_period_given_detected().unwrap_or(f64::NAN)
    );
    println!("\nShape: the exact curve lies on the simulation; the fast curve is the");
    println!("same endpoint shifted early by up to ms periods (reports are credited");
    println!("to their sensor's arrival period). Use the fast curve for window");
    println!("probabilities, the exact curve when timing matters.");
}
