//! Design-space exploration: the model as the design tool the paper's
//! conclusion promises.
//!
//! Three tables: (1) parameter sensitivities around the paper's operating
//! point, (2) inverse solves (sensors / range / area for a target
//! probability), (3) fleet-mix comparisons only the heterogeneous exact
//! model can answer.
//!
//! The sensitivity table is one engine batch over the exact backend — the
//! operating point plus a ±20 % perturbation per parameter.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin design_space
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::design::{max_field_side, required_sensing_range, required_sensors};
use gbd_core::exact::{self, SensorClass};
use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, Engine, EvalRequest};

fn main() {
    let opts = ExpOptions::from_args(0);
    let base = SystemParams::paper_defaults().with_n_sensors(150);
    let exact_backend = BackendSpec::Exact { saturation_cap: 32 };

    // One batch: the operating point, then (lo, hi) per sensitivity row.
    let variations: Vec<(&str, SystemParams, SystemParams)> = vec![
        (
            "sensors N",
            base.with_n_sensors(120),
            base.with_n_sensors(180),
        ),
        (
            "range Rs",
            base.with_sensing_range(800.0),
            base.with_sensing_range(1200.0),
        ),
        ("speed V", base.with_speed(8.0), base.with_speed(12.0)),
        ("pd", base.with_pd(0.72), base.with_pd(1.0)),
        ("window M", base.with_m_periods(16), base.with_m_periods(24)),
        ("threshold k", base.with_k(4), base.with_k(6)),
    ];
    let mut requests = vec![EvalRequest::new(base, exact_backend)];
    for (_, lo, hi) in &variations {
        requests.push(EvalRequest::new(*lo, exact_backend));
        requests.push(EvalRequest::new(*hi, exact_backend));
    }
    let engine = Engine::new();
    let responses = engine.evaluate_batch(&requests);
    let p_at = |i: usize| {
        responses[i]
            .detection_probability()
            .expect("valid design-space params")
    };
    let p0 = p_at(0);

    println!("Operating point: N = 150, V = 10 m/s, Rs = 1 km, k = 5, M = 20");
    println!("  P(detect) = {p0:.4}\n");

    println!("== Sensitivities: change one parameter ±20% ==");
    println!("  parameter      |  −20%   |  base   |  +20%");
    let mut csv = Csv::create(
        &opts.out_dir,
        "design_sensitivity.csv",
        &["param", "lo", "base", "hi"],
    );
    for (i, (name, _, _)) in variations.iter().enumerate() {
        let (lo, hi) = (p_at(1 + 2 * i), p_at(2 + 2 * i));
        println!("  {name:14} | {lo:.4}  | {p0:.4}  | {hi:.4}");
        csv.row(&[name.to_string(), f(lo), f(p0), f(hi)]);
    }
    csv.finish();

    println!("\n== Inverse solves for a 0.95 target ==");
    if let Ok(Some(pt)) = required_sensors(&base, 0.95, 2_000) {
        println!(
            "  sensors needed at Rs = 1 km       : N = {:.0} ({:.4})",
            pt.value, pt.achieved
        );
    }
    if let Ok(Some(pt)) = required_sensing_range(&base, 0.95, 200.0, 5_000.0) {
        println!(
            "  range needed at N = 150           : Rs = {:.0} m ({:.4})",
            pt.value, pt.achieved
        );
    }
    if let Ok(Some(pt)) = max_field_side(&base, 0.95, 10_000.0, 64_000.0) {
        println!(
            "  max field side at N = 150         : {:.0} m ({:.4})",
            pt.value, pt.achieved
        );
    }

    println!("\n== Fleet mixes at a fixed 'hardware budget' (Σ N·Rs constant) ==");
    println!("  (swept area per period is proportional to Σ N·Rs, so these fleets");
    println!("   generate the same mean report rate; the distribution still differs)");
    println!("  fleet                                   | P(detect)");
    let mut csv2 = Csv::create(&opts.out_dir, "design_fleets.csv", &["fleet", "p"]);
    let fleets: Vec<(&str, Vec<SensorClass>)> = vec![
        (
            "300 x 500 m",
            vec![SensorClass {
                count: 300,
                sensing_range: 500.0,
                pd: 0.9,
            }],
        ),
        (
            "150 x 1000 m",
            vec![SensorClass {
                count: 150,
                sensing_range: 1000.0,
                pd: 0.9,
            }],
        ),
        (
            "75 x 2000 m",
            vec![SensorClass {
                count: 75,
                sensing_range: 2000.0,
                pd: 0.9,
            }],
        ),
        (
            "100 x 1000 m + 100 x 500 m",
            vec![
                SensorClass {
                    count: 100,
                    sensing_range: 1000.0,
                    pd: 0.9,
                },
                SensorClass {
                    count: 100,
                    sensing_range: 500.0,
                    pd: 0.9,
                },
            ],
        ),
    ];
    for (name, classes) in fleets {
        let p = exact::detection_probability_classes(&base, &classes, base.k());
        println!("  {name:39} |  {p:.4}");
        csv2.row(&[name.to_string(), f(p)]);
    }
    csv2.finish();
    println!("\nShape: at equal Σ N·Rs, FEWER LARGER sensors win decisively: the");
    println!("static π·Rs² term of each Detectable Region scales quadratically with");
    println!("range, and one long-range sensor can supply several of the k = 5");
    println!("reports by covering the target across ms+1 periods. The closed-form");
    println!("model resolves this procurement trade-off without simulation.");
}
