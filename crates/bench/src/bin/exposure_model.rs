//! Footnote 1 revisited: does `Pd`'s independence from the overlap length
//! matter?
//!
//! The exposure model detects with `p = 1 − exp(−overlap/ell)`, calibrated
//! so the *mean* per-covered-period probability equals the paper's `Pd`.
//! If the paper's simplification is benign, the calibrated exposure
//! simulation should land on the uniform-`Pd` analysis.
//!
//! ```text
//! cargo run --release -p gbd-bench --bin exposure_model -- --trials 4000
//! ```

use gbd_bench::{f, Csv, ExpOptions};
use gbd_core::exact;
use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::exposure::{calibrate_ell, simulate_exposure};
use gbd_sim::runner::run;

fn main() {
    let opts = ExpOptions::from_args(4_000);
    let base = SystemParams::paper_defaults();
    let ell = calibrate_ell(&base, 40_000, opts.seed);
    println!(
        "Exposure-dependent sensing (footnote 1): p = 1 − exp(−overlap/ell), \
         ell = {ell:.0} m calibrated to mean Pd = {:.2}\n",
        base.pd()
    );
    println!(
        "   N  |  V  | uniform analysis | uniform sim | exposure sim | exposure − uniform"
    );
    println!(
        " -----+-----+------------------+-------------+--------------+-------------------"
    );

    let mut csv = Csv::create(
        &opts.out_dir,
        "exposure_model.csv",
        &["n", "v", "analysis", "uniform_sim", "exposure_sim", "gap"],
    );
    for v in [4.0, 10.0] {
        for n in [90usize, 150, 240] {
            let params = base.with_n_sensors(n).with_speed(v);
            let analysis = exact::detection_probability(&params, params.k());
            let cfg = SimConfig::new(params)
                .with_trials(opts.trials)
                .with_seed(opts.seed);
            let uniform = run(&cfg).detection_probability;
            let exposure = simulate_exposure(&cfg, ell);
            let gap = exposure - uniform;
            println!(
                "  {n:3} | {v:3} |      {analysis:.4}      |   {uniform:.4}    |    {exposure:.4}    |      {gap:+.4}"
            );
            csv.row(&[
                n.to_string(),
                v.to_string(),
                f(analysis),
                f(uniform),
                f(exposure),
                f(gap),
            ]);
        }
    }
    csv.finish();
    println!("\nShape: at the calibration speed (V = 10) the exposure model lands");
    println!("exactly on the uniform-Pd results — footnote 1's simplification is");
    println!("benign for a single operating point. Across speeds it is not free:");
    println!("ell is a hardware constant, and at V = 4 the shorter per-period");
    println!("paths cut the per-period detection probability, leaving the");
    println!("constant-Pd model ~2 points optimistic for slow targets. That is");
    println!("precisely the correction the paper's future work would need.");
}
