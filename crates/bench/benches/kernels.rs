//! Micro-benchmarks of the flat numeric kernels against their
//! seed-faithful baselines (`gbd_core::baseline`).
//!
//! Each pair measures one layer of the hot analytical path in isolation:
//! the memoized placement pmf table, the in-place stage convolution
//! ladder, the counting-chain step through a reusable scratch arena, and
//! the flat absorbing-chain solver. The full-run pair at the end is the
//! composition the `perf_trajectory` binary reports as the
//! baseline → optimized trajectory. Every optimized kernel is
//! bit-identical to its baseline (pinned by proptests in
//! `gbd_core::baseline`), so these are same-answer speedups.

use criterion::{criterion_group, criterion_main, Criterion};
use gbd_core::baseline;
use gbd_core::ms_approach::{self, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::report_dist::{
    per_sensor_distribution, stage_accuracy_with, stage_distribution_with,
};
use gbd_markov::absorbing::{analyze_absorbing, analyze_absorbing_with};
use gbd_markov::counting::{increment_matrix, CountingChain};
use gbd_markov::scratch::Scratch;
use gbd_stats::binomial::PmfTable;
use gbd_stats::discrete::DiscreteDist;
use std::hint::black_box;

fn paper() -> SystemParams {
    SystemParams::paper_defaults()
}

/// The body-stage input of the paper's operating point: the realistic
/// workload for the stage kernels.
fn body_stage() -> (Vec<f64>, f64, usize, f64, usize) {
    let params = paper();
    let opts = MsOptions::default();
    let inputs = ms_approach::stage_inputs(
        params.sensing_range(),
        &vec![params.step(); params.m_periods()],
        params.n_sensors(),
        &opts,
    )
    .expect("paper point is valid");
    let stage = inputs.last().expect("M >= 1");
    (
        stage.areas.clone(),
        params.field_area(),
        params.n_sensors(),
        params.pd(),
        stage.cap,
    )
}

fn bench_stage_accuracy(c: &mut Criterion) {
    let (areas, field_area, n, _pd, cap) = body_stage();
    let region: f64 = areas.iter().sum();
    c.bench_function("stage_accuracy/baseline_uncached", |b| {
        b.iter(|| baseline::stage_accuracy_baseline(black_box(region), field_area, n, cap))
    });
    let mut table = PmfTable::new();
    c.bench_function("stage_accuracy/flat_pmf_table", |b| {
        b.iter(|| stage_accuracy_with(black_box(region), field_area, n, cap, &mut table))
    });
}

fn bench_stage_distribution(c: &mut Criterion) {
    let (areas, field_area, n, pd, cap) = body_stage();
    c.bench_function("stage_distribution/baseline_allocating", |b| {
        b.iter(|| {
            baseline::stage_distribution_baseline(black_box(&areas), field_area, n, pd, cap)
        })
    });
    let mut qn = DiscreteDist::point_mass(0);
    let mut conv = Vec::new();
    c.bench_function("stage_distribution/flat_in_place", |b| {
        b.iter(|| {
            stage_distribution_with(
                black_box(&areas),
                field_area,
                n,
                pd,
                cap,
                0.0,
                &mut qn,
                &mut conv,
            )
        })
    });
}

fn bench_counting_chain(c: &mut Criterion) {
    let (areas, field_area, n, pd, cap) = body_stage();
    let mut qn = DiscreteDist::point_mass(0);
    let mut conv = Vec::new();
    let (increment, _) =
        stage_distribution_with(&areas, field_area, n, pd, cap, 0.0, &mut qn, &mut conv);
    let m = paper().m_periods();
    let support_cap = m * increment.support_max();
    c.bench_function("counting_chain/step_allocating", |b| {
        b.iter(|| {
            let mut chain = CountingChain::new(support_cap);
            chain.run(black_box(&increment), m);
            chain.into_distribution()
        })
    });
    let mut scratch = Scratch::new();
    c.bench_function("counting_chain/step_with_scratch", |b| {
        b.iter(|| {
            let mut chain = CountingChain::new(support_cap);
            chain.run_with(black_box(&increment), m, &mut scratch);
            chain.into_distribution()
        })
    });
}

fn bench_absorbing_solver(c: &mut Criterion) {
    // A ~200-state counting chain: large enough that the O(n) state
    // classification and the flat elimination dominate.
    let increment = per_sensor_distribution(&[1.0, 2.0, 3.0, 4.0], 0.9);
    let t = increment_matrix(&increment, 200);
    c.bench_function("absorbing/allocating", |b| {
        b.iter(|| analyze_absorbing(black_box(&t)).expect("valid chain"))
    });
    let mut scratch = Scratch::new();
    c.bench_function("absorbing/flat_with_scratch", |b| {
        b.iter(|| analyze_absorbing_with(black_box(&t), &mut scratch).expect("valid chain"))
    });
}

fn bench_full_analysis(c: &mut Criterion) {
    let params = paper();
    let opts = MsOptions::default();
    c.bench_function("full_ms/baseline", |b| {
        b.iter(|| baseline::analyze_baseline(black_box(&params), &opts).expect("paper point"))
    });
    c.bench_function("full_ms/flat", |b| {
        b.iter(|| ms_approach::analyze(black_box(&params), &opts).expect("paper point"))
    });
}

criterion_group!(
    benches,
    bench_stage_accuracy,
    bench_stage_distribution,
    bench_counting_chain,
    bench_absorbing_solver,
    bench_full_analysis
);
criterion_main!(benches);
