//! Benchmarks of the Monte Carlo simulator: per-trial cost and campaign
//! throughput (what makes the paper's 10 000-trial validation cheap here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_core::params::SystemParams;
use gbd_sim::config::{BoundaryPolicy, SimConfig};
use gbd_sim::engine::run_trial;
use gbd_sim::runner::run;
use std::hint::black_box;

fn bench_single_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_trial");
    for n in [60usize, 240] {
        let config = SimConfig::new(SystemParams::paper_defaults().with_n_sensors(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, cfg| {
            let mut trial = 0u64;
            b.iter(|| {
                trial += 1;
                run_trial(black_box(cfg), trial)
            })
        });
    }
    group.finish();
}

fn bench_boundary_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("trial_boundary");
    for (name, policy) in [
        ("torus", BoundaryPolicy::Torus),
        ("bounded", BoundaryPolicy::Bounded),
    ] {
        let config = SimConfig::new(SystemParams::paper_defaults()).with_boundary(policy);
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            let mut trial = 0u64;
            b.iter(|| {
                trial += 1;
                run_trial(black_box(cfg), trial)
            })
        });
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_500_trials");
    group.sample_size(10);
    let config = SimConfig::new(SystemParams::paper_defaults()).with_trials(500);
    group.bench_function("parallel", |b| b.iter(|| run(black_box(&config))));
    let serial = config.clone().with_threads(1);
    group.bench_function("serial", |b| b.iter(|| run(black_box(&serial))));
    group.finish();
}

criterion_group!(
    benches,
    bench_single_trial,
    bench_boundary_policies,
    bench_campaign
);
criterion_main!(benches);
