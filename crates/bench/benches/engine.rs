//! Cold vs warm engine evaluation over the Figure 9(a) analysis grid.
//!
//! `cold` bypasses every cache layer per request (the pre-engine cost of a
//! sweep); `first_pass` is a fresh engine populating its caches as it goes
//! (intra-sweep sharing only); `warm` re-submits the grid to a populated
//! engine (answered from the result layer). The engine's acceptance bar is
//! warm >= 2x faster than cold — in practice it is orders of magnitude.
//!
//! ```text
//! cargo bench -p gbd-bench --bench engine
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, Engine, EvalOptions, EvalRequest};

fn fig9a_grid() -> Vec<EvalRequest> {
    [4.0, 10.0]
        .iter()
        .flat_map(|&v| {
            (60..=240).step_by(30).map(move |n| {
                EvalRequest::new(
                    SystemParams::paper_defaults()
                        .with_n_sensors(n)
                        .with_speed(v),
                    BackendSpec::ms_default(),
                )
            })
        })
        .collect()
}

fn bypassed(grid: &[EvalRequest]) -> Vec<EvalRequest> {
    grid.iter()
        .cloned()
        .map(|mut request| {
            request.options = EvalOptions {
                bypass_cache: true,
                ..request.options.clone()
            };
            request
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let grid = fig9a_grid();
    let cold_grid = bypassed(&grid);
    let mut group = c.benchmark_group("engine_fig9a_grid");
    group.sample_size(10);

    group.bench_function("cold_bypass", |b| {
        let engine = Engine::with_workers(1);
        b.iter(|| engine.evaluate_batch(&cold_grid));
    });

    group.bench_function("first_pass_fresh_engine", |b| {
        b.iter(|| {
            let engine = Engine::with_workers(1);
            engine.evaluate_batch(&grid)
        });
    });

    group.bench_function("warm_repeat", |b| {
        let engine = Engine::with_workers(1);
        let primed = engine.evaluate_batch(&grid);
        assert!(primed.iter().all(|r| r.outcome.is_ok()));
        b.iter(|| engine.evaluate_batch(&grid));
    });

    group.finish();

    // Not a timing: assert the acceptance properties hold where `cargo
    // bench` runs them — warm answers come from the cache and are
    // bit-identical to the bypassed computation.
    let engine = Engine::with_workers(1);
    let cold = engine.evaluate_batch(&cold_grid);
    let first = engine.evaluate_batch(&grid);
    let warm = engine.evaluate_batch(&grid);
    assert!(warm.iter().all(|r| r.cache.hits > 0 && r.cache.misses == 0));
    for ((c, f), w) in cold.iter().zip(&first).zip(&warm) {
        assert_eq!(c.outcome, f.outcome);
        assert_eq!(f.outcome, w.outcome);
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
