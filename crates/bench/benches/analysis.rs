//! Benchmarks of the analytical models.
//!
//! The headline measurement behind §3.4.5: the M-S-approach completes in
//! well under the paper's "1 minute" budget, while the paper-faithful
//! S-approach enumeration grows by a constant factor per unit of `G`
//! (extrapolating to days at the `G` that matches the M-S accuracy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_core::accuracy::required_caps;
use gbd_core::exact;
use gbd_core::ms_approach::{self, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::s_approach::{self, SOptions};
use std::hint::black_box;

fn bench_ms_approach(c: &mut Criterion) {
    let mut group = c.benchmark_group("ms_approach");
    for n in [60usize, 240] {
        for v in [4.0, 10.0] {
            let params = SystemParams::paper_defaults()
                .with_n_sensors(n)
                .with_speed(v);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_v{v}")),
                &params,
                |b, p| {
                    b.iter(|| {
                        ms_approach::analyze(black_box(p), &MsOptions::default()).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_ms_approach_caps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ms_approach_caps");
    let params = SystemParams::paper_defaults();
    for caps in [1usize, 3, 6, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(caps), &caps, |b, &g| {
            b.iter(|| {
                ms_approach::analyze(black_box(&params), &MsOptions { g, gh: g, eps: 0.0 })
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_s_approach_enumeration(c: &mut Criterion) {
    // The exponential: each +1 in G multiplies the time by ~Σ(i+1) ≈ 20.
    let mut group = c.benchmark_group("s_approach_enumeration");
    group.sample_size(10);
    let params = SystemParams::paper_defaults();
    for g in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| {
                s_approach::analyze_enumeration(
                    black_box(&params),
                    &SOptions { cap_sensors: g },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_s_approach_factorized(c: &mut Criterion) {
    let params = SystemParams::paper_defaults();
    c.bench_function("s_approach_factorized_g13", |b| {
        b.iter(|| {
            s_approach::analyze(black_box(&params), &SOptions { cap_sensors: 13 }).unwrap()
        })
    });
}

fn bench_exact(c: &mut Criterion) {
    let params = SystemParams::paper_defaults();
    c.bench_function("exact_detection_probability", |b| {
        b.iter(|| exact::detection_probability(black_box(&params), 5))
    });
}

fn bench_required_caps(c: &mut Criterion) {
    let params = SystemParams::paper_defaults();
    c.bench_function("fig8_required_caps", |b| {
        b.iter(|| required_caps(black_box(&params), 0.99))
    });
}

fn bench_extensions(c: &mut Criterion) {
    let params = SystemParams::paper_defaults();
    c.bench_function("poisson_model", |b| {
        b.iter(|| gbd_core::poisson_model::analyze(black_box(&params)).unwrap())
    });
    c.bench_function("extension_h_cap5", |b| {
        b.iter(|| {
            gbd_core::extension_h::analyze(black_box(&params), 5, &MsOptions::default())
                .unwrap()
        })
    });
    c.bench_function("time_to_detection_fast", |b| {
        b.iter(|| {
            gbd_core::time_to_detection::analyze(black_box(&params), &MsOptions::default())
                .unwrap()
        })
    });
    let hetero = [
        gbd_core::exact::SensorClass {
            count: 150,
            sensing_range: 700.0,
            pd: 0.9,
        },
        gbd_core::exact::SensorClass {
            count: 30,
            sensing_range: 2_500.0,
            pd: 0.85,
        },
    ];
    c.bench_function("exact_heterogeneous_two_classes", |b| {
        b.iter(|| {
            gbd_core::exact::detection_probability_classes(black_box(&params), &hetero, 5)
        })
    });
    let small = SystemParams::paper_defaults()
        .with_m_periods(6)
        .with_n_sensors(120);
    c.bench_function("t_approach_m6", |b| {
        b.iter(|| {
            gbd_core::t_approach::analyze(
                black_box(&small),
                &MsOptions {
                    g: 2,
                    gh: 2,
                    eps: 0.0,
                },
                10_000_000,
            )
            .unwrap()
        })
    });
    c.bench_function("design_required_sensors", |b| {
        b.iter(|| gbd_core::design::required_sensors(black_box(&params), 0.9, 1_000).unwrap())
    });
}

criterion_group!(
    benches,
    bench_ms_approach,
    bench_ms_approach_caps,
    bench_s_approach_enumeration,
    bench_s_approach_factorized,
    bench_exact,
    bench_required_caps,
    bench_extensions
);
criterion_main!(benches);
