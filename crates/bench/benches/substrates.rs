//! Benchmarks of the substrate crates: geometry closed forms, spatial
//! queries, counting-chain steps and routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbd_field::deployment::{Deployer, UniformRandom};
use gbd_field::field::{BoundaryPolicy, SensorField};
use gbd_field::oracle::NestedGridField;
use gbd_geometry::circle::lens_area;
use gbd_geometry::point::{Aabb, Point};
use gbd_geometry::stadium::Stadium;
use gbd_geometry::subarea::SubareaTable;
use gbd_markov::counting::CountingChain;
use gbd_net::gpsr::gpsr_route;
use gbd_net::graph::UnitDiskGraph;
use gbd_stats::discrete::DiscreteDist;
use gbd_stats::rng::rng_from_seed;
use std::hint::black_box;

fn bench_geometry(c: &mut Criterion) {
    c.bench_function("lens_area", |b| {
        b.iter(|| lens_area(black_box(1000.0), black_box(700.0)))
    });
    c.bench_function("subarea_table_m20", |b| {
        b.iter(|| {
            let t = SubareaTable::constant_speed(1000.0, 600.0, 20);
            let mut acc = 0.0;
            for l in 1..=20 {
                acc += t.subareas(l).iter().sum::<f64>();
            }
            acc
        })
    });
}

fn bench_field_queries(c: &mut Criterion) {
    let extent = Aabb::from_extent(32_000.0, 32_000.0);
    let mut rng = rng_from_seed(5);
    let positions = UniformRandom.deploy(240, &extent, &mut rng);
    let mut group = c.benchmark_group("stadium_query_240");
    for (name, policy) in [
        ("bounded", BoundaryPolicy::Bounded),
        ("torus", BoundaryPolicy::Torus),
    ] {
        let field = SensorField::new(extent, positions.clone(), policy);
        let dr = Stadium::new(
            Point::new(15_000.0, 16_000.0),
            Point::new(15_600.0, 16_000.0),
            1_000.0,
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &field, |b, f| {
            b.iter(|| f.query_stadium(black_box(&dr)))
        });
    }
    group.finish();
}

fn bench_large_field(c: &mut Criterion) {
    // CSR grid vs the retained nested-Vec oracle at N = 10^5, paper
    // density (side scales with sqrt N). The pair keeps the speedup
    // measurable by `cargo bench` alone; the committed regression
    // numbers live in results/BENCH_pr9.json (perf_trajectory leg 5).
    let n = 100_000usize;
    let side = 32_000.0 * (n as f64 / 240.0).sqrt();
    let extent = Aabb::from_extent(side, side);
    let mut rng = rng_from_seed(5);
    let positions = UniformRandom.deploy(n, &extent, &mut rng);
    let dr = Stadium::new(
        Point::new(side * 0.5, side * 0.5),
        Point::new(side * 0.5 + 600.0, side * 0.5),
        1_000.0,
    );
    let mut group = c.benchmark_group("stadium_query_100k");
    let csr = SensorField::new(extent, positions.clone(), BoundaryPolicy::Torus);
    let oracle = NestedGridField::new(extent, positions.clone(), BoundaryPolicy::Torus);
    group.bench_function("csr_alloc_free", |b| {
        let mut hits = Vec::new();
        b.iter(|| {
            csr.query_stadium_into(black_box(&dr), &mut hits);
            hits.len()
        })
    });
    group.bench_function("csr_allocating", |b| {
        b.iter(|| csr.query_stadium(black_box(&dr)))
    });
    group.bench_function("oracle_nested", |b| {
        b.iter(|| oracle.query_stadium(black_box(&dr)))
    });
    group.finish();

    // The per-trial cost floor at large N: one focused rebuild over the
    // full position set (filter scan + counting sort of the corridor).
    let focus = dr.bounding_box().inflated(600.0);
    let mut warm = SensorField::new(extent, positions, BoundaryPolicy::Torus);
    c.bench_function("refocus_100k", |b| {
        b.iter(|| {
            warm.refocus(black_box(focus));
            warm.len()
        })
    });
}

fn bench_counting_chain(c: &mut Criterion) {
    let inc = DiscreteDist::new(vec![0.9, 0.06, 0.03, 0.01]).unwrap();
    c.bench_function("counting_chain_20_steps_cap60", |b| {
        b.iter(|| {
            let mut chain = CountingChain::new(60);
            for _ in 0..20 {
                chain.step(black_box(&inc));
            }
            chain.distribution().tail_sum(5)
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let extent = Aabb::from_extent(32_000.0, 32_000.0);
    let mut rng = rng_from_seed(9);
    let mut positions = UniformRandom.deploy(240, &extent, &mut rng);
    positions.push(Point::new(16_000.0, 16_000.0));
    let dst = positions.len() - 1;
    let graph = UnitDiskGraph::new(positions, 6_000.0);
    c.bench_function("gpsr_route_240", |b| {
        let mut src = 0usize;
        b.iter(|| {
            src = (src + 1) % dst;
            gpsr_route(black_box(&graph), src, dst, 4_000)
        })
    });
    c.bench_function("unit_disk_graph_build_240", |b| {
        let pts: Vec<Point> = (0..240)
            .map(|i| {
                Point::new(
                    (i * 131 % 320) as f64 * 100.0,
                    (i * 71 % 320) as f64 * 100.0,
                )
            })
            .collect();
        b.iter(|| UnitDiskGraph::new(black_box(pts.clone()), 6_000.0))
    });
}

criterion_group!(
    benches,
    bench_geometry,
    bench_field_queries,
    bench_large_field,
    bench_counting_chain,
    bench_routing
);
criterion_main!(benches);
