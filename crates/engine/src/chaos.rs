//! Deterministic fault injection for resilience testing (the engine half
//! of the chaos harness; the simulator half lives in `gbd_sim::faults`).
//!
//! Everything here is gated behind the `chaos` cargo feature and intended
//! for tests: a [`ChaosPlan`] is attached to an [`crate::Engine`] and
//! deterministically injects worker panics and artificial stage latency
//! into a batch, as a pure function of `(plan seed, batch length)`. Two
//! runs of the same batch under the same plan inject exactly the same
//! faults at exactly the same request indices, so chaos tests can assert
//! byte-identical responses across runs.
//!
//! Injected latency is *virtual*: instead of sleeping (which would make
//! the recorded `elapsed` wall-clock-dependent), the engine checks whether
//! the injected latency alone would overrun the request's deadline and, if
//! so, fails the primary attempt with a deterministic
//! [`crate::EvalError::DeadlineExceeded`] carrying the injected latency as
//! `elapsed`. Fallback backends still run — which is precisely the
//! degradation path the harness exists to exercise.

#[cfg(feature = "chaos")]
use crate::resilience::splitmix64;
use std::time::Duration;

/// A seeded plan of faults to inject into every batch an engine serves.
///
/// The plan names *how many* faults of each kind to inject; the concrete
/// request indices are chosen by a seeded shuffle when a batch arrives, so
/// they depend only on `(seed, batch length)`. Panic indices and latency
/// indices are disjoint by construction.
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed of the fault-selection shuffle.
    pub seed: u64,
    worker_panics: usize,
    transient_panics: bool,
    latency_faults: usize,
    latency: Duration,
}

#[cfg(feature = "chaos")]
impl ChaosPlan {
    /// An inert plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            worker_panics: 0,
            transient_panics: false,
            latency_faults: 0,
            latency: Duration::ZERO,
        }
    }

    /// Injects a panic into `count` requests of every batch.
    #[must_use]
    pub fn with_worker_panics(mut self, count: usize) -> Self {
        self.worker_panics = count;
        self
    }

    /// Makes injected panics transient: only the first attempt at a
    /// faulted request panics, so a [`crate::RetryPolicy`] recovers it.
    #[must_use]
    pub fn transient(mut self) -> Self {
        self.transient_panics = true;
        self
    }

    /// Injects `latency` of artificial stage latency into `count` requests
    /// of every batch (virtual — see the module docs).
    #[must_use]
    pub fn with_stage_latency(mut self, count: usize, latency: Duration) -> Self {
        self.latency_faults = count;
        self.latency = latency;
        self
    }

    /// The request indices this plan panics in a batch of `len`.
    pub fn panic_indices(&self, len: usize) -> Vec<usize> {
        let mut chosen = self.fault_indices(len);
        chosen.truncate(self.worker_panics.min(len));
        chosen.sort_unstable();
        chosen
    }

    /// The request indices this plan slows down in a batch of `len`.
    pub fn latency_indices(&self, len: usize) -> Vec<usize> {
        let panics = self.worker_panics.min(len);
        let mut chosen = self.fault_indices(len);
        chosen.rotate_left(panics);
        chosen.truncate(self.latency_faults.min(len - panics));
        chosen.sort_unstable();
        chosen
    }

    /// A seeded Fisher–Yates shuffle of `0..len`: the first
    /// `worker_panics` entries fault with panics, the next
    /// `latency_faults` with latency — disjoint by construction.
    fn fault_indices(&self, len: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            let j = splitmix64(self.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F))
                as usize
                % (i + 1);
            indices.swap(i, j);
        }
        indices
    }

    pub(crate) fn resolve(&self, len: usize) -> BatchFaults {
        BatchFaults {
            panics: self.panic_indices(len),
            transient: self.transient_panics,
            latency: self.latency_indices(len),
            latency_amount: self.latency,
        }
    }
}

/// The faults a [`ChaosPlan`] resolved for one concrete batch. Always
/// compiled (the engine threads it through unconditionally); with the
/// `chaos` feature off it is a zero-sized "no faults" token.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchFaults {
    #[cfg(feature = "chaos")]
    panics: Vec<usize>,
    #[cfg(feature = "chaos")]
    transient: bool,
    #[cfg(feature = "chaos")]
    latency: Vec<usize>,
    #[cfg(feature = "chaos")]
    latency_amount: Duration,
}

impl BatchFaults {
    /// No faults (also what single-request entry points use).
    pub(crate) fn none() -> Self {
        BatchFaults::default()
    }

    /// Whether the evaluation of `index` should panic on this `attempt`.
    #[cfg_attr(not(feature = "chaos"), allow(unused_variables))]
    pub(crate) fn injects_panic(&self, index: usize, attempt: u32) -> bool {
        #[cfg(feature = "chaos")]
        {
            if self.transient && attempt > 0 {
                return false;
            }
            self.panics.binary_search(&index).is_ok()
        }
        #[cfg(not(feature = "chaos"))]
        false
    }

    /// The artificial latency injected into `index`'s primary attempt.
    #[cfg_attr(not(feature = "chaos"), allow(unused_variables))]
    pub(crate) fn injected_latency(&self, index: usize) -> Option<Duration> {
        #[cfg(feature = "chaos")]
        {
            if self.latency.binary_search(&index).is_ok() {
                return Some(self.latency_amount);
            }
            None
        }
        #[cfg(not(feature = "chaos"))]
        None
    }
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;

    #[test]
    fn fault_indices_are_deterministic_and_disjoint() {
        let plan = ChaosPlan::new(2008)
            .with_worker_panics(4)
            .with_stage_latency(2, Duration::from_secs(3600));
        let panics = plan.panic_indices(32);
        let latency = plan.latency_indices(32);
        assert_eq!(panics, plan.panic_indices(32));
        assert_eq!(latency, plan.latency_indices(32));
        assert_eq!(panics.len(), 4);
        assert_eq!(latency.len(), 2);
        assert!(panics.iter().all(|i| !latency.contains(i)));
        assert!(panics.iter().chain(&latency).all(|&i| i < 32));
        // A different seed moves the faults.
        assert_ne!(
            ChaosPlan::new(1).with_worker_panics(4).panic_indices(32),
            panics
        );
    }

    #[test]
    fn counts_clamp_to_batch_length() {
        let plan = ChaosPlan::new(7)
            .with_worker_panics(10)
            .with_stage_latency(10, Duration::from_millis(1));
        assert_eq!(plan.panic_indices(3).len(), 3);
        assert!(plan.latency_indices(3).is_empty());
        assert!(plan.panic_indices(0).is_empty());
    }

    #[test]
    fn resolved_faults_answer_queries() {
        let plan = ChaosPlan::new(11)
            .with_worker_panics(1)
            .with_stage_latency(1, Duration::from_secs(5));
        let faults = plan.resolve(8);
        let panic_at = plan.panic_indices(8)[0];
        let slow_at = plan.latency_indices(8)[0];
        assert!(faults.injects_panic(panic_at, 0));
        assert!(faults.injects_panic(panic_at, 3));
        assert!(!faults.injects_panic(slow_at, 0));
        assert_eq!(
            faults.injected_latency(slow_at),
            Some(Duration::from_secs(5))
        );
        assert_eq!(faults.injected_latency(panic_at), None);
        // Transient panics clear after the first attempt.
        let transient = plan.transient().resolve(8);
        assert!(transient.injects_panic(panic_at, 0));
        assert!(!transient.injects_panic(panic_at, 1));
    }

    #[test]
    fn none_injects_nothing() {
        let faults = BatchFaults::none();
        for i in 0..16 {
            assert!(!faults.injects_panic(i, 0));
            assert_eq!(faults.injected_latency(i), None);
        }
    }
}
