//! Byte codec between the engine's cache layers and [`gbd_store`].
//!
//! Every cache key and value serializes through the store's little-endian
//! [`ByteWriter`]/[`ByteReader`]; floats travel as raw IEEE-754 bits, so a
//! value decoded from disk is bit-identical to the one computed — the
//! warm≡cold invariant survives a round trip through the store.
//!
//! Identity: [`STORE_TAG`] names this codec (and is bumped with it), and
//! the keys themselves are the engine's in-memory cache keys re-encoded,
//! so everything that splits an in-memory cache entry — parameters by bit
//! pattern, `eps`, caps, backend, seed — splits the on-disk record too.
//! Truncated (`eps > 0`) results can therefore never shadow exact ones.
//!
//! Decoders are total: any undecodable record yields `None` and is
//! skipped at warm-start (the entry is simply recomputed), never a panic
//! or a wrong value.

use crate::request::{BackendKey, ResultKey};
use crate::{EvalOutput, GeometryKey, StageKey};
use gbd_core::ms_approach::{AnalysisResult, StageInput};
use gbd_sim::runner::SimResult;
use gbd_stats::discrete::DiscreteDist;
use gbd_stats::interval::ProportionInterval;
use gbd_stats::summary::Summary;
use gbd_store::{ByteReader, ByteWriter};

/// Identity tag of the engine's store records. Bump the suffix whenever
/// the codec in this module (or the semantics of any cached value)
/// changes incompatibly; the store then refuses old files instead of
/// serving stale bytes under new semantics.
pub(crate) const STORE_TAG: &[u8] = b"gbd-engine-cache-v1";

/// Record kind: geometry layer (`GeometryKey -> Vec<StageInput>`).
pub(crate) const KIND_GEOMETRY: u8 = 1;
/// Record kind: stage layer (`StageKey -> (DiscreteDist, f64, f64)`).
pub(crate) const KIND_STAGE: u8 = 2;
/// Record kind: result layer (`ResultKey -> EvalOutput`).
pub(crate) const KIND_RESULT: u8 = 3;

fn to_usize(v: u64) -> Option<usize> {
    usize::try_from(v).ok()
}

pub(crate) fn encode_geometry_key(key: &GeometryKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(key.sensing_range);
    w.put_u64(key.step);
    w.put_u64(key.m_periods as u64);
    w.put_u64(key.g_eff as u64);
    w.put_u64(key.gh_eff as u64);
    w.finish()
}

pub(crate) fn decode_geometry_key(bytes: &[u8]) -> Option<GeometryKey> {
    let mut r = ByteReader::new(bytes);
    let key = GeometryKey {
        sensing_range: r.get_u64()?,
        step: r.get_u64()?,
        m_periods: to_usize(r.get_u64()?)?,
        g_eff: to_usize(r.get_u64()?)?,
        gh_eff: to_usize(r.get_u64()?)?,
    };
    r.is_empty().then_some(key)
}

pub(crate) fn encode_stage_inputs(inputs: &[StageInput]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(inputs.len() as u32);
    for input in inputs {
        w.put_f64_slice(&input.areas);
        w.put_u64(input.cap as u64);
    }
    w.finish()
}

pub(crate) fn decode_stage_inputs(bytes: &[u8]) -> Option<Vec<StageInput>> {
    let mut r = ByteReader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut inputs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        inputs.push(StageInput {
            areas: r.get_f64_slice()?,
            cap: to_usize(r.get_u64()?)?,
        });
    }
    r.is_empty().then_some(inputs)
}

pub(crate) fn encode_stage_key(key: &StageKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64_slice(&key.areas);
    w.put_u64(key.field_area);
    w.put_u64(key.n_sensors as u64);
    w.put_u64(key.pd);
    w.put_u64(key.cap as u64);
    w.put_u64(key.eps);
    w.finish()
}

pub(crate) fn decode_stage_key(bytes: &[u8]) -> Option<StageKey> {
    let mut r = ByteReader::new(bytes);
    let key = StageKey {
        areas: r.get_u64_slice()?,
        field_area: r.get_u64()?,
        n_sensors: to_usize(r.get_u64()?)?,
        pd: r.get_u64()?,
        cap: to_usize(r.get_u64()?)?,
        eps: r.get_u64()?,
    };
    r.is_empty().then_some(key)
}

pub(crate) fn encode_stage_value(value: &(DiscreteDist, f64, f64)) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f64_slice(value.0.as_slice());
    w.put_f64(value.1);
    w.put_f64(value.2);
    w.finish()
}

pub(crate) fn decode_stage_value(bytes: &[u8]) -> Option<(DiscreteDist, f64, f64)> {
    let mut r = ByteReader::new(bytes);
    let pmf = r.get_f64_slice()?;
    let accuracy = r.get_f64()?;
    let dropped = r.get_f64()?;
    if !r.is_empty() {
        return None;
    }
    // `DiscreteDist::new` re-validates (finite, non-negative, mass bound),
    // so a bit-flipped-but-CRC-colliding value still cannot smuggle an
    // invalid distribution into the cache.
    let dist = DiscreteDist::new(pmf).ok()?;
    Some((dist, accuracy, dropped))
}

pub(crate) fn encode_result_key(key: &ResultKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for &p in &key.params {
        w.put_u64(p);
    }
    w.put_u64(key.n_sensors as u64);
    w.put_u64(key.m_periods as u64);
    w.put_u64(key.k as u64);
    match &key.backend {
        BackendKey::Ms { g, gh, eps } => {
            w.put_u8(0);
            w.put_u64(*g as u64);
            w.put_u64(*gh as u64);
            w.put_u64(*eps);
        }
        BackendKey::S { cap } => {
            w.put_u8(1);
            w.put_u64(*cap as u64);
        }
        BackendKey::Exact { cap } => {
            w.put_u8(2);
            w.put_u64(*cap as u64);
        }
        BackendKey::T { g, gh, max_states } => {
            w.put_u8(3);
            w.put_u64(*g as u64);
            w.put_u64(*gh as u64);
            w.put_u64(*max_states as u64);
        }
        BackendKey::Poisson => w.put_u8(4),
        BackendKey::Sim {
            trials,
            seed,
            motion,
            boundary,
            false_alarm_rate,
            awake_probability,
            deployment,
        } => {
            w.put_u8(5);
            w.put_u64(*trials);
            w.put_u64(*seed);
            w.put_u8(motion.0);
            w.put_u64(motion.1);
            w.put_u64(motion.2);
            w.put_u8(*boundary);
            w.put_u64(*false_alarm_rate);
            w.put_u64(*awake_probability);
            w.put_u8(deployment.0);
            w.put_u64(deployment.1);
        }
    }
    w.finish()
}

pub(crate) fn decode_result_key(bytes: &[u8]) -> Option<ResultKey> {
    let mut r = ByteReader::new(bytes);
    let mut params = [0u64; 6];
    for p in &mut params {
        *p = r.get_u64()?;
    }
    let n_sensors = to_usize(r.get_u64()?)?;
    let m_periods = to_usize(r.get_u64()?)?;
    let k = to_usize(r.get_u64()?)?;
    let backend = match r.get_u8()? {
        0 => BackendKey::Ms {
            g: to_usize(r.get_u64()?)?,
            gh: to_usize(r.get_u64()?)?,
            eps: r.get_u64()?,
        },
        1 => BackendKey::S {
            cap: to_usize(r.get_u64()?)?,
        },
        2 => BackendKey::Exact {
            cap: to_usize(r.get_u64()?)?,
        },
        3 => BackendKey::T {
            g: to_usize(r.get_u64()?)?,
            gh: to_usize(r.get_u64()?)?,
            max_states: to_usize(r.get_u64()?)?,
        },
        4 => BackendKey::Poisson,
        5 => BackendKey::Sim {
            trials: r.get_u64()?,
            seed: r.get_u64()?,
            motion: (r.get_u8()?, r.get_u64()?, r.get_u64()?),
            boundary: r.get_u8()?,
            false_alarm_rate: r.get_u64()?,
            awake_probability: r.get_u64()?,
            deployment: (r.get_u8()?, r.get_u64()?),
        },
        _ => return None,
    };
    let key = ResultKey {
        params,
        n_sensors,
        m_periods,
        k,
        backend,
    };
    r.is_empty().then_some(key)
}

fn put_summary(w: &mut ByteWriter, s: &Summary) {
    let (count, mean, m2, min, max) = s.raw_parts();
    w.put_u64(count);
    w.put_f64(mean);
    w.put_f64(m2);
    w.put_f64(min);
    w.put_f64(max);
}

fn get_summary(r: &mut ByteReader<'_>) -> Option<Summary> {
    Some(Summary::from_raw_parts(
        r.get_u64()?,
        r.get_f64()?,
        r.get_f64()?,
        r.get_f64()?,
        r.get_f64()?,
    ))
}

pub(crate) fn encode_output(output: &EvalOutput) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match output {
        EvalOutput::Analysis(result) => {
            w.put_u8(0);
            w.put_f64_slice(result.raw_distribution().as_slice());
            w.put_f64(result.predicted_accuracy());
            w.put_f64(result.truncation_error());
        }
        EvalOutput::Simulation(result) => {
            w.put_u8(1);
            w.put_u64(result.trials);
            w.put_u64(result.detections);
            w.put_f64(result.detection_probability);
            w.put_f64(result.confidence.estimate);
            w.put_f64(result.confidence.lo);
            w.put_f64(result.confidence.hi);
            put_summary(&mut w, &result.report_counts);
            put_summary(&mut w, &result.false_alarm_counts);
            put_summary(&mut w, &result.dropped_report_counts);
        }
    }
    w.finish()
}

pub(crate) fn decode_output(bytes: &[u8]) -> Option<EvalOutput> {
    let mut r = ByteReader::new(bytes);
    let output = match r.get_u8()? {
        0 => {
            let pmf = r.get_f64_slice()?;
            let accuracy = r.get_f64()?;
            let truncation = r.get_f64()?;
            let raw = DiscreteDist::new(pmf).ok()?;
            EvalOutput::Analysis(AnalysisResult::from_parts(raw, accuracy, truncation))
        }
        1 => EvalOutput::Simulation(SimResult {
            trials: r.get_u64()?,
            detections: r.get_u64()?,
            detection_probability: r.get_f64()?,
            confidence: ProportionInterval {
                estimate: r.get_f64()?,
                lo: r.get_f64()?,
                hi: r.get_f64()?,
            },
            report_counts: get_summary(&mut r)?,
            false_alarm_counts: get_summary(&mut r)?,
            dropped_report_counts: get_summary(&mut r)?,
        }),
        _ => return None,
    };
    r.is_empty().then_some(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::result_key;
    use crate::{geometry_key, BackendSpec, SimulationSpec};
    use gbd_core::ms_approach::{self, MsOptions};
    use gbd_core::params::SystemParams;

    fn assert_output_bits(a: &EvalOutput, b: &EvalOutput) {
        match (a, b) {
            (EvalOutput::Analysis(x), EvalOutput::Analysis(y)) => {
                let (xs, ys) = (
                    x.raw_distribution().as_slice(),
                    y.raw_distribution().as_slice(),
                );
                assert_eq!(xs.len(), ys.len());
                for (p, q) in xs.iter().zip(ys) {
                    assert_eq!(p.to_bits(), q.to_bits());
                }
                assert_eq!(
                    x.predicted_accuracy().to_bits(),
                    y.predicted_accuracy().to_bits()
                );
                assert_eq!(
                    x.truncation_error().to_bits(),
                    y.truncation_error().to_bits()
                );
            }
            (EvalOutput::Simulation(x), EvalOutput::Simulation(y)) => {
                assert_eq!(x, y);
                assert_eq!(
                    x.report_counts.raw_parts().2.to_bits(),
                    y.report_counts.raw_parts().2.to_bits()
                );
            }
            _ => panic!("variant changed across the round trip"),
        }
    }

    #[test]
    fn geometry_round_trips() {
        let params = SystemParams::paper_defaults().with_n_sensors(90);
        let opts = MsOptions::default();
        let key = geometry_key(&params, &opts);
        assert_eq!(
            decode_geometry_key(&encode_geometry_key(&key)).as_ref(),
            Some(&key)
        );
        let steps = vec![params.step(); params.m_periods()];
        let inputs =
            ms_approach::stage_inputs(params.sensing_range(), &steps, 90, &opts).unwrap();
        let decoded = decode_stage_inputs(&encode_stage_inputs(&inputs)).unwrap();
        assert_eq!(decoded.len(), inputs.len());
        for (a, b) in inputs.iter().zip(&decoded) {
            assert_eq!(a.cap, b.cap);
            assert_eq!(a.areas.len(), b.areas.len());
            for (x, y) in a.areas.iter().zip(&b.areas) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn result_keys_round_trip_for_every_backend() {
        let params = SystemParams::paper_defaults();
        let backends = [
            BackendSpec::ms_default(),
            BackendSpec::S(gbd_core::s_approach::SOptions::default()),
            BackendSpec::Exact { saturation_cap: 16 },
            BackendSpec::T {
                opts: MsOptions::default(),
                max_states: 5000,
            },
            BackendSpec::Poisson,
            BackendSpec::Simulation(SimulationSpec {
                trials: 100,
                seed: 7,
                ..SimulationSpec::default()
            }),
        ];
        for backend in &backends {
            let key = result_key(&params, backend);
            assert_eq!(
                decode_result_key(&encode_result_key(&key)).as_ref(),
                Some(&key),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn outputs_round_trip_bit_identically() {
        let params = SystemParams::paper_defaults().with_n_sensors(60);
        let analysis =
            EvalOutput::Analysis(ms_approach::analyze(&params, &MsOptions::default()).unwrap());
        assert_output_bits(
            &analysis,
            &decode_output(&encode_output(&analysis)).unwrap(),
        );

        let sim = EvalOutput::Simulation(gbd_sim::runner::run(
            &SimulationSpec {
                trials: 50,
                seed: 3,
                threads: 1,
                ..SimulationSpec::default()
            }
            .to_config(params)
            .unwrap(),
        ));
        assert_output_bits(&sim, &decode_output(&encode_output(&sim)).unwrap());
    }

    #[test]
    fn truncated_and_garbage_bytes_decode_to_none() {
        let params = SystemParams::paper_defaults();
        let key_bytes = encode_result_key(&result_key(&params, &BackendSpec::ms_default()));
        for cut in 0..key_bytes.len() {
            assert!(decode_result_key(&key_bytes[..cut]).is_none(), "cut={cut}");
        }
        let mut extended = key_bytes;
        extended.push(0);
        assert!(
            decode_result_key(&extended).is_none(),
            "trailing bytes must be rejected"
        );
        assert!(decode_output(&[9, 9, 9]).is_none());
        assert!(decode_stage_value(&[]).is_none());
        assert!(decode_geometry_key(b"short").is_none());
    }
}
