//! Resilience policies of the evaluation engine: rich per-request errors,
//! graceful-degradation chains, and deterministic retry backoff.
//!
//! The engine serves batches; a serving system must survive bad requests
//! (panic isolation, [`EvalError::WorkerPanicked`]), slow requests
//! (deadlines, [`EvalError::DeadlineExceeded`]) and flaky requests
//! (bounded, seeded retries, [`RetryPolicy`]). A [`BackendChain`] extends a
//! request with cheaper fallback backends that answer when the primary
//! errors or times out — the response is then tagged
//! [`crate::EvalResponse::degraded`] and names the backend that actually
//! served it.
//!
//! All policies are deterministic: a deadline decides *whether* a result
//! comes back, never *which* result; retry backoff is a pure function of
//! the request seed and attempt number, so warm≡cold bit-identity is
//! preserved.

use crate::request::BackendSpec;
use gbd_core::CoreError;
use std::fmt;
use std::time::Duration;

/// Why the engine could not produce an [`crate::EvalOutput`] for a request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// The backend rejected the request or failed numerically.
    Core(CoreError),
    /// The request's evaluation panicked. The panic was caught at the
    /// request boundary; the rest of the batch completed normally.
    WorkerPanicked {
        /// Index of the request in its batch.
        request_index: usize,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// The request's deadline passed before its evaluation finished.
    DeadlineExceeded {
        /// Time spent (including injected latency under chaos testing)
        /// before cancellation.
        elapsed: Duration,
        /// Work units the cancelled computation finished first.
        completed_stages: usize,
    },
}

impl EvalError {
    /// Whether this error class may succeed on a retry of the same request
    /// (panics are treated as transient; validation errors are not).
    pub fn is_transient(&self) -> bool {
        matches!(self, EvalError::WorkerPanicked { .. })
    }

    /// Whether this is a deadline cancellation.
    pub fn is_deadline(&self) -> bool {
        matches!(self, EvalError::DeadlineExceeded { .. })
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Core(e) => write!(f, "{e}"),
            EvalError::WorkerPanicked {
                request_index,
                payload,
            } => write!(f, "request {request_index} panicked: {payload}"),
            EvalError::DeadlineExceeded {
                elapsed,
                completed_stages,
            } => write!(
                f,
                "deadline exceeded after {:.1} ms ({completed_stages} stages completed)",
                elapsed.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EvalError {
    /// Core deadline cancellations surface as
    /// [`EvalError::DeadlineExceeded`]; everything else wraps as
    /// [`EvalError::Core`].
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::DeadlineExceeded {
                elapsed,
                completed_stages,
            } => EvalError::DeadlineExceeded {
                elapsed,
                completed_stages,
            },
            other => EvalError::Core(other),
        }
    }
}

/// A primary backend plus an ordered list of cheaper fallbacks — the
/// graceful-degradation chain of a request.
///
/// When the primary errors or overruns its deadline, the engine walks the
/// fallbacks in order and serves the first success, tagging the response
/// `degraded: true`. The canonical chain mirrors the paper's cost ladder:
/// `S → M-S → Poisson` (exponential → polynomial → closed-form).
///
/// # Example
///
/// ```
/// use gbd_core::s_approach::SOptions;
/// use gbd_engine::BackendSpec;
///
/// let chain = BackendSpec::S(SOptions::default())
///     .with_fallback(BackendSpec::ms_default())
///     .with_fallback(BackendSpec::Poisson);
/// assert_eq!(chain.fallbacks.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BackendChain {
    /// The backend the request asks for.
    pub primary: BackendSpec,
    /// Cheaper stand-ins, tried in order when the primary fails.
    pub fallbacks: Vec<BackendSpec>,
}

impl BackendChain {
    /// A chain with no fallbacks.
    pub fn new(primary: BackendSpec) -> Self {
        BackendChain {
            primary,
            fallbacks: Vec::new(),
        }
    }

    /// Appends one more fallback to the end of the chain.
    #[must_use]
    pub fn with_fallback(mut self, fallback: BackendSpec) -> Self {
        self.fallbacks.push(fallback);
        self
    }
}

impl From<BackendSpec> for BackendChain {
    fn from(primary: BackendSpec) -> Self {
        BackendChain::new(primary)
    }
}

/// Bounded retry with deterministic exponential backoff.
///
/// Applied by the engine to **simulation requests only** (analytical
/// backends are deterministic, so retrying a failure reproduces it; a
/// simulation attempt can be killed by injected or environmental faults
/// and legitimately succeed on the next try). The backoff delay for
/// attempt `a` is `base_backoff · 2^a` plus a jitter that is a pure
/// function of `(request seed, a)` — retries never introduce
/// nondeterminism, so warm≡cold bit-identity holds verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of *re*-tries after the first attempt.
    pub max_retries: u32,
    /// Base delay doubled on each attempt. [`Duration::ZERO`] disables
    /// sleeping while keeping the bounded-retry semantics.
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and no backoff sleep.
    pub fn new(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::ZERO,
        }
    }

    /// Sets the base backoff delay.
    #[must_use]
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Backoff before retry number `attempt` (0-based): exponential in the
    /// attempt with seeded jitter in `[0, base_backoff)`. Deterministic in
    /// `(seed, attempt)`.
    pub fn backoff(&self, seed: u64, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let base = self.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let jitter_nanos = splitmix64(seed ^ (0x9E37_79B9_7F4A_7C15 ^ u64::from(attempt)))
            % self.base_backoff.as_nanos().max(1) as u64;
        base + Duration::from_nanos(jitter_nanos)
    }
}

/// The SplitMix64 mixer: a high-quality 64-bit finalizer used wherever the
/// resilience layer needs a deterministic pseudo-random function of plain
/// integers (backoff jitter, chaos fault selection).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_core::ms_approach::MsOptions;
    use gbd_core::s_approach::SOptions;

    #[test]
    fn chain_builds_in_order() {
        let chain = BackendSpec::S(SOptions::default())
            .with_fallback(BackendSpec::Ms(MsOptions::default()))
            .with_fallback(BackendSpec::Poisson);
        assert_eq!(chain.primary.name(), "s");
        let names: Vec<_> = chain.fallbacks.iter().map(BackendSpec::name).collect();
        assert_eq!(names, vec!["ms", "poisson"]);
        let plain: BackendChain = BackendSpec::Poisson.into();
        assert!(plain.fallbacks.is_empty());
    }

    #[test]
    fn core_deadline_errors_convert() {
        let core = CoreError::DeadlineExceeded {
            elapsed: Duration::from_millis(7),
            completed_stages: 3,
        };
        match EvalError::from(core) {
            EvalError::DeadlineExceeded {
                elapsed,
                completed_stages,
            } => {
                assert_eq!(elapsed, Duration::from_millis(7));
                assert_eq!(completed_stages, 3);
            }
            other => panic!("wrong conversion: {other:?}"),
        }
        let invalid = CoreError::InvalidParameter {
            name: "pd",
            constraint: "must be in [0, 1]",
        };
        assert!(matches!(EvalError::from(invalid), EvalError::Core(_)));
    }

    #[test]
    fn transience_classification() {
        let panic = EvalError::WorkerPanicked {
            request_index: 0,
            payload: "boom".into(),
        };
        assert!(panic.is_transient() && !panic.is_deadline());
        let deadline = EvalError::DeadlineExceeded {
            elapsed: Duration::ZERO,
            completed_stages: 0,
        };
        assert!(deadline.is_deadline() && !deadline.is_transient());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::new(3).with_base_backoff(Duration::from_micros(50));
        for attempt in 0..3 {
            let a = policy.backoff(42, attempt);
            let b = policy.backoff(42, attempt);
            assert_eq!(a, b);
            let base = Duration::from_micros(50).saturating_mul(1 << attempt);
            assert!(a >= base && a < base + Duration::from_micros(50));
        }
        assert_ne!(policy.backoff(1, 0), policy.backoff(2, 0));
        assert_eq!(RetryPolicy::new(2).backoff(9, 1), Duration::ZERO);
    }

    #[test]
    fn errors_display_and_source() {
        let e = EvalError::WorkerPanicked {
            request_index: 4,
            payload: "chaos".into(),
        };
        assert!(e.to_string().contains("request 4"));
        let d = EvalError::DeadlineExceeded {
            elapsed: Duration::from_millis(3),
            completed_stages: 1,
        };
        assert!(d.to_string().contains("deadline exceeded"));
        let c = EvalError::Core(CoreError::InvalidParameter {
            name: "g",
            constraint: "positive",
        });
        assert!(std::error::Error::source(&c).is_some());
        assert!(std::error::Error::source(&d).is_none());
    }
}
