#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! Batched evaluation engine for group based detection studies.
//!
//! Every figure of the paper is a *sweep*: the same model evaluated over a
//! grid of parameter points that share most of their expensive
//! intermediates. This crate turns "call `analyze` in a loop" into a
//! request-oriented engine:
//!
//! * submit a batch of [`EvalRequest`]s (`params` × backend × options);
//! * the engine fans them out over a deterministic worker pool;
//! * responses come back in request order, each with its detection
//!   probabilities, timing, and cache accounting.
//!
//! Three memoization layers persist across requests **and batches** on one
//! [`Engine`] value (sharded `RwLock` maps, see [`cache`]):
//!
//! 1. **geometry** — per-period NEDR stage inputs, keyed by
//!    `(Rs, V·t, M, caps)`; shared by every sweep point that moves `N`,
//!    `Pd` or `k` at fixed geometry;
//! 2. **stages** — per-NEDR report distributions, accuracies, and
//!    `eps`-truncation records, keyed by
//!    `(subarea sizes, S, N, Pd, cap, eps)`; within one run all Body
//!    stages share a single entry, and across runs all matching stages do;
//! 3. **results** — assembled per-request outputs, keyed by the full
//!    `(params, backend)` identity; a repeated request is a pointer clone.
//!
//! Keys compare floats by bit pattern, so a warm result is *bit-identical*
//! to the cold computation — caching changes speed, never values. Monte
//! Carlo requests ([`BackendSpec::Simulation`]) go through the same front
//! door and the result layer (simulation results are a pure function of
//! their seed, hence cacheable like any analysis).
//!
//! # Fault tolerance
//!
//! The engine treats every request as untrusted (see [`resilience`]):
//!
//! * a panicking evaluation is caught at the request boundary and becomes
//!   that request's [`EvalError::WorkerPanicked`] — the rest of the batch
//!   completes normally;
//! * [`EvalOptions::deadline`] cancels overlong evaluations cooperatively
//!   ([`EvalError::DeadlineExceeded`]); a deadline never changes a value,
//!   only whether one comes back;
//! * [`BackendSpec::with_fallback`] chains cheaper backends that answer
//!   when the primary fails; the response is tagged
//!   [`EvalResponse::degraded`] and [`EvalResponse::served_by`] names the
//!   backend that produced it;
//! * simulation requests can opt into bounded seeded retries
//!   ([`EvalOptions::retry`]) with backoff that is a pure function of the
//!   request seed, preserving determinism;
//! * a panic inside a cache shard poisons only that shard's lock, which
//!   every access recovers (and counts in
//!   [`CacheStats::poisoned_recoveries`]).
//!
//! The [`chaos`] module (cargo feature `chaos`, tests only) injects
//! deterministic worker panics and stage latency to prove all of the
//! above under fault load.
//!
//! # Example
//!
//! ```
//! use gbd_core::prelude::*;
//! use gbd_engine::{BackendSpec, Engine, EvalRequest};
//!
//! let engine = Engine::new();
//! let sweep: Vec<EvalRequest> = [60, 120, 180, 240]
//!     .iter()
//!     .map(|&n| {
//!         EvalRequest::new(
//!             SystemParams::paper_defaults().with_n_sensors(n),
//!             BackendSpec::ms_default(),
//!         )
//!     })
//!     .collect();
//! let responses = engine.evaluate_batch(&sweep);
//! assert_eq!(responses.len(), 4);
//! let p240 = responses[3].detection_probability().unwrap();
//! assert!(p240 > 0.9);
//! // The four points share geometry and body stages:
//! assert!(engine.cache_stats().hits > 0);
//! ```

pub mod cache;
pub mod chaos;
pub mod request;
pub mod resilience;

mod persist;
mod pool;

pub use cache::CacheStats;
#[cfg(feature = "chaos")]
pub use chaos::ChaosPlan;
/// Re-exported store types so engine callers can attach and observe a
/// persistent store without depending on `gbd-store` directly.
pub use gbd_store::{CompactionReport, StoreError, StoreStats};
pub use request::{
    BackendSpec, EvalOptions, EvalOutput, EvalRequest, EvalResponse, SimulationSpec,
};
pub use resilience::{BackendChain, EvalError, RetryPolicy};

use cache::{f64_key, f64_slice_key, RequestCounters, ShardedCache};
use chaos::BatchFaults;
use gbd_core::budget::ComputeBudget;
use gbd_core::model::{DetectionModel, ExactModel, PoissonModel, SModel, TModel};
use gbd_core::ms_approach::{self, MsOptions, StageInput};
use gbd_core::prelude::*;
use gbd_core::report_dist::{stage_accuracy_with, stage_distribution_with};
use gbd_markov::scratch::Scratch;
use gbd_stats::binomial::PmfTable;
use gbd_stats::discrete::DiscreteDist;
use gbd_store::Store;
use request::result_key;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Key of the geometry layer: everything the per-period stage inputs of a
/// constant-speed M-S run depend on. The caps enter post-`min(·, N)`, so
/// parameter points whose caps saturate identically share the entry.
/// `Ord` so batch scheduling can group requests by this key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct GeometryKey {
    sensing_range: u64,
    step: u64,
    m_periods: usize,
    g_eff: usize,
    gh_eff: usize,
}

/// The geometry-layer key of an M-S request.
fn geometry_key(params: &SystemParams, opts: &MsOptions) -> GeometryKey {
    let n = params.n_sensors();
    GeometryKey {
        sensing_range: f64_key(params.sensing_range()),
        step: f64_key(params.step()),
        m_periods: params.m_periods(),
        g_eff: opts.g.min(n),
        gh_eff: opts.gh.min(n),
    }
}

/// Key of the stage layer: everything one NEDR's report distribution,
/// accuracy, and `eps`-truncation record depend on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StageKey {
    areas: Vec<u64>,
    field_area: u64,
    n_sensors: usize,
    pd: u64,
    cap: usize,
    eps: u64,
}

/// Per-worker arena of the memoized M-S path: the stage convolution
/// ladder buffers, the placement pmf table, and the counting-chain
/// scratch. Thread-local so concurrent workers never contend, and warm
/// after the first request a worker serves.
struct StageScratch {
    qn: DiscreteDist,
    conv: Vec<f64>,
    table: PmfTable,
    chain: Scratch,
}

thread_local! {
    static STAGE_SCRATCH: RefCell<StageScratch> = RefCell::new(StageScratch {
        qn: DiscreteDist::point_mass(0),
        conv: Vec::new(),
        table: PmfTable::new(),
        chain: Scratch::new(),
    });
}

/// The batched evaluation engine. See the crate docs for the architecture.
///
/// Cheap to share: all internal state is behind sharded locks, so one
/// `Engine` can serve concurrent callers (`&self` everywhere).
#[derive(Debug)]
pub struct Engine {
    workers: usize,
    geometry: ShardedCache<GeometryKey, Vec<StageInput>>,
    stages: ShardedCache<StageKey, (DiscreteDist, f64, f64)>,
    results: ShardedCache<request::ResultKey, EvalOutput>,
    /// Optional durable tier under the caches (see [`Engine::with_store`]).
    store: Option<Arc<Store>>,
    /// Entries seeded into the caches from the store at construction.
    store_loads: AtomicU64,
    /// Freshly computed entries appended to the store.
    store_spills: AtomicU64,
    /// Spill attempts that failed with a store error (the computed value
    /// still serves the request; it is just not durable).
    store_errors: AtomicU64,
    #[cfg(feature = "chaos")]
    chaos: Option<chaos::ChaosPlan>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Engine with one worker per available core.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_workers(workers)
    }

    /// Engine with an explicit worker-pool size (`0` is treated as 1).
    /// Responses do not depend on the worker count — only latency does.
    pub fn with_workers(workers: usize) -> Self {
        Engine {
            workers: workers.max(1),
            geometry: ShardedCache::new(),
            stages: ShardedCache::new(),
            results: ShardedCache::new(),
            store: None,
            store_loads: AtomicU64::new(0),
            store_spills: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Attaches a persistent [`gbd_store::Store`] at `path` and
    /// warm-starts every cache layer from it.
    ///
    /// From then on each freshly *computed* entry (geometry, stage,
    /// result) is spilled to the store as it is inserted, so the next
    /// `with_store` open — after a restart, or even after a crash
    /// mid-append — reloads everything the previous process computed.
    /// Seeded entries are the bytes the cold computation produced, so a
    /// store-warmed engine answers bit-identically to a cold one; the
    /// load and spill counts are surfaced in
    /// [`CacheStats::store_loads`]/[`CacheStats::store_spills`] via
    /// [`Engine::cache_stats`].
    ///
    /// Records that fail to decode (e.g. written by a future codec) are
    /// skipped — the entry is recomputed on demand, never served wrong.
    /// Spill failures (disk full, permissions) degrade the store to
    /// read-only accounting (`store_errors` in [`Engine::store_stats`])
    /// without failing any request.
    ///
    /// Call last in the builder chain: [`Engine::with_cache_capacity`]
    /// replaces the caches, which would drop seeded entries.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the file is unreadable, not a store, written
    /// under a different schema version, or carries a different
    /// identity tag (a foreign client's cache).
    pub fn with_store(mut self, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let store = Store::open(path, persist::STORE_TAG)?;
        let mut loads = 0u64;
        store.for_each(|kind, key, value| {
            let seeded = match kind {
                persist::KIND_GEOMETRY => match (
                    persist::decode_geometry_key(key),
                    persist::decode_stage_inputs(value),
                ) {
                    (Some(k), Some(v)) => self.geometry.seed(k, v),
                    _ => false,
                },
                persist::KIND_STAGE => match (
                    persist::decode_stage_key(key),
                    persist::decode_stage_value(value),
                ) {
                    (Some(k), Some(v)) => self.stages.seed(k, v),
                    _ => false,
                },
                persist::KIND_RESULT => match (
                    persist::decode_result_key(key),
                    persist::decode_output(value),
                ) {
                    (Some(k), Some(v)) => self.results.seed(k, v),
                    _ => false,
                },
                _ => false,
            };
            if seeded {
                loads += 1;
            }
        });
        self.store_loads.store(loads, Ordering::Relaxed);
        self.store = Some(Arc::new(store));
        Ok(self)
    }

    /// Bounds every cache layer to `max_entries_per_shard` entries per
    /// shard (16 shards per layer; `0` = unbounded, the default).
    /// Overflow evicts via a second-chance sweep and counts in
    /// [`CacheStats::evictions`]; an evicted entry is recomputed
    /// bit-identically on its next use, so the bound changes memory and
    /// speed, never values. Long-lived servers should set this — the
    /// unbounded default grows forever under a changing workload.
    ///
    /// Call at construction time: bounding replaces the (empty) caches.
    #[must_use]
    pub fn with_cache_capacity(mut self, max_entries_per_shard: usize) -> Self {
        self.geometry = ShardedCache::with_max_entries_per_shard(max_entries_per_shard);
        self.stages = ShardedCache::with_max_entries_per_shard(max_entries_per_shard);
        self.results = ShardedCache::with_max_entries_per_shard(max_entries_per_shard);
        self
    }

    /// Attaches a [`chaos::ChaosPlan`] that deterministically injects
    /// faults into every batch this engine serves. Test-only (cargo
    /// feature `chaos`).
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn with_chaos(mut self, plan: chaos::ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Evaluates one request (equivalent to a single-element batch).
    pub fn evaluate(&self, request: &EvalRequest) -> EvalResponse {
        let faults = self.batch_faults(1);
        self.evaluate_at(0, request, &faults)
    }

    /// Evaluates a batch across the worker pool. Responses are returned in
    /// request order, and their values are independent of the worker count
    /// and of which requests hit warm caches.
    pub fn evaluate_batch(&self, requests: &[EvalRequest]) -> Vec<EvalResponse> {
        self.evaluate_batch_with(requests, |_| {})
    }

    /// Like [`Engine::evaluate_batch`], additionally invoking `notify`
    /// with each response **as soon as it completes**, from the worker
    /// thread that computed it. This is the batch-handle surface a
    /// serving layer coalesces onto: early finishers stream back to their
    /// callers while the rest of the batch is still evaluating, instead of
    /// waiting for the slowest request.
    ///
    /// `notify` observes every response exactly once in the common case;
    /// if a worker thread is killed outside the per-request panic boundary
    /// (the defense-in-depth recompute path of the pool), a recomputed
    /// response may be notified again — consumers routing by
    /// [`EvalResponse::index`] are idempotent by construction.
    pub fn evaluate_batch_with<F>(
        &self,
        requests: &[EvalRequest],
        notify: F,
    ) -> Vec<EvalResponse>
    where
        F: Fn(&EvalResponse) + Sync,
    {
        let faults = self.batch_faults(requests.len());
        let schedule = self.schedule(requests);
        let computed = pool::run_indexed(requests.len(), self.workers, |slot| {
            let i = schedule[slot];
            let response = self.evaluate_at(i, &requests[i], &faults);
            notify(&response);
            response
        });
        // The schedule permuted execution order only; sorting by the
        // original request index restores request order for the caller.
        let mut responses = computed;
        responses.sort_unstable_by_key(|response| response.index);
        responses
    }

    /// Execution order of a batch: request indices grouped by geometry
    /// cache key, with groups whose geometry is already warm scheduled
    /// ahead of cold groups (and non-M-S requests last, in request
    /// order). Grouping keeps same-geometry requests adjacent, so within
    /// a cold batch the first member's stage misses become its
    /// neighbours' hits instead of racing N workers over the same cold
    /// key; warm-first lets cached sweep points stream out while cold
    /// geometry is still being built. Pure scheduling: values are
    /// bit-identical for any order, and responses return in request
    /// order regardless.
    fn schedule(&self, requests: &[EvalRequest]) -> Vec<usize> {
        let mut order: Vec<(u8, Option<GeometryKey>, usize)> = requests
            .iter()
            .enumerate()
            .map(|(i, request)| match request.backend {
                BackendSpec::Ms(opts) => {
                    let key = geometry_key(&request.params, &opts);
                    let rank = u8::from(!self.geometry.contains_key(&key));
                    (rank, Some(key), i)
                }
                _ => (2, None, i),
            })
            .collect();
        order.sort_unstable();
        order.into_iter().map(|(_, _, i)| i).collect()
    }

    /// The faults to inject into a batch of `len` (none unless a chaos
    /// plan is attached under the `chaos` feature).
    #[cfg_attr(not(feature = "chaos"), allow(unused_variables))]
    fn batch_faults(&self, len: usize) -> BatchFaults {
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.chaos {
            return plan.resolve(len);
        }
        BatchFaults::none()
    }

    /// Aggregate hit/miss counters over all three cache layers, plus the
    /// store load/spill counts when a store is attached.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self
            .geometry
            .stats()
            .merged(self.stages.stats())
            .merged(self.results.stats());
        stats.store_loads = self.store_loads.load(Ordering::Relaxed);
        stats.store_spills = self.store_spills.load(Ordering::Relaxed);
        stats
    }

    /// Counters of the attached store; `None` without one. The
    /// `append_errors` field here counts store-side failures; the
    /// engine-side spill failures are in [`Engine::store_spill_errors`].
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|store| store.stats())
    }

    /// Order-independent CRC digest of the attached store's live index
    /// (see [`Store::digest`]); `None` without a store. A standby whose
    /// digest matches its primary's has provably converged.
    pub fn store_digest(&self) -> Option<u32> {
        self.store.as_ref().map(|store| store.digest())
    }

    /// The attached store handle, for layers that wire replication (log
    /// shipping tees) around the engine; `None` without a store.
    pub fn store_handle(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The identity tag under which this engine build persists cache
    /// records (and therefore the tag its replication streams carry).
    pub fn store_identity() -> &'static [u8] {
        persist::STORE_TAG
    }

    /// The routing key of a request: the byte encoding of its
    /// result-cache key. Two requests with equal routing keys are served
    /// from the same result-cache entry, so a router that hashes this key
    /// sends repeats of a request to the shard whose cache is warm for it.
    pub fn routing_key(request: &EvalRequest) -> Vec<u8> {
        persist::encode_result_key(&result_key(&request.params, &request.backend))
    }

    /// Applies one replicated store record to this engine: decodes it
    /// with the same codec a warm start uses, seeds the matching cache
    /// layer, and re-appends it to this engine's own store (if attached)
    /// so the entry survives a restart of the standby itself.
    ///
    /// Returns `false` when the record does not decode under this build's
    /// codec — the caller counts it and moves on; a bad record can degrade
    /// the warm set, never correctness. Duplicate records return `true`
    /// without reseeding (cache seeding is first-writer-wins on identical
    /// bytes, so replays are harmless).
    pub fn apply_replicated_record(&self, kind: u8, key: &[u8], value: &[u8]) -> bool {
        let seeded = match kind {
            persist::KIND_GEOMETRY => match (
                persist::decode_geometry_key(key),
                persist::decode_stage_inputs(value),
            ) {
                (Some(k), Some(v)) => Some(self.geometry.seed(k, v)),
                _ => None,
            },
            persist::KIND_STAGE => match (
                persist::decode_stage_key(key),
                persist::decode_stage_value(value),
            ) {
                (Some(k), Some(v)) => Some(self.stages.seed(k, v)),
                _ => None,
            },
            persist::KIND_RESULT => match (
                persist::decode_result_key(key),
                persist::decode_output(value),
            ) {
                (Some(k), Some(v)) => Some(self.results.seed(k, v)),
                _ => None,
            },
            _ => None,
        };
        let Some(fresh) = seeded else {
            return false;
        };
        if fresh {
            self.store_loads.fetch_add(1, Ordering::Relaxed);
            // Persist only fresh records: a replay after reconnect would
            // otherwise grow the standby's log with duplicates.
            if let Some(store) = &self.store {
                // Failures are already counted in the store's own
                // append_errors; the seeded entry still serves requests.
                let _ = store.append(kind, key, value);
            }
        }
        true
    }

    /// Spill attempts that failed with a store error since construction
    /// (requests still succeeded; their entries are just not durable).
    pub fn store_spill_errors(&self) -> u64 {
        self.store_errors.load(Ordering::Relaxed)
    }

    /// Flushes spilled entries to stable storage; `None` without a store.
    pub fn sync_store(&self) -> Option<Result<(), StoreError>> {
        self.store.as_ref().map(|store| store.sync())
    }

    /// Compacts the attached store to its live entries via an atomic
    /// snapshot (write-temp + rename); `None` without a store. Serving
    /// layers call this on graceful drain so the next boot warm-starts
    /// from a minimal, cleanly closed log.
    pub fn snapshot_store(&self) -> Option<Result<CompactionReport, StoreError>> {
        self.store.as_ref().map(|store| store.compact())
    }

    /// Per-layer `(name, stats)` breakdown.
    pub fn layer_stats(&self) -> [(&'static str, CacheStats); 3] {
        [
            ("geometry", self.geometry.stats()),
            ("stages", self.stages.stats()),
            ("results", self.results.stats()),
        ]
    }

    /// Registers the engine's cache and store series on an observability
    /// registry as polled counters, so snapshots and windowed deltas track
    /// them alongside the serving layer's own instruments. Instrument
    /// names: `cache_hits`, `cache_misses`, `cache_evictions`,
    /// `cache_poisoned_recoveries`, `store_loads`, `store_spills`,
    /// `store_spill_errors`, plus the attached store's own series (see
    /// [`gbd_store::Store::register_observability`]).
    ///
    /// Note: [`Engine::clear_caches`] resets these counters, which breaks
    /// the monotonicity windowed deltas rely on — long-lived observed
    /// engines should not clear caches mid-flight.
    pub fn register_observability(self: &Arc<Self>, registry: &gbd_obs::Registry) {
        type StatReader = fn(&CacheStats) -> u64;
        let cache_series: [(&str, StatReader); 4] = [
            ("cache_hits", |s| s.hits),
            ("cache_misses", |s| s.misses),
            ("cache_evictions", |s| s.evictions),
            ("cache_poisoned_recoveries", |s| s.poisoned_recoveries),
        ];
        for (name, read) in cache_series {
            let engine = Arc::clone(self);
            registry.polled_counter(name, move || read(&engine.cache_stats()));
        }
        let loads = Arc::clone(self);
        registry.polled_counter("store_loads", move || {
            loads.store_loads.load(Ordering::Relaxed)
        });
        let spills = Arc::clone(self);
        registry.polled_counter("store_spills", move || {
            spills.store_spills.load(Ordering::Relaxed)
        });
        let errors = Arc::clone(self);
        registry.polled_counter("store_spill_errors", move || {
            errors.store_errors.load(Ordering::Relaxed)
        });
        if let Some(store) = &self.store {
            store.register_observability(registry);
        }
    }

    /// Drops every cached entry and resets all counters (including the
    /// store load/spill counts; the store's own contents are untouched —
    /// a later [`Engine::with_store`] open still warm-starts from them).
    pub fn clear_caches(&self) {
        self.geometry.clear();
        self.stages.clear();
        self.results.clear();
        self.store_loads.store(0, Ordering::Relaxed);
        self.store_spills.store(0, Ordering::Relaxed);
        self.store_errors.store(0, Ordering::Relaxed);
    }

    /// Appends one `(key, value)` pair to the attached store, if any.
    /// Called from compute closures, which run outside every shard lock,
    /// so spilling serializes on the store mutex only — never on a cache
    /// shard. Failures are counted, not propagated: durability is an
    /// optimization, the computed value is already correct.
    fn spill(&self, kind: u8, encode: impl FnOnce() -> (Vec<u8>, Vec<u8>)) {
        let Some(store) = &self.store else {
            return;
        };
        let (key, value) = encode();
        match store.append(kind, &key, &value) {
            Ok(()) => {
                self.store_spills.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn evaluate_at(
        &self,
        index: usize,
        request: &EvalRequest,
        faults: &BatchFaults,
    ) -> EvalResponse {
        let counters = RequestCounters::default();
        let start = Instant::now();
        let budget = match request.options.deadline {
            Some(deadline) => ComputeBudget::with_deadline(deadline),
            None => ComputeBudget::unlimited(),
        };

        let mut outcome = self.attempt_primary(index, request, &counters, &budget, faults);
        let mut served_by = request.backend.name();
        let mut degraded = false;
        if outcome.is_err() {
            for fallback in &request.fallbacks {
                // The chain shares the request's budget: no point starting
                // a fallback whose deadline has already passed.
                if budget.checkpoint().is_err() {
                    break;
                }
                if let Ok(output) =
                    self.guarded_eval(index, request, *fallback, &counters, &budget, faults, 1)
                {
                    outcome = Ok(output);
                    served_by = fallback.name();
                    degraded = true;
                    break;
                }
                // A failed fallback never masks the primary's error.
            }
        }

        let duration = start.elapsed();
        let detection = match &outcome {
            Ok(output) => request
                .thresholds()
                .iter()
                .map(|&k| (k, output.detection_probability(k)))
                .collect(),
            Err(_) => Vec::new(),
        };
        EvalResponse {
            index,
            backend: request.backend.name(),
            served_by,
            degraded,
            outcome,
            detection,
            duration,
            cache: counters.stats(),
        }
    }

    /// Runs the request's primary backend, retrying panicked simulation
    /// attempts when the request carries a [`RetryPolicy`]. Injected
    /// chaos latency is charged here (virtually — see [`chaos`]), so it
    /// can fail only the primary, leaving fallbacks their turn.
    fn attempt_primary(
        &self,
        index: usize,
        request: &EvalRequest,
        counters: &RequestCounters,
        budget: &ComputeBudget,
        faults: &BatchFaults,
    ) -> Result<EvalOutput, EvalError> {
        if let Some(latency) = faults.injected_latency(index) {
            if budget.would_exceed(latency) {
                return Err(EvalError::DeadlineExceeded {
                    elapsed: latency,
                    completed_stages: 0,
                });
            }
        }
        let (policy, seed) = match (request.backend, request.options.retry) {
            (BackendSpec::Simulation(spec), Some(policy)) => (policy, spec.seed),
            _ => (RetryPolicy::new(0), 0),
        };
        let mut attempt = 0u32;
        loop {
            let result = self.guarded_eval(
                index,
                request,
                request.backend,
                counters,
                budget,
                faults,
                attempt,
            );
            match result {
                Err(ref error) if error.is_transient() && attempt < policy.max_retries => {
                    let backoff = policy.backoff(seed, attempt);
                    if budget.would_exceed(backoff) {
                        return result;
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// One attempt at one backend, with the panic boundary around it:
    /// a panic anywhere below becomes that request's
    /// [`EvalError::WorkerPanicked`] instead of killing the worker.
    #[allow(clippy::too_many_arguments)]
    fn guarded_eval(
        &self,
        index: usize,
        request: &EvalRequest,
        backend: BackendSpec,
        counters: &RequestCounters,
        budget: &ComputeBudget,
        faults: &BatchFaults,
        attempt: u32,
    ) -> Result<EvalOutput, EvalError> {
        budget.checkpoint()?;
        let caught = catch_unwind(AssertUnwindSafe(|| -> Result<EvalOutput, CoreError> {
            // The chaos panic fires before the cache lookup so a faulted
            // request faults identically whether the caches are warm or
            // cold (attempt 0 only when the plan is transient).
            if faults.injects_panic(index, attempt) {
                panic!("chaos: injected worker panic");
            }
            if request.options.bypass_cache {
                self.compute_cold(&request.params, backend, budget)
            } else {
                let key = result_key(&request.params, &backend);
                self.results
                    .try_get_or_insert_with(key.clone(), counters, || {
                        let output =
                            self.compute(&request.params, backend, counters, budget)?;
                        self.spill(persist::KIND_RESULT, || {
                            (
                                persist::encode_result_key(&key),
                                persist::encode_output(&output),
                            )
                        });
                        Ok(output)
                    })
                    .map(|arc| (*arc).clone())
            }
        }));
        match caught {
            Ok(result) => result.map_err(EvalError::from),
            Err(payload) => Err(EvalError::WorkerPanicked {
                request_index: index,
                // `as_ref`, not `&payload`: a `&Box<dyn Any>` would unsize
                // to `&dyn Any` *as the box*, and every downcast would miss.
                payload: panic_payload(payload.as_ref()),
            }),
        }
    }

    /// The uncached evaluation path (`bypass_cache`): exactly what the
    /// backend modules compute, with no engine involvement beyond the
    /// cooperative budget.
    fn compute_cold(
        &self,
        params: &SystemParams,
        backend: BackendSpec,
        budget: &ComputeBudget,
    ) -> Result<EvalOutput, CoreError> {
        budget.checkpoint()?;
        match backend {
            BackendSpec::Ms(opts) => {
                let steps = vec![params.step(); params.m_periods()];
                ms_approach::analyze_steps_budgeted(params, &steps, &opts, budget)
                    .map(EvalOutput::Analysis)
            }
            BackendSpec::S(opts) => SModel { opts }
                .report_distribution(params)
                .map(EvalOutput::Analysis),
            BackendSpec::Exact { saturation_cap } => ExactModel { saturation_cap }
                .report_distribution(params)
                .map(EvalOutput::Analysis),
            BackendSpec::T { opts, max_states } => TModel { opts, max_states }
                .report_distribution(params)
                .map(EvalOutput::Analysis),
            BackendSpec::Poisson => PoissonModel
                .report_distribution(params)
                .map(EvalOutput::Analysis),
            BackendSpec::Simulation(spec) => Ok(EvalOutput::Simulation(gbd_sim::runner::run(
                &spec.to_config(*params)?,
            ))),
        }
    }

    /// The cached evaluation path. The M-S-approach walks the geometry and
    /// stage layers; every other backend computes whole (their
    /// intermediates are not shared across sweep points) and relies on the
    /// result layer alone.
    fn compute(
        &self,
        params: &SystemParams,
        backend: BackendSpec,
        counters: &RequestCounters,
        budget: &ComputeBudget,
    ) -> Result<EvalOutput, CoreError> {
        match backend {
            BackendSpec::Ms(opts) => self
                .compute_ms(params, &opts, counters, budget)
                .map(EvalOutput::Analysis),
            other => self.compute_cold(params, other, budget),
        }
    }

    /// The memoized M-S path: identical arithmetic to
    /// [`ms_approach::analyze`], with the geometry and per-stage results
    /// fetched through the caches and a budget checkpoint between stages.
    fn compute_ms(
        &self,
        params: &SystemParams,
        opts: &MsOptions,
        counters: &RequestCounters,
        budget: &ComputeBudget,
    ) -> Result<ReportDistribution, CoreError> {
        // Validate before touching the geometry layer: a warm entry for
        // the same `(Rs, V·t, M, caps)` must not mask an invalid `eps`.
        opts.validate()?;
        let n = params.n_sensors();
        let geo_key = geometry_key(params, opts);
        let inputs = self
            .geometry
            .try_get_or_insert_with(geo_key.clone(), counters, || {
                let steps = vec![params.step(); params.m_periods()];
                let inputs =
                    ms_approach::stage_inputs(params.sensing_range(), &steps, n, opts)?;
                self.spill(persist::KIND_GEOMETRY, || {
                    (
                        persist::encode_geometry_key(&geo_key),
                        persist::encode_stage_inputs(&inputs),
                    )
                });
                Ok::<_, CoreError>(inputs)
            })?;

        let field_area = params.field_area();
        let pd = params.pd();
        let support_cap: usize = inputs.iter().map(StageInput::support_bound).sum();
        STAGE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let stages: Vec<(DiscreteDist, f64, f64)> = inputs
                .iter()
                .map(|stage| {
                    budget.checkpoint()?;
                    let stage_key = StageKey {
                        areas: f64_slice_key(&stage.areas),
                        field_area: f64_key(field_area),
                        n_sensors: n,
                        pd: f64_key(pd),
                        cap: stage.cap,
                        eps: f64_key(opts.eps),
                    };
                    let entry =
                        self.stages
                            .get_or_insert_with(stage_key.clone(), counters, || {
                                let (dist, dropped) = stage_distribution_with(
                                    &stage.areas,
                                    field_area,
                                    n,
                                    pd,
                                    stage.cap,
                                    opts.eps,
                                    &mut scratch.qn,
                                    &mut scratch.conv,
                                );
                                let accuracy = stage_accuracy_with(
                                    stage.areas.iter().sum(),
                                    field_area,
                                    n,
                                    stage.cap,
                                    &mut scratch.table,
                                );
                                let value = (dist, accuracy, dropped);
                                self.spill(persist::KIND_STAGE, || {
                                    (
                                        persist::encode_stage_key(&stage_key),
                                        persist::encode_stage_value(&value),
                                    )
                                });
                                value
                            });
                    budget.complete_stage();
                    Ok((entry.0.clone(), entry.1, entry.2))
                })
                .collect::<Result<_, CoreError>>()?;
            Ok(ms_approach::assemble_stages_truncated(
                &stages,
                support_cap,
                &mut scratch.chain,
            ))
        })
    }
}

/// Renders a caught panic payload for [`EvalError::WorkerPanicked`].
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// Keep `Arc` in the public-ish signature space honest: the engine is Send +
// Sync by construction; assert it so a regression fails to compile.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_core::s_approach::SOptions;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    fn fig9a_grid() -> Vec<EvalRequest> {
        let mut requests = Vec::new();
        for &speed in &[4.0, 10.0] {
            for n in (60..=240).step_by(30) {
                requests.push(EvalRequest::new(
                    paper().with_speed(speed).with_n_sensors(n),
                    BackendSpec::ms_default(),
                ));
            }
        }
        requests
    }

    #[test]
    fn ms_through_engine_matches_direct_analyze() {
        let engine = Engine::with_workers(2);
        for response in engine.evaluate_batch(&fig9a_grid()) {
            let req = &fig9a_grid()[response.index];
            let direct = ms_approach::analyze(&req.params, &MsOptions::default()).unwrap();
            let output = response.outcome.as_ref().unwrap();
            assert_eq!(
                output.analysis().unwrap(),
                &direct,
                "index {}",
                response.index
            );
            assert_eq!(
                response.detection,
                vec![(5, direct.detection_probability(5))]
            );
        }
    }

    #[test]
    fn warm_batch_is_bit_identical_to_cold() {
        let engine = Engine::with_workers(4);
        let grid = fig9a_grid();
        let cold = engine.evaluate_batch(&grid);
        let warm = engine.evaluate_batch(&grid);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.outcome, w.outcome);
            assert_eq!(c.detection, w.detection);
        }
        // The second pass is answered entirely from the result layer.
        let warm_hits: u64 = warm.iter().map(|r| r.cache.hits).sum();
        let warm_misses: u64 = warm.iter().map(|r| r.cache.misses).sum();
        assert_eq!(warm_misses, 0);
        assert_eq!(warm_hits, grid.len() as u64);
    }

    #[test]
    fn cold_sweep_already_shares_stages() {
        // Even the first pass over a sweep shares geometry (across N at
        // fixed speed) and body stages (within each run).
        let engine = Engine::with_workers(1);
        let responses = engine.evaluate_batch(&fig9a_grid());
        assert!(responses.iter().all(|r| r.outcome.is_ok()));
        let stats = engine.cache_stats();
        assert!(stats.hits > 0, "{stats:?}");
    }

    #[test]
    fn bypass_cache_matches_cached_result() {
        let engine = Engine::new();
        let mut request = EvalRequest::new(paper(), BackendSpec::ms_default());
        let cached = engine.evaluate(&request);
        request.options.bypass_cache = true;
        let bypassed = engine.evaluate(&request);
        assert_eq!(cached.outcome, bypassed.outcome);
        assert_eq!(bypassed.cache, CacheStats::default());
    }

    #[test]
    fn worker_count_does_not_change_responses() {
        let grid = fig9a_grid();
        let one = Engine::with_workers(1).evaluate_batch(&grid);
        let many = Engine::with_workers(8).evaluate_batch(&grid);
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.index, b.index);
        }
    }

    #[test]
    fn schedule_is_a_permutation_with_warm_geometries_first() {
        let engine = Engine::with_workers(1);
        let warm = EvalRequest::new(paper().with_n_sensors(60), BackendSpec::ms_default());
        engine.evaluate(&warm);

        // Mixed batch: cold geometry (different speed), warm geometry,
        // and a non-Ms backend. Warm Ms requests must come first, the
        // non-Ms request last, and every index must appear exactly once.
        let batch = vec![
            EvalRequest::new(
                paper().with_speed(7.0).with_n_sensors(90),
                BackendSpec::ms_default(),
            ),
            EvalRequest::new(paper().with_n_sensors(120), BackendSpec::ms_default()),
            EvalRequest::new(paper().with_n_sensors(60), BackendSpec::Poisson),
        ];
        let order = engine.schedule(&batch);
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(order, vec![1, 0, 2]);

        // Scheduling is pure reordering: responses come back in request
        // order with the values the identity schedule would produce.
        let responses = engine.evaluate_batch(&batch);
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(response.index, i);
            let alone = engine.evaluate(&batch[i]);
            assert_eq!(response.outcome, alone.outcome);
        }
    }

    #[test]
    fn eps_is_part_of_the_cache_identity() {
        let engine = Engine::new();
        let exact = EvalRequest::new(
            paper().with_n_sensors(60),
            BackendSpec::Ms(MsOptions::default()),
        );
        let truncated = EvalRequest::new(
            paper().with_n_sensors(60),
            BackendSpec::Ms(MsOptions {
                eps: 1e-6,
                ..MsOptions::default()
            }),
        );
        let a = engine.evaluate(&exact);
        let b = engine.evaluate(&truncated);
        let a = a.outcome.as_ref().unwrap().analysis().unwrap();
        let b = b.outcome.as_ref().unwrap().analysis().unwrap();
        assert_eq!(a.truncation_error(), 0.0);
        assert!(b.truncation_error() > 0.0);
        assert!(b.truncation_error() <= 1e-6 * paper().m_periods() as f64 + 1e-15);
        // A warm pass still returns the eps-specific entry.
        let b2 = engine.evaluate(&truncated);
        assert_eq!(b, b2.outcome.as_ref().unwrap().analysis().unwrap(),);
    }

    #[test]
    fn invalid_eps_is_rejected_even_with_warm_geometry() {
        let engine = Engine::new();
        let params = paper().with_n_sensors(60);
        engine
            .evaluate(&EvalRequest::new(params, BackendSpec::ms_default()))
            .outcome
            .unwrap();
        for bad in [f64::NAN, -0.25, 1.0] {
            let response = engine.evaluate(&EvalRequest::new(
                params,
                BackendSpec::Ms(MsOptions {
                    eps: bad,
                    ..MsOptions::default()
                }),
            ));
            assert!(response.outcome.is_err(), "eps={bad} must be rejected");
        }
    }

    #[test]
    fn all_backends_evaluate_the_paper_point() {
        let small = paper().with_m_periods(4).with_n_sensors(60).with_k(2);
        let backends = [
            BackendSpec::ms_default(),
            BackendSpec::S(SOptions::default()),
            BackendSpec::Exact { saturation_cap: 16 },
            BackendSpec::T {
                opts: MsOptions {
                    g: 2,
                    gh: 2,
                    eps: 0.0,
                },
                max_states: 1_000_000,
            },
            BackendSpec::Poisson,
            BackendSpec::Simulation(SimulationSpec {
                trials: 200,
                threads: 1,
                ..SimulationSpec::default()
            }),
        ];
        let engine = Engine::new();
        let requests: Vec<EvalRequest> = backends
            .iter()
            .map(|&b| EvalRequest::new(small, b))
            .collect();
        for response in engine.evaluate_batch(&requests) {
            let p = response
                .detection_probability()
                .unwrap_or_else(|| panic!("{} failed", response.backend));
            assert!((0.0..=1.0).contains(&p), "{}: {p}", response.backend);
        }
    }

    #[test]
    fn simulation_requests_are_cached_and_deterministic() {
        let engine = Engine::new();
        let request = EvalRequest::new(
            paper().with_n_sensors(60),
            BackendSpec::Simulation(SimulationSpec {
                trials: 300,
                seed: 42,
                threads: 2,
                ..SimulationSpec::default()
            }),
        );
        let a = engine.evaluate(&request);
        let b = engine.evaluate(&request);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(
            b.cache,
            CacheStats {
                hits: 1,
                misses: 0,
                ..CacheStats::default()
            }
        );
        let direct = gbd_sim::runner::run(
            &SimulationSpec {
                trials: 300,
                seed: 42,
                threads: 2,
                ..SimulationSpec::default()
            }
            .to_config(paper().with_n_sensors(60))
            .unwrap(),
        );
        assert_eq!(a.outcome.unwrap().simulation().unwrap(), &direct);
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let engine = Engine::new();
        let bad = EvalRequest::new(
            paper(),
            BackendSpec::Ms(MsOptions {
                g: 0,
                gh: 3,
                eps: 0.0,
            }),
        );
        let response = engine.evaluate(&bad);
        assert!(response.outcome.is_err());
        assert!(response.detection.is_empty());
        assert_eq!(engine.results.len(), 0);
    }

    #[test]
    fn multi_threshold_options() {
        let engine = Engine::new();
        let request = EvalRequest {
            options: EvalOptions {
                k_values: vec![1, 5, 9],
                ..EvalOptions::default()
            },
            ..EvalRequest::new(paper(), BackendSpec::ms_default())
        };
        let response = engine.evaluate(&request);
        let ps: Vec<f64> = response.detection.iter().map(|&(_, p)| p).collect();
        assert_eq!(response.detection.len(), 3);
        assert!(ps[0] >= ps[1] && ps[1] >= ps[2]);
    }

    #[test]
    fn zero_deadline_cancels_with_progress_report() {
        let engine = Engine::new();
        let request = EvalRequest {
            options: EvalOptions {
                deadline: Some(std::time::Duration::ZERO),
                ..EvalOptions::default()
            },
            ..EvalRequest::new(paper(), BackendSpec::ms_default())
        };
        let response = engine.evaluate(&request);
        assert!(matches!(
            response.outcome,
            Err(EvalError::DeadlineExceeded { .. })
        ));
        assert!(!response.degraded);
        assert!(response.detection.is_empty());
        // Errors are never cached: a deadline miss must not poison a later
        // unlimited evaluation of the same point.
        let relaxed = engine.evaluate(&EvalRequest::new(paper(), BackendSpec::ms_default()));
        assert!(relaxed.outcome.is_ok());
    }

    #[test]
    fn generous_deadline_matches_unlimited_bit_for_bit() {
        let engine = Engine::new();
        let unlimited = engine.evaluate(&EvalRequest::new(paper(), BackendSpec::ms_default()));
        engine.clear_caches();
        let request = EvalRequest {
            options: EvalOptions {
                deadline: Some(std::time::Duration::from_secs(3600)),
                ..EvalOptions::default()
            },
            ..EvalRequest::new(paper(), BackendSpec::ms_default())
        };
        let bounded = engine.evaluate(&request);
        assert_eq!(unlimited.outcome, bounded.outcome);
        assert_eq!(unlimited.detection, bounded.detection);
    }

    #[test]
    fn fallback_serves_when_primary_fails() {
        let engine = Engine::new();
        // g = 0 is invalid, so the primary always errors; Poisson answers.
        let chain = BackendSpec::Ms(MsOptions {
            g: 0,
            gh: 3,
            eps: 0.0,
        })
        .with_fallback(BackendSpec::Poisson);
        let response = engine.evaluate(&EvalRequest::new(paper(), chain));
        assert!(response.degraded);
        assert_eq!(response.backend, "ms");
        assert_eq!(response.served_by, "poisson");
        let p = response.detection_probability().unwrap();
        assert!((0.0..=1.0).contains(&p));
        let direct = engine.evaluate(&EvalRequest::new(paper(), BackendSpec::Poisson));
        assert_eq!(response.outcome, direct.outcome);
    }

    #[test]
    fn failed_chain_reports_the_primary_error() {
        let engine = Engine::new();
        let chain = BackendSpec::Ms(MsOptions {
            g: 0,
            gh: 3,
            eps: 0.0,
        })
        .with_fallback(BackendSpec::Ms(MsOptions {
            g: 3,
            gh: 0,
            eps: 0.0,
        }));
        let response = engine.evaluate(&EvalRequest::new(paper(), chain));
        assert!(!response.degraded);
        assert_eq!(response.served_by, "ms");
        match response.outcome {
            Err(EvalError::Core(CoreError::InvalidParameter { name, .. })) => {
                assert_eq!(name, "g/gh");
            }
            other => panic!("expected the primary's error, got {other:?}"),
        }
    }

    #[test]
    fn undegraded_responses_name_their_own_backend() {
        let engine = Engine::new();
        let chain = BackendSpec::ms_default().with_fallback(BackendSpec::Poisson);
        let response = engine.evaluate(&EvalRequest::new(paper(), chain));
        assert!(!response.degraded);
        assert_eq!(response.served_by, "ms");
        assert_eq!(
            response.outcome,
            engine
                .evaluate(&EvalRequest::new(paper(), BackendSpec::ms_default()))
                .outcome
        );
    }

    #[test]
    fn bounded_caches_stay_bit_identical() {
        // A pathologically tiny bound (one entry per shard) forces heavy
        // eviction; every response must still equal the unbounded run.
        let grid = fig9a_grid();
        let unbounded = Engine::with_workers(1).evaluate_batch(&grid);
        let bounded_engine = Engine::with_workers(1).with_cache_capacity(1);
        let bounded = bounded_engine.evaluate_batch(&grid);
        // Two passes so evicted entries are recomputed on the warm pass.
        let rewarmed = bounded_engine.evaluate_batch(&grid);
        for ((u, b), r) in unbounded.iter().zip(&bounded).zip(&rewarmed) {
            assert_eq!(u.outcome, b.outcome);
            assert_eq!(u.outcome, r.outcome);
            assert_eq!(u.detection, b.detection);
        }
        let stats = bounded_engine.cache_stats();
        assert!(stats.evictions > 0, "{stats:?}");
    }

    #[test]
    fn evaluate_batch_with_streams_every_response_once() {
        use std::sync::Mutex;
        let engine = Engine::with_workers(2);
        let grid = fig9a_grid();
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let responses = engine.evaluate_batch_with(&grid, |r| {
            seen.lock().unwrap().push(r.index);
        });
        let mut indices = seen.into_inner().unwrap();
        indices.sort_unstable();
        assert_eq!(indices, (0..grid.len()).collect::<Vec<_>>());
        // The returned vector is the same as the plain batch API's.
        let direct = Engine::with_workers(2).evaluate_batch(&grid);
        for (a, b) in responses.iter().zip(&direct) {
            assert_eq!(a.outcome, b.outcome);
        }
    }

    fn temp_store(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gbd-engine-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn store_warm_start_is_bit_identical_with_zero_misses() {
        let path = temp_store("warm.gbdstore");
        let grid = fig9a_grid();
        let cold_engine = Engine::with_workers(2).with_store(&path).unwrap();
        let cold = cold_engine.evaluate_batch(&grid);
        let cold_stats = cold_engine.cache_stats();
        assert!(cold_stats.store_spills > 0, "{cold_stats:?}");
        assert_eq!(cold_stats.store_loads, 0);
        assert_eq!(cold_engine.store_spill_errors(), 0);
        cold_engine.sync_store().unwrap().unwrap();
        drop(cold_engine);

        let warm_engine = Engine::with_workers(2).with_store(&path).unwrap();
        let stats = warm_engine.cache_stats();
        assert!(stats.store_loads > 0, "{stats:?}");
        let warm = warm_engine.evaluate_batch(&grid);
        let mut hits = 0;
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.outcome, w.outcome);
            assert_eq!(c.detection, w.detection);
            assert_eq!(w.cache.misses, 0, "store-warmed request recomputed");
            hits += w.cache.hits;
        }
        // Every request answered straight from the seeded result layer.
        assert_eq!(hits, grid.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_round_trips_simulation_results() {
        let path = temp_store("sim.gbdstore");
        let request = EvalRequest::new(
            paper().with_n_sensors(60),
            BackendSpec::Simulation(SimulationSpec {
                trials: 200,
                seed: 11,
                threads: 1,
                ..SimulationSpec::default()
            }),
        );
        let cold = Engine::new().with_store(&path).unwrap();
        let a = cold.evaluate(&request);
        cold.sync_store().unwrap().unwrap();
        drop(cold);
        let warm = Engine::new().with_store(&path).unwrap();
        let b = warm.evaluate(&request);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(
            b.cache.hits, 1,
            "simulation must be served from the seeded result layer"
        );
        assert_eq!(b.cache.misses, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn evicted_entries_reload_from_store_bit_identically() {
        // Pathologically tiny cache bound: most entries are evicted right
        // after they are computed. Every computed entry was spilled first,
        // so a fresh engine over the same store serves the whole grid from
        // the seeded result layer, bit-identically.
        let path = temp_store("evict.gbdstore");
        let grid = fig9a_grid();
        let bounded = Engine::with_workers(1)
            .with_cache_capacity(1)
            .with_store(&path)
            .unwrap();
        let cold = bounded.evaluate_batch(&grid);
        assert!(bounded.cache_stats().evictions > 0);
        bounded.sync_store().unwrap().unwrap();
        drop(bounded);

        let reloaded = Engine::with_workers(1).with_store(&path).unwrap();
        let warm = reloaded.evaluate_batch(&grid);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.outcome, w.outcome);
            assert_eq!(c.detection, w.detection);
            assert_eq!(w.cache.misses, 0, "evicted entry was not reloaded");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_store_compacts_and_preserves_warm_start() {
        let path = temp_store("snap.gbdstore");
        let grid = fig9a_grid();
        let engine = Engine::with_workers(1)
            .with_cache_capacity(1)
            .with_store(&path)
            .unwrap();
        // Two passes over a bounded cache: evictions force recomputation,
        // recomputation re-spills, so the log holds duplicates.
        let cold = engine.evaluate_batch(&grid);
        engine.evaluate_batch(&grid);
        let report = engine.snapshot_store().unwrap().unwrap();
        assert!(report.records_dropped > 0, "{report:?}");
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(engine.store_stats().unwrap().compactions, 1);
        drop(engine);

        let warm = Engine::with_workers(1).with_store(&path).unwrap();
        assert_eq!(warm.store_stats().unwrap().torn_bytes_discarded, 0);
        for (c, w) in cold.iter().zip(&warm.evaluate_batch(&grid)) {
            assert_eq!(c.outcome, w.outcome);
            assert_eq!(w.cache.misses, 0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replicated_records_warm_a_standby_bit_identically() {
        let primary_path = temp_store("repl-primary.gbdstore");
        let standby_path = temp_store("repl-standby.gbdstore");
        let grid = fig9a_grid();
        let primary = Engine::with_workers(1).with_store(&primary_path).unwrap();
        let cold = primary.evaluate_batch(&grid);
        // Hand every record the primary persisted to a standby engine,
        // exactly as the serve layer's replica listener does.
        let standby = Engine::with_workers(1).with_store(&standby_path).unwrap();
        primary
            .store_handle()
            .unwrap()
            .for_each(|kind, key, value| {
                assert!(standby.apply_replicated_record(kind, key, value));
            });
        assert!(standby.cache_stats().store_loads > 0);
        let warm = standby.evaluate_batch(&grid);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.outcome, w.outcome);
            assert_eq!(c.detection, w.detection);
            assert_eq!(w.cache.misses, 0, "standby recomputed a replicated entry");
        }
        // The standby re-persisted what it applied: a restart over its own
        // store warm-starts without the primary.
        standby.sync_store().unwrap().unwrap();
        drop(standby);
        let restarted = Engine::with_workers(1).with_store(&standby_path).unwrap();
        assert!(restarted.cache_stats().store_loads > 0);
        // Undecodable records are rejected, not applied.
        assert!(!restarted.apply_replicated_record(9, b"junk", b"junk"));
        assert!(!restarted.apply_replicated_record(persist::KIND_RESULT, b"short", b""));
        std::fs::remove_file(&primary_path).unwrap();
        std::fs::remove_file(&standby_path).unwrap();
    }

    #[test]
    fn routing_keys_follow_result_cache_identity() {
        let a = EvalRequest::new(paper().with_n_sensors(60), BackendSpec::ms_default());
        let same = EvalRequest::new(paper().with_n_sensors(60), BackendSpec::ms_default());
        let other_n = EvalRequest::new(paper().with_n_sensors(90), BackendSpec::ms_default());
        let other_backend = EvalRequest::new(paper().with_n_sensors(60), BackendSpec::Poisson);
        assert_eq!(Engine::routing_key(&a), Engine::routing_key(&same));
        assert_ne!(Engine::routing_key(&a), Engine::routing_key(&other_n));
        assert_ne!(Engine::routing_key(&a), Engine::routing_key(&other_backend));
    }

    #[test]
    fn errors_are_never_spilled() {
        let path = temp_store("errors.gbdstore");
        let engine = Engine::new().with_store(&path).unwrap();
        let bad = EvalRequest::new(
            paper(),
            BackendSpec::Ms(MsOptions {
                g: 0,
                gh: 3,
                eps: 0.0,
            }),
        );
        assert!(engine.evaluate(&bad).outcome.is_err());
        assert_eq!(engine.store_stats().unwrap().appended_records, 0);
        assert_eq!(engine.cache_stats().store_spills, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clear_caches_resets() {
        let engine = Engine::new();
        engine.evaluate(&EvalRequest::new(paper(), BackendSpec::ms_default()));
        assert!(engine.cache_stats().lookups() > 0);
        engine.clear_caches();
        assert_eq!(engine.cache_stats(), CacheStats::default());
        for (_, stats) in engine.layer_stats() {
            assert_eq!(stats, CacheStats::default());
        }
    }
}
