//! Sharded concurrent memoization cache with hit/miss accounting and an
//! optional entry bound.
//!
//! One [`ShardedCache`] holds one layer of the engine's memoization
//! hierarchy (geometry, per-stage report distributions, assembled
//! results). Values are stored behind `Arc` so cache consumers share one
//! immutable copy — a cache hit is a clone of a pointer, never of a
//! distribution.
//!
//! Keys contain `f64` inputs by **bit pattern** ([`f64_key`]): two
//! parameter sets hit the same entry exactly when every float is
//! bit-identical, which makes a warm result bit-identical to a cold one by
//! construction (the cached value *is* the value the cold path computed).
//!
//! A cache built with [`ShardedCache::with_max_entries_per_shard`] keeps at
//! most that many entries per shard, evicting with a **second-chance**
//! (clock) sweep: every hit marks its entry referenced, and the eviction
//! scan skips each referenced entry once before removing the first
//! unreferenced one. Eviction never changes values — an evicted key is
//! simply recomputed on its next lookup, and the recomputation is
//! bit-identical by the same argument as above. Long-lived servers need
//! the bound; one-shot sweeps leave it off.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independently locked shards per cache. A power of two so the
/// shard index is a mask of the key hash; 16 is plenty for the engine's
/// worker counts.
const SHARDS: usize = 16;

/// The bit pattern of `x`, used as a hashable/comparable stand-in for a
/// float in cache keys. Normalizes `-0.0` to `+0.0` so the two equal
/// parameter values share an entry; every NaN is rejected upstream by
/// parameter validation.
pub fn f64_key(x: f64) -> u64 {
    if x == 0.0 {
        0
    } else {
        x.to_bits()
    }
}

/// Bit patterns of a float slice (see [`f64_key`]).
pub fn f64_slice_key(xs: &[f64]) -> Vec<u64> {
    xs.iter().copied().map(f64_key).collect()
}

/// Cumulative hit/miss counters of a cache (or of one request's walk
/// through all caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then stored) the value.
    pub misses: u64,
    /// Entries removed by the second-chance sweep of a bounded cache
    /// (always zero for unbounded caches).
    pub evictions: u64,
    /// Times a poisoned shard lock was recovered instead of propagating
    /// the panic (see [`ShardedCache`]'s poisoning policy).
    pub poisoned_recoveries: u64,
    /// Entries seeded from a persistent store at engine construction
    /// ([`crate::Engine::with_store`]). Always zero in per-request stats:
    /// warm-start happens once, before any request is served.
    pub store_loads: u64,
    /// Freshly computed entries spilled to the attached persistent store.
    /// Always zero in per-request stats (spills are an engine-wide
    /// side effect, not part of a request's cache walk).
    pub store_spills: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Component-wise sum.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            poisoned_recoveries: self.poisoned_recoveries + other.poisoned_recoveries,
            store_loads: self.store_loads + other.store_loads,
            store_spills: self.store_spills + other.store_spills,
        }
    }
}

/// Per-request hit/miss accumulator, threaded through every cache lookup a
/// request performs so the response can report exactly what that request
/// reused. Atomics, not `Cell`s: one request's evaluation may itself be
/// internally concurrent in the future.
#[derive(Debug, Default)]
pub struct RequestCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RequestCounters {
    /// Snapshot of the accumulated counts. Poisoning and eviction are
    /// tracked per cache, not per request, so the per-request view always
    /// reports zero for both.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            ..CacheStats::default()
        }
    }
}

/// One cached entry plus its second-chance reference bit. The bit is
/// atomic so the read path (shared lock) can mark hits without upgrading
/// to a write lock.
#[derive(Debug)]
struct Slot<V> {
    value: Arc<V>,
    referenced: AtomicBool,
}

/// One shard: the entry map plus the clock ring driving second-chance
/// eviction. Every key in `map` appears exactly once in `ring` (entries
/// are only removed by popping the ring), so the two stay in sync by
/// construction.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, Slot<V>>,
    ring: VecDeque<K>,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            ring: VecDeque::new(),
        }
    }
}

/// A fixed-shard `RwLock` cache with optional per-shard entry bounds.
///
/// # Poisoning policy
///
/// A panic while a shard guard is held (a panicking hasher, an injected
/// chaos fault, an allocation failure) poisons that shard's `RwLock`.
/// The map behind it is still structurally valid — `compute` closures run
/// *outside* the locks, so a guard is only ever held across plain
/// `HashMap` reads and inserts — and losing 1/16th of a memoization cache
/// must degrade throughput, not crash the batch. Every lock acquisition
/// therefore recovers from poisoning ([`std::sync::PoisonError::into_inner`])
/// and counts the event in [`CacheStats::poisoned_recoveries`].
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<Shard<K, V>>>,
    /// Maximum entries per shard; `0` means unbounded.
    max_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poisoned: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> ShardedCache<K, V> {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_max_entries_per_shard(0)
    }

    /// Creates an empty cache holding at most `max_entries` per shard
    /// (`0` = unbounded). With 16 shards, the whole cache holds at most
    /// `16 * max_entries` entries; overflow evicts via second-chance.
    pub fn with_max_entries_per_shard(max_entries: usize) -> Self {
        ShardedCache {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::new())).collect(),
            max_per_shard: max_entries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// The configured per-shard entry bound (`0` = unbounded).
    pub fn max_entries_per_shard(&self) -> usize {
        self.max_per_shard
    }

    fn shard(&self, key: &K) -> &RwLock<Shard<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Read-locks a shard, recovering (and counting) poisoning. The
    /// poison flag is cleared so each poisoning event is counted once, not
    /// once per subsequent acquisition.
    fn read_shard<'a>(
        &self,
        shard: &'a RwLock<Shard<K, V>>,
    ) -> std::sync::RwLockReadGuard<'a, Shard<K, V>> {
        shard.read().unwrap_or_else(|poisoned| {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            shard.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Write-locks a shard, recovering (and counting) poisoning (see
    /// [`ShardedCache::read_shard`]).
    fn write_shard<'a>(
        &self,
        shard: &'a RwLock<Shard<K, V>>,
    ) -> std::sync::RwLockWriteGuard<'a, Shard<K, V>> {
        shard.write().unwrap_or_else(|poisoned| {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            shard.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Looks `key` up on the shared-lock path, marking the entry
    /// referenced on a hit.
    fn lookup(&self, shard: &RwLock<Shard<K, V>>, key: &K) -> Option<Arc<V>> {
        let guard = self.read_shard(shard);
        let slot = guard.map.get(key)?;
        slot.referenced.store(true, Ordering::Relaxed);
        Some(Arc::clone(&slot.value))
    }

    /// Inserts a freshly computed value under the write lock, then evicts
    /// down to the shard bound. Returns the cached value — the existing
    /// one if a racing worker inserted first (first insert wins).
    fn insert_bounded(&self, shard: &RwLock<Shard<K, V>>, key: K, value: Arc<V>) -> Arc<V> {
        let mut guard = self.write_shard(shard);
        if let Some(slot) = guard.map.get(&key) {
            return Arc::clone(&slot.value);
        }
        guard.ring.push_back(key.clone());
        // New entries start unreferenced (classic clock): a hit must earn
        // the second chance, otherwise every sweep degrades into a full
        // bit-clearing rotation and evicts the hottest entry first.
        guard.map.insert(
            key,
            Slot {
                value: Arc::clone(&value),
                referenced: AtomicBool::new(false),
            },
        );
        if self.max_per_shard > 0 {
            while guard.map.len() > self.max_per_shard {
                self.evict_one(&mut guard);
            }
        }
        value
    }

    /// One second-chance sweep: rotate past referenced entries (clearing
    /// their bit) until an unreferenced one falls out. Bounded by the ring
    /// length — after one full rotation every bit is clear, so the sweep
    /// always terminates with an eviction.
    fn evict_one(&self, guard: &mut Shard<K, V>) {
        let mut rotations = guard.ring.len();
        while let Some(candidate) = guard.ring.pop_front() {
            let Some(slot) = guard.map.get(&candidate) else {
                continue;
            };
            if rotations > 0 && slot.referenced.swap(false, Ordering::Relaxed) {
                rotations -= 1;
                guard.ring.push_back(candidate);
                continue;
            }
            guard.map.remove(&candidate);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }

    /// Returns the cached value for `key`, computing and inserting it with
    /// `compute` on a miss. `counters` receives the per-request accounting.
    ///
    /// On a miss `compute` runs *outside* any lock (stage distributions
    /// take milliseconds; blocking a shard for that long would serialize
    /// the pool). Two workers racing on the same key may both compute; the
    /// first insert wins and the loser's copy is dropped, so the cached
    /// value is deterministic either way — both computed it from the same
    /// inputs.
    pub fn get_or_insert_with<F>(
        &self,
        key: K,
        counters: &RequestCounters,
        compute: F,
    ) -> Arc<V>
    where
        F: FnOnce() -> V,
    {
        let shard = self.shard(&key);
        if let Some(v) = self.lookup(shard, &key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            counters.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        counters.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        self.insert_bounded(shard, key, value)
    }

    /// Like [`ShardedCache::get_or_insert_with`] for fallible computation:
    /// an `Err` is returned to the caller and **not** cached (errors are
    /// cheap to rediscover and must not mask a later valid computation).
    pub fn try_get_or_insert_with<F, E>(
        &self,
        key: K,
        counters: &RequestCounters,
        compute: F,
    ) -> Result<Arc<V>, E>
    where
        F: FnOnce() -> Result<V, E>,
    {
        let shard = self.shard(&key);
        if let Some(v) = self.lookup(shard, &key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        counters.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute()?);
        Ok(self.insert_bounded(shard, key, value))
    }

    /// Cumulative hit/miss/eviction counts since creation (or the last
    /// clear).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            poisoned_recoveries: self.poisoned.load(Ordering::Relaxed),
            ..CacheStats::default()
        }
    }

    /// Inserts an entry without touching the hit/miss counters, for
    /// warm-starting a cache from a persistent store before any request
    /// is served. Returns `true` if the entry was inserted, `false` if
    /// the key was already present (first insert wins, like the compute
    /// path). Seeding past a shard bound evicts normally — the bound is
    /// a memory guarantee, so it holds against seeded entries too.
    pub fn seed(&self, key: K, value: V) -> bool {
        let shard = self.shard(&key);
        {
            let guard = self.read_shard(shard);
            if guard.map.contains_key(&key) {
                return false;
            }
        }
        let seeded = Arc::new(value);
        let cached = self.insert_bounded(shard, key, Arc::clone(&seeded));
        Arc::ptr_eq(&seeded, &cached)
    }

    /// Whether `key` is currently cached. A scheduling probe, not a use:
    /// it touches no hit/miss counters and does not mark the entry
    /// referenced for the eviction clock.
    pub fn contains_key(&self, key: &K) -> bool {
        self.read_shard(self.shard(key)).map.contains_key(key)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.read_shard(s).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the counters (including the
    /// poisoned-recovery count — a cleared cache starts a fresh epoch).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = self.write_shard(shard);
            guard.map.clear();
            guard.ring.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.poisoned.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let counters = RequestCounters::default();
        let a = cache.get_or_insert_with(7, &counters, || 49);
        let b = cache.get_or_insert_with(7, &counters, || panic!("must hit"));
        assert_eq!(*a, 49);
        assert!(Arc::ptr_eq(&a, &b));
        let expected = CacheStats {
            hits: 1,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(cache.stats(), expected);
        assert_eq!(counters.stats(), expected);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let counters = RequestCounters::default();
        cache.get_or_insert_with(1, &counters, || 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_same_key_converges() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let counters = RequestCounters::default();
                    for key in 0..100u64 {
                        let v = cache.get_or_insert_with(key, &counters, || key * key);
                        assert_eq!(*v, key * key);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100);
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 800);
        // Raced first-insert-wins duplicates are possible, but every key
        // missed at least once and hit far more often than not.
        assert!(stats.misses >= 100 && stats.hits >= 600, "{stats:?}");
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let counters = RequestCounters::default();
        let err: Result<Arc<u64>, &str> =
            cache.try_get_or_insert_with(3, &counters, || Err("nope"));
        assert!(err.is_err());
        assert!(cache.is_empty());
        let ok: Result<Arc<u64>, &str> = cache.try_get_or_insert_with(3, &counters, || Ok(9));
        assert_eq!(*ok.unwrap(), 9);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn poisoned_shards_recover_and_are_counted() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let counters = RequestCounters::default();
        cache.get_or_insert_with(1, &counters, || 10);
        // Poison every shard: panic on a helper thread while each write
        // guard is held.
        for shard in &cache.shards {
            let result = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        let _guard = shard.write().unwrap_or_else(|e| e.into_inner());
                        panic!("poison this shard");
                    })
                    .join()
            });
            assert!(result.is_err());
            assert!(shard.is_poisoned());
        }
        // Every operation still works against the poisoned locks.
        let v = cache.get_or_insert_with(1, &counters, || panic!("must hit"));
        assert_eq!(*v, 10);
        let w = cache.get_or_insert_with(2, &counters, || 20);
        assert_eq!(*w, 20);
        assert_eq!(cache.len(), 2);
        assert!(cache.stats().poisoned_recoveries > 0);
        // `clear` both drains entries and starts a fresh counting epoch.
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        // One entry per shard: every insert beyond the first into a shard
        // must evict, and the total never exceeds SHARDS entries.
        let cache: ShardedCache<u64, u64> = ShardedCache::with_max_entries_per_shard(1);
        assert_eq!(cache.max_entries_per_shard(), 1);
        let counters = RequestCounters::default();
        for key in 0..200u64 {
            let v = cache.get_or_insert_with(key, &counters, || key + 1);
            assert_eq!(*v, key + 1);
        }
        assert!(cache.len() <= SHARDS, "len = {}", cache.len());
        let stats = cache.stats();
        assert_eq!(stats.misses, 200);
        assert!(stats.evictions >= 200 - SHARDS as u64, "{stats:?}");
        // Evicted keys recompute to the same value (warm ≡ cold).
        let v = cache.get_or_insert_with(0, &counters, || 1);
        assert_eq!(*v, 1);
    }

    #[test]
    fn second_chance_keeps_the_hot_entry() {
        // Single shard of capacity 2: key A is re-referenced before each
        // insert, so the sweep must evict the cold keys around it.
        let cache: ShardedCache<u64, u64> = ShardedCache::with_max_entries_per_shard(2);
        let counters = RequestCounters::default();
        // Find two keys in the same shard as key 0 to exercise one shard.
        let shard0 = cache.shard(&0) as *const _;
        let same_shard: Vec<u64> = (1..1000u64)
            .filter(|k| std::ptr::eq(cache.shard(k), shard0))
            .take(8)
            .collect();
        cache.get_or_insert_with(0, &counters, || 0);
        for &k in &same_shard {
            // Touch the hot key so its reference bit is set, then insert a
            // cold one; the sweep must pass over hot key 0.
            cache.get_or_insert_with(0, &counters, || unreachable!());
            cache.get_or_insert_with(k, &counters, || k);
        }
        // Key 0 survived every eviction sweep.
        let hits_before = cache.stats().hits;
        cache.get_or_insert_with(0, &counters, || unreachable!());
        assert_eq!(cache.stats().hits, hits_before + 1);
        assert!(cache.stats().evictions >= same_shard.len() as u64 - 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let counters = RequestCounters::default();
        for key in 0..500u64 {
            cache.get_or_insert_with(key, &counters, || key);
        }
        assert_eq!(cache.len(), 500);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn seed_inserts_without_counting_and_first_insert_wins() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        assert!(cache.seed(5, 25));
        assert!(!cache.seed(5, 99), "re-seed must not overwrite");
        assert_eq!(cache.stats(), CacheStats::default());
        let counters = RequestCounters::default();
        let v = cache.get_or_insert_with(5, &counters, || panic!("must hit"));
        assert_eq!(*v, 25);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn seeding_respects_the_shard_bound() {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_max_entries_per_shard(1);
        for key in 0..200u64 {
            cache.seed(key, key);
        }
        assert!(cache.len() <= SHARDS, "len = {}", cache.len());
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn f64_keys_normalize_signed_zero() {
        assert_eq!(f64_key(0.0), f64_key(-0.0));
        assert_ne!(f64_key(1.0), f64_key(2.0));
        assert_eq!(f64_slice_key(&[1.0, -0.0]), vec![1.0f64.to_bits(), 0]);
    }
}
