//! Deterministic fan-out of a batch over a fixed worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work(i)` for every `i in 0..len` across up to `workers` threads
/// and returns the outputs in index order.
///
/// Items are claimed from a shared atomic counter, so scheduling decides
/// only *who* computes an item, never *what* is computed — with pure
/// `work`, the returned vector is identical for any worker count.
pub(crate) fn run_indexed<T, F>(len: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(len);
    if workers <= 1 {
        return (0..len).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        produced.push((i, work(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("engine worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..57).map(|i| i * 3).collect();
        for workers in [1, 2, 5, 16, 64] {
            assert_eq!(run_indexed(57, workers, |i| i * 3), expected);
        }
    }

    #[test]
    fn empty_batch() {
        let out: Vec<u8> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }
}
