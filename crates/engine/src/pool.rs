//! Deterministic fan-out of a batch over a fixed worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work(i)` for every `i in 0..len` across up to `workers` threads
/// and returns the outputs in index order.
///
/// Items are claimed from a shared atomic counter, so scheduling decides
/// only *who* computes an item, never *what* is computed — with pure
/// `work`, the returned vector is identical for any worker count.
pub(crate) fn run_indexed<T, F>(len: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(len);
    if workers <= 1 {
        return (0..len).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        produced.push((i, work(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // A worker that panicked mid-batch loses only the items it had
            // claimed but not delivered; its panic is consumed here rather
            // than re-thrown, and the lost slots are recomputed below. The
            // engine's `work` catches per-request panics itself, so this
            // path exists for defense in depth, not as the primary
            // isolation boundary.
            if let Ok(produced) = handle.join() {
                for (i, value) in produced {
                    slots[i] = Some(value);
                }
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| work(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..57).map(|i| i * 3).collect();
        for workers in [1, 2, 5, 16, 64] {
            assert_eq!(run_indexed(57, workers, |i| i * 3), expected);
        }
    }

    #[test]
    fn empty_batch() {
        let out: Vec<u8> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn recovers_items_lost_to_a_worker_panic() {
        use std::sync::atomic::AtomicBool;
        // The first claim of item 7 kills its worker; the batch must still
        // come back complete, with item 7 recomputed on the fallback path.
        let tripped = AtomicBool::new(false);
        let out = run_indexed(16, 4, |i| {
            if i == 7 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("worker killed by test");
            }
            i * 2
        });
        let expected: Vec<usize> = (0..16).map(|i| i * 2).collect();
        assert_eq!(out, expected);
    }
}
