//! Request and response types of the batched evaluation API.

use crate::cache::{f64_key, CacheStats};
use crate::resilience::{BackendChain, EvalError, RetryPolicy};
use gbd_core::ms_approach::MsOptions;
use gbd_core::prelude::*;
use gbd_core::s_approach::SOptions;
use gbd_sim::config::{BoundaryPolicy, DeploymentSpec, MotionSpec, SimConfig};
use gbd_sim::runner::SimResult;
use std::time::Duration;

/// Which backend evaluates a request.
///
/// The analytical variants mirror the model structs of
/// [`gbd_core::model`]; [`BackendSpec::Simulation`] routes the request
/// through the Monte Carlo simulator, so validation sweeps go through the
/// same batch front door as the analysis they validate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendSpec {
    /// Markov chain based Spatial approach (§3.4).
    Ms(MsOptions),
    /// Single-stage Spatial approach (§3.3), factorized path.
    S(SOptions),
    /// Exact reference model; the distribution is saturated at
    /// `max(saturation_cap, k)`.
    Exact {
        /// Saturation cap of the returned distribution.
        saturation_cap: usize,
    },
    /// Temporal approach (§3.2) with an explicit state budget.
    T {
        /// Truncation caps `g`/`gh`.
        opts: MsOptions,
        /// Abort when the live state set exceeds this bound.
        max_states: usize,
    },
    /// Poisson-field variant of the M-S-approach.
    Poisson,
    /// Monte Carlo simulation.
    Simulation(SimulationSpec),
}

impl BackendSpec {
    /// Paper-default M-S-approach (`g = gh = 3`).
    pub fn ms_default() -> Self {
        BackendSpec::Ms(MsOptions::default())
    }

    /// Extends this backend into a graceful-degradation
    /// [`BackendChain`]: when `self` errors or overruns its deadline, the
    /// engine answers with `fallback` instead and tags the response
    /// [`EvalResponse::degraded`]. Chainable —
    /// `S(...).with_fallback(ms).with_fallback(Poisson)` tries the three
    /// in cost order.
    #[must_use]
    pub fn with_fallback(self, fallback: BackendSpec) -> BackendChain {
        BackendChain::new(self).with_fallback(fallback)
    }

    /// Short stable identifier, matching
    /// [`gbd_core::model::DetectionModel::name`].
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Ms(_) => "ms",
            BackendSpec::S(_) => "s",
            BackendSpec::Exact { .. } => "exact",
            BackendSpec::T { .. } => "t",
            BackendSpec::Poisson => "poisson",
            BackendSpec::Simulation(_) => "sim",
        }
    }
}

/// Simulation campaign settings of a [`BackendSpec::Simulation`] request —
/// a [`SimConfig`] minus the [`SystemParams`] (which come from the
/// request).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationSpec {
    /// Number of independent trials.
    pub trials: u64,
    /// Master seed; the result is a pure function of it.
    pub seed: u64,
    /// Target mobility model.
    pub motion: MotionSpec,
    /// Border handling for sensing queries.
    pub boundary: BoundaryPolicy,
    /// Node-level false-alarm probability per sensor per period.
    pub false_alarm_rate: f64,
    /// Per-period awake probability (duty cycling).
    pub awake_probability: f64,
    /// Sensor placement strategy.
    pub deployment: DeploymentSpec,
    /// Worker threads *inside* the simulation (0 = all cores). Not part of
    /// the cache identity: results are thread-count invariant.
    pub threads: usize,
}

impl Default for SimulationSpec {
    /// Mirrors [`SimConfig::new`]'s paper defaults.
    fn default() -> Self {
        let defaults = SimConfig::new(SystemParams::paper_defaults());
        SimulationSpec {
            trials: defaults.trials,
            seed: defaults.seed,
            motion: defaults.motion,
            boundary: defaults.boundary,
            false_alarm_rate: defaults.false_alarm_rate,
            awake_probability: defaults.awake_probability,
            deployment: defaults.deployment,
            threads: defaults.threads,
        }
    }
}

impl SimulationSpec {
    /// Combines the spec with a request's parameters into a full
    /// [`SimConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `trials == 0` or a
    /// rate/probability is outside `[0, 1]`.
    pub fn to_config(&self, params: SystemParams) -> Result<SimConfig, CoreError> {
        SimConfig::new(params)
            .with_seed(self.seed)
            .with_motion(self.motion)
            .with_boundary(self.boundary)
            .with_deployment(self.deployment)
            .with_threads(self.threads)
            .try_with_trials(self.trials)?
            .try_with_false_alarm_rate(self.false_alarm_rate)?
            .try_with_awake_probability(self.awake_probability)
    }
}

/// Per-request evaluation options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvalOptions {
    /// Report thresholds at which to evaluate the detection probability;
    /// empty means "the request's own `params.k()`". Ignored by the
    /// simulation backend, which always counts detections at `params.k()`.
    pub k_values: Vec<usize>,
    /// Skip the cross-request cache for this request (it neither reads nor
    /// populates any layer). The result is identical either way; use this
    /// to measure cold-path cost.
    pub bypass_cache: bool,
    /// Per-request deadline. The evaluation checkpoints cooperatively (at
    /// M-S stage boundaries and every few thousand enumeration leaves);
    /// past the deadline it stops with [`EvalError::DeadlineExceeded`] and
    /// the request's fallbacks, if any, get a turn. `None` means
    /// unlimited. A deadline never changes a returned value — only
    /// whether one is returned.
    pub deadline: Option<Duration>,
    /// Bounded retry for **simulation requests** whose attempt panicked
    /// (see [`RetryPolicy`] for why analytical backends never retry).
    /// `None` means fail on the first panic.
    pub retry: Option<RetryPolicy>,
}

/// One unit of work for the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// System parameters to evaluate.
    pub params: SystemParams,
    /// Backend to evaluate them with.
    pub backend: BackendSpec,
    /// Cheaper backends tried in order when `backend` errors or misses its
    /// deadline (the graceful-degradation chain; usually built with
    /// [`BackendSpec::with_fallback`]).
    pub fallbacks: Vec<BackendSpec>,
    /// Evaluation options.
    pub options: EvalOptions,
}

impl EvalRequest {
    /// A request with default options. Accepts either a bare
    /// [`BackendSpec`] or a [`BackendChain`] with fallbacks:
    ///
    /// ```
    /// use gbd_core::params::SystemParams;
    /// use gbd_engine::{BackendSpec, EvalRequest};
    ///
    /// let p = SystemParams::paper_defaults();
    /// let plain = EvalRequest::new(p, BackendSpec::ms_default());
    /// assert!(plain.fallbacks.is_empty());
    /// let chained = EvalRequest::new(
    ///     p,
    ///     BackendSpec::ms_default().with_fallback(BackendSpec::Poisson),
    /// );
    /// assert_eq!(chained.fallbacks.len(), 1);
    /// ```
    pub fn new(params: SystemParams, backend: impl Into<BackendChain>) -> Self {
        let chain = backend.into();
        EvalRequest {
            params,
            backend: chain.primary,
            fallbacks: chain.fallbacks,
            options: EvalOptions::default(),
        }
    }

    /// The thresholds this request evaluates at.
    pub(crate) fn thresholds(&self) -> Vec<usize> {
        if self.options.k_values.is_empty() {
            vec![self.params.k()]
        } else {
            self.options.k_values.clone()
        }
    }
}

/// What a backend produced for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutput {
    /// An analytical report-count distribution.
    Analysis(ReportDistribution),
    /// A Monte Carlo campaign summary.
    Simulation(SimResult),
}

impl EvalOutput {
    /// Normalized `P_M[X >= k]`. The simulation variant counted detections
    /// at its configured `k` and returns that estimate for any `k` asked.
    pub fn detection_probability(&self, k: usize) -> f64 {
        match self {
            EvalOutput::Analysis(dist) => dist.detection_probability(k),
            EvalOutput::Simulation(result) => result.detection_probability,
        }
    }

    /// The analytical distribution, if this output has one.
    pub fn analysis(&self) -> Option<&ReportDistribution> {
        match self {
            EvalOutput::Analysis(dist) => Some(dist),
            EvalOutput::Simulation(_) => None,
        }
    }

    /// The simulation summary, if this output has one.
    pub fn simulation(&self) -> Option<&SimResult> {
        match self {
            EvalOutput::Analysis(_) => None,
            EvalOutput::Simulation(result) => Some(result),
        }
    }
}

/// The engine's answer to one [`EvalRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResponse {
    /// Index of the request in the submitted batch (responses are returned
    /// in batch order; the index makes that checkable).
    pub index: usize,
    /// Identifier of the *requested* backend (see [`BackendSpec::name`]).
    pub backend: &'static str,
    /// Identifier of the backend whose result this is. Equal to
    /// [`EvalResponse::backend`] unless a fallback answered (then
    /// [`EvalResponse::degraded`] is set) — or the request failed outright
    /// (then it names the primary, whose error [`EvalResponse::outcome`]
    /// carries).
    pub served_by: &'static str,
    /// Whether a fallback backend answered because the primary errored or
    /// missed its deadline.
    pub degraded: bool,
    /// The backend's output, or the error that stopped the request (the
    /// *primary* backend's error — fallback errors never mask it).
    pub outcome: Result<EvalOutput, EvalError>,
    /// `(k, P_M[X >= k])` at each requested threshold; empty on error.
    pub detection: Vec<(usize, f64)>,
    /// Wall-clock time this request spent evaluating.
    pub duration: Duration,
    /// Cache hits/misses this request's evaluation performed.
    pub cache: CacheStats,
}

impl EvalResponse {
    /// Detection probability at the first requested threshold (the
    /// request's `params.k()` unless overridden).
    pub fn detection_probability(&self) -> Option<f64> {
        self.detection.first().map(|&(_, p)| p)
    }
}

/// Hashable identity of `(params, backend)` for the assembled-result cache
/// layer. Floats enter by bit pattern, so key equality implies the cold
/// computation would be bit-identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ResultKey {
    pub(crate) params: [u64; 6],
    pub(crate) n_sensors: usize,
    pub(crate) m_periods: usize,
    pub(crate) k: usize,
    pub(crate) backend: BackendKey,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum BackendKey {
    Ms {
        g: usize,
        gh: usize,
        eps: u64,
    },
    S {
        cap: usize,
    },
    Exact {
        cap: usize,
    },
    T {
        g: usize,
        gh: usize,
        max_states: usize,
    },
    Poisson,
    Sim {
        trials: u64,
        seed: u64,
        motion: (u8, u64, u64),
        boundary: u8,
        false_alarm_rate: u64,
        awake_probability: u64,
        deployment: (u8, u64),
    },
}

pub(crate) fn result_key(params: &SystemParams, backend: &BackendSpec) -> ResultKey {
    let backend = match *backend {
        BackendSpec::Ms(opts) => BackendKey::Ms {
            g: opts.g,
            gh: opts.gh,
            eps: f64_key(opts.eps),
        },
        BackendSpec::S(opts) => BackendKey::S {
            cap: opts.cap_sensors,
        },
        BackendSpec::Exact { saturation_cap } => BackendKey::Exact {
            cap: saturation_cap,
        },
        BackendSpec::T { opts, max_states } => BackendKey::T {
            g: opts.g,
            gh: opts.gh,
            max_states,
        },
        BackendSpec::Poisson => BackendKey::Poisson,
        BackendSpec::Simulation(spec) => BackendKey::Sim {
            trials: spec.trials,
            seed: spec.seed,
            motion: match spec.motion {
                MotionSpec::Straight => (0, 0, 0),
                MotionSpec::RandomWalk { max_turn } => (1, f64_key(max_turn), 0),
                MotionSpec::VaryingSpeed { v_min, v_max } => {
                    (2, f64_key(v_min), f64_key(v_max))
                }
            },
            boundary: match spec.boundary {
                BoundaryPolicy::Bounded => 0,
                BoundaryPolicy::Torus => 1,
            },
            false_alarm_rate: f64_key(spec.false_alarm_rate),
            awake_probability: f64_key(spec.awake_probability),
            deployment: match spec.deployment {
                DeploymentSpec::UniformRandom => (0, 0),
                DeploymentSpec::Grid { jitter } => (1, f64_key(jitter)),
            },
        },
    };
    ResultKey {
        params: [
            f64_key(params.field_width()),
            f64_key(params.field_height()),
            f64_key(params.sensing_range()),
            f64_key(params.speed()),
            f64_key(params.period_s()),
            f64_key(params.pd()),
        ],
        n_sensors: params.n_sensors(),
        m_periods: params.m_periods(),
        k: params.k(),
        backend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_keys_distinguish_params_and_backends() {
        let p = SystemParams::paper_defaults();
        let ms = BackendSpec::ms_default();
        assert_eq!(result_key(&p, &ms), result_key(&p, &ms));
        assert_ne!(result_key(&p, &ms), result_key(&p.with_n_sensors(60), &ms));
        assert_ne!(result_key(&p, &ms), result_key(&p, &BackendSpec::Poisson));
        assert_ne!(
            result_key(
                &p,
                &BackendSpec::Ms(MsOptions {
                    g: 3,
                    gh: 4,
                    eps: 0.0
                })
            ),
            result_key(
                &p,
                &BackendSpec::Ms(MsOptions {
                    g: 4,
                    gh: 3,
                    eps: 0.0
                })
            )
        );
        // eps changes the assembled result, so it must split the key.
        assert_ne!(
            result_key(
                &p,
                &BackendSpec::Ms(MsOptions {
                    g: 3,
                    gh: 3,
                    eps: 0.0
                })
            ),
            result_key(
                &p,
                &BackendSpec::Ms(MsOptions {
                    g: 3,
                    gh: 3,
                    eps: 1e-9
                })
            )
        );
    }

    #[test]
    fn sim_key_ignores_threads() {
        let p = SystemParams::paper_defaults();
        let a = BackendSpec::Simulation(SimulationSpec {
            threads: 1,
            ..SimulationSpec::default()
        });
        let b = BackendSpec::Simulation(SimulationSpec {
            threads: 8,
            ..SimulationSpec::default()
        });
        assert_eq!(result_key(&p, &a), result_key(&p, &b));
        let c = BackendSpec::Simulation(SimulationSpec {
            seed: 99,
            ..SimulationSpec::default()
        });
        assert_ne!(result_key(&p, &a), result_key(&p, &c));
    }

    #[test]
    fn simulation_spec_round_trips_to_config() {
        let spec = SimulationSpec {
            trials: 123,
            seed: 7,
            false_alarm_rate: 0.01,
            awake_probability: 0.9,
            threads: 2,
            ..SimulationSpec::default()
        };
        let cfg = spec.to_config(SystemParams::paper_defaults()).unwrap();
        assert_eq!(cfg.trials, 123);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.false_alarm_rate, 0.01);
        assert_eq!(cfg.awake_probability, 0.9);
        assert_eq!(cfg.threads, 2);
        assert!(SimulationSpec {
            trials: 0,
            ..SimulationSpec::default()
        }
        .to_config(SystemParams::paper_defaults())
        .is_err());
    }

    #[test]
    fn thresholds_default_to_params_k() {
        let req = EvalRequest::new(SystemParams::paper_defaults(), BackendSpec::ms_default());
        assert_eq!(req.thresholds(), vec![5]);
        let req = EvalRequest {
            options: EvalOptions {
                k_values: vec![3, 5, 7],
                ..EvalOptions::default()
            },
            ..req
        };
        assert_eq!(req.thresholds(), vec![3, 5, 7]);
    }
}
