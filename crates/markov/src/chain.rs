//! Generic discrete-time Markov chain evolution.

use crate::matrix::TransitionMatrix;
use crate::scratch::Scratch;
use gbd_stats::StatsError;

/// A DTMC: a current state distribution plus the machinery to push it
/// through (possibly time-inhomogeneous) transition matrices.
///
/// The paper's Eq (12) is exactly an inhomogeneous evolution:
/// `Result = u · T_H · T_B^{M−ms−1} · Π_j T_{T_j}`.
///
/// # Example
///
/// ```
/// use gbd_markov::chain::MarkovChain;
/// use gbd_markov::matrix::TransitionMatrix;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let t = TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.0, 1.0]])?;
/// let mut chain = MarkovChain::with_initial_state(2, 0)?;
/// chain.step(&t);
/// chain.step(&t);
/// assert!((chain.distribution()[1] - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    dist: Vec<f64>,
    steps: usize,
}

impl MarkovChain {
    /// Creates a chain whose distribution is a point mass on `state`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidPmf`] if `dim == 0` or
    /// `state >= dim`.
    pub fn with_initial_state(dim: usize, state: usize) -> Result<Self, StatsError> {
        if dim == 0 {
            return Err(StatsError::InvalidPmf {
                reason: "chain needs at least one state",
            });
        }
        if state >= dim {
            return Err(StatsError::InvalidPmf {
                reason: "initial state out of range",
            });
        }
        let mut dist = vec![0.0; dim];
        dist[state] = 1.0;
        Ok(MarkovChain { dist, steps: 0 })
    }

    /// Creates a chain from an explicit initial distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidPmf`] if the vector is empty, has
    /// negative/non-finite entries, or sums to more than 1.
    pub fn with_initial_distribution(dist: Vec<f64>) -> Result<Self, StatsError> {
        if dist.is_empty() {
            return Err(StatsError::InvalidPmf {
                reason: "chain needs at least one state",
            });
        }
        let mut total = 0.0;
        for &x in &dist {
            if !x.is_finite() || x < 0.0 {
                return Err(StatsError::InvalidPmf {
                    reason: "distribution entries must be finite and non-negative",
                });
            }
            total += x;
        }
        if total > 1.0 + 1e-9 {
            return Err(StatsError::InvalidPmf {
                reason: "distribution mass exceeds 1",
            });
        }
        Ok(MarkovChain { dist, steps: 0 })
    }

    /// Number of states.
    pub fn dim(&self) -> usize {
        self.dist.len()
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps
    }

    /// Current state distribution.
    pub fn distribution(&self) -> &[f64] {
        &self.dist
    }

    /// Advances one step: `u ← u·T`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match the chain.
    pub fn step(&mut self, t: &TransitionMatrix) {
        self.dist = t.apply_left(&self.dist);
        self.steps += 1;
    }

    /// Advances `n` steps under the same matrix.
    pub fn run(&mut self, t: &TransitionMatrix, n: usize) {
        for _ in 0..n {
            self.step(t);
        }
    }

    /// [`step`](Self::step) through a reusable [`Scratch`] arena:
    /// bit-identical values, no per-step allocation after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match the chain.
    pub fn step_with(&mut self, t: &TransitionMatrix, scratch: &mut Scratch) {
        t.apply_left_into(&self.dist, &mut scratch.conv);
        std::mem::swap(&mut self.dist, &mut scratch.conv);
        self.steps += 1;
    }

    /// [`run`](Self::run) through a reusable [`Scratch`] arena.
    pub fn run_with(&mut self, t: &TransitionMatrix, n: usize, scratch: &mut Scratch) {
        for _ in 0..n {
            self.step_with(t, scratch);
        }
    }

    /// Probability currently in states `k ..` (tail mass).
    pub fn tail_mass(&self, k: usize) -> f64 {
        if k >= self.dist.len() {
            return 0.0;
        }
        self.dist[k..].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn absorbing_pair() -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.0, 1.0]]).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(MarkovChain::with_initial_state(0, 0).is_err());
        assert!(MarkovChain::with_initial_state(2, 2).is_err());
        assert!(MarkovChain::with_initial_distribution(vec![]).is_err());
        assert!(MarkovChain::with_initial_distribution(vec![0.6, 0.6]).is_err());
        assert!(MarkovChain::with_initial_distribution(vec![0.6, 0.4]).is_ok());
    }

    #[test]
    fn absorption_accumulates_geometrically() {
        let t = absorbing_pair();
        let mut c = MarkovChain::with_initial_state(2, 0).unwrap();
        c.run(&t, 3);
        // P[absorbed within 3 steps] = 1 - 0.7^3
        assert!((c.distribution()[1] - (1.0 - 0.7f64.powi(3))).abs() < 1e-12);
        assert_eq!(c.steps_taken(), 3);
    }

    #[test]
    fn step_with_matches_step_bitwise() {
        let t = TransitionMatrix::from_rows(vec![
            vec![0.5, 0.3, 0.2],
            vec![0.1, 0.6, 0.3],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let mut plain = MarkovChain::with_initial_state(3, 0).unwrap();
        let mut arena = plain.clone();
        let mut scratch = Scratch::new();
        for _ in 0..5 {
            plain.step(&t);
            arena.step_with(&t, &mut scratch);
        }
        assert_eq!(plain.steps_taken(), arena.steps_taken());
        for (a, b) in plain.distribution().iter().zip(arena.distribution()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tail_mass() {
        let c = MarkovChain::with_initial_distribution(vec![0.2, 0.3, 0.5]).unwrap();
        assert!((c.tail_mass(1) - 0.8).abs() < 1e-15);
        assert_eq!(c.tail_mass(3), 0.0);
    }

    #[test]
    fn inhomogeneous_evolution_order_matters() {
        let a = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let b = TransitionMatrix::from_rows(vec![vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let mut ab = MarkovChain::with_initial_state(2, 0).unwrap();
        ab.step(&a);
        ab.step(&b);
        assert_eq!(ab.distribution(), &[1.0, 0.0]);
        let mut ba = MarkovChain::with_initial_state(2, 0).unwrap();
        ba.step(&b);
        ba.step(&a);
        assert_eq!(ba.distribution(), &[0.0, 1.0]);
    }
}
