//! Row-(sub)stochastic transition matrices.

use gbd_stats::StatsError;

/// A dense square transition matrix whose rows are sub-stochastic
/// (non-negative, each summing to at most 1).
///
/// Sub-stochastic rows are allowed because the paper's truncated per-stage
/// distributions discard tail mass; a proper chain has rows summing to 1.
///
/// # Example
///
/// ```
/// use gbd_markov::matrix::TransitionMatrix;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let t = TransitionMatrix::from_rows(vec![
///     vec![0.9, 0.1],
///     vec![0.0, 1.0],
/// ])?;
/// assert_eq!(t.dim(), 2);
/// assert_eq!(t.get(0, 1), 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    dim: usize,
    /// Row-major entries.
    data: Vec<f64>,
}

impl TransitionMatrix {
    /// Builds a matrix from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidPmf`] if the matrix is empty, not
    /// square, contains negative or non-finite entries, or a row sums to
    /// more than 1 (beyond floating point tolerance).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, StatsError> {
        let dim = rows.len();
        if dim == 0 {
            return Err(StatsError::InvalidPmf {
                reason: "empty transition matrix",
            });
        }
        let mut data = Vec::with_capacity(dim * dim);
        for row in &rows {
            if row.len() != dim {
                return Err(StatsError::InvalidPmf {
                    reason: "transition matrix must be square",
                });
            }
            let mut total = 0.0;
            for &x in row {
                if !x.is_finite() || x < 0.0 {
                    return Err(StatsError::InvalidPmf {
                        reason: "transition entries must be finite and non-negative",
                    });
                }
                total += x;
            }
            if total > 1.0 + 1e-9 {
                return Err(StatsError::InvalidPmf {
                    reason: "row mass exceeds 1",
                });
            }
            data.extend_from_slice(row);
        }
        Ok(TransitionMatrix { dim, data })
    }

    /// The identity matrix of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn identity(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let mut data = vec![0.0; dim * dim];
        for i in 0..dim {
            data[i * dim + i] = 1.0;
        }
        TransitionMatrix { dim, data }
    }

    /// Matrix dimension (number of states).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `T[from][to]`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.dim && to < self.dim, "state index out of range");
        self.data[from * self.dim + to]
    }

    /// Row `from` as a slice.
    pub fn row(&self, from: usize) -> &[f64] {
        &self.data[from * self.dim..(from + 1) * self.dim]
    }

    /// Left-multiplies a distribution vector: returns `u · T`.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != dim`.
    pub fn apply_left(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(
            u.len(),
            self.dim,
            "vector length must match matrix dimension"
        );
        let mut out = vec![0.0; self.dim];
        for (i, &ui) in u.iter().enumerate() {
            if ui == 0.0 {
                continue;
            }
            for (j, &tij) in self.row(i).iter().enumerate() {
                out[j] += ui * tij;
            }
        }
        out
    }

    /// [`apply_left`](Self::apply_left) into a caller-provided buffer.
    ///
    /// `out` is cleared and refilled (its allocation is reused); the
    /// accumulation order is identical to the allocating version, so the
    /// values are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != dim`.
    pub fn apply_left_into(&self, u: &[f64], out: &mut Vec<f64>) {
        assert_eq!(
            u.len(),
            self.dim,
            "vector length must match matrix dimension"
        );
        out.clear();
        out.resize(self.dim, 0.0);
        for (i, &ui) in u.iter().enumerate() {
            if ui == 0.0 {
                continue;
            }
            for (j, &tij) in self.row(i).iter().enumerate() {
                out[j] += ui * tij;
            }
        }
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn multiply(&self, other: &TransitionMatrix) -> TransitionMatrix {
        assert_eq!(self.dim, other.dim, "matrix dimensions must match");
        let dim = self.dim;
        let mut data = vec![0.0; dim * dim];
        for i in 0..dim {
            for k in 0..dim {
                let aik = self.data[i * dim + k];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..dim {
                    data[i * dim + j] += aik * other.data[k * dim + j];
                }
            }
        }
        TransitionMatrix { dim, data }
    }

    /// Matrix power `self^n` by binary exponentiation.
    pub fn pow(&self, n: usize) -> TransitionMatrix {
        let mut result = TransitionMatrix::identity(self.dim);
        let mut base = self.clone();
        let mut exp = n;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.multiply(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.multiply(&base);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(TransitionMatrix::from_rows(vec![]).is_err());
        assert!(TransitionMatrix::from_rows(vec![vec![1.0, 0.0]]).is_err()); // not square
        assert!(TransitionMatrix::from_rows(vec![vec![-0.1]]).is_err());
        assert!(TransitionMatrix::from_rows(vec![vec![0.7, 0.7], vec![0.0, 1.0]]).is_err());
        assert!(TransitionMatrix::from_rows(vec![vec![0.5, 0.4], vec![0.0, 1.0]]).is_ok());
    }

    #[test]
    fn identity_fixes_vectors() {
        let id = TransitionMatrix::identity(3);
        let u = vec![0.2, 0.3, 0.5];
        assert_eq!(id.apply_left(&u), u);
    }

    #[test]
    fn apply_left_into_is_bit_identical() {
        let t = TransitionMatrix::from_rows(vec![
            vec![0.5, 0.3, 0.2],
            vec![0.1, 0.6, 0.3],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let u = [0.25, 0.5, 0.25];
        let want = t.apply_left(&u);
        let mut out = vec![9.9; 1]; // stale, wrong-sized buffer
        t.apply_left_into(&u, &mut out);
        assert_eq!(out.len(), want.len());
        for (a, b) in out.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn apply_left_two_state_chain() {
        let t = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
        let u = t.apply_left(&[1.0, 0.0]);
        assert_eq!(u, vec![0.9, 0.1]);
        let u2 = t.apply_left(&u);
        assert!((u2[0] - (0.9 * 0.9 + 0.1 * 0.2)).abs() < 1e-15);
    }

    #[test]
    fn pow_matches_repeated_apply() {
        let t = TransitionMatrix::from_rows(vec![
            vec![0.5, 0.3, 0.2],
            vec![0.1, 0.6, 0.3],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let u0 = vec![1.0, 0.0, 0.0];
        let mut u = u0.clone();
        for _ in 0..7 {
            u = t.apply_left(&u);
        }
        let via_pow = t.pow(7).apply_left(&u0);
        for (a, b) in u.iter().zip(&via_pow) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn stochastic_rows_preserve_mass() {
        let t = TransitionMatrix::from_rows(vec![vec![0.25, 0.75], vec![0.6, 0.4]]).unwrap();
        let u = t.apply_left(&[0.5, 0.5]);
        assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn substochastic_rows_leak_mass() {
        let t = TransitionMatrix::from_rows(vec![vec![0.5, 0.3], vec![0.0, 0.9]]).unwrap();
        let u = t.apply_left(&[1.0, 0.0]);
        assert!(u.iter().sum::<f64>() < 1.0);
    }
}
