//! The paper's counting Markov chain (Figures 5–7).
//!
//! States `0 ..= cap` count detection reports accumulated so far. Each
//! stage (Head, one per Body period, one per Tail period) contributes an
//! *increment distribution* — the probability of `m` new reports being
//! generated from that period's NEDR — and the chain transitions
//! `s → min(s + m, cap)`: the top state is the paper's merged
//! "at least `cap` reports" state.
//!
//! Because every transition matrix built this way is a saturating
//! shift-by-increment matrix, evolving the chain is equivalent to a
//! saturating convolution of the state distribution with the increment
//! distribution. [`CountingChain`] uses the fast convolution;
//! [`increment_matrix`] materializes the explicit matrix so the
//! paper-faithful matrix evolution is also available (and is tested to
//! agree with the fast path).

use crate::matrix::TransitionMatrix;
use crate::scratch::Scratch;
use gbd_stats::discrete::DiscreteDist;

/// Builds the explicit saturating transition matrix of a counting step:
/// `T[s][min(s + m, cap)] += increment.pmf(m)`.
///
/// This is exactly the transition matrix sketched in the paper's Figures
/// 5–7 (with the merged top state).
///
/// # Panics
///
/// Panics if the increment distribution carries mass greater than 1.
pub fn increment_matrix(increment: &DiscreteDist, cap: usize) -> TransitionMatrix {
    let dim = cap + 1;
    let mut rows = vec![vec![0.0; dim]; dim];
    for s in 0..dim {
        for (m, &p) in increment.as_slice().iter().enumerate() {
            rows[s][(s + m).min(cap)] += p;
        }
    }
    TransitionMatrix::from_rows(rows).expect("increment distribution must be sub-stochastic")
}

/// A report-counting chain over states `0 ..= cap`, evolved by saturating
/// convolution.
///
/// # Example
///
/// ```
/// use gbd_markov::counting::CountingChain;
/// use gbd_stats::discrete::DiscreteDist;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let inc = DiscreteDist::new(vec![0.8, 0.2])?; // 0 or 1 report per period
/// let mut chain = CountingChain::new(3);
/// for _ in 0..10 {
///     chain.step(&inc);
/// }
/// // P[>= 1 report in 10 periods] = 1 − 0.8^10
/// assert!((chain.distribution().tail_sum(1) - (1.0 - 0.8f64.powi(10))).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CountingChain {
    dist: DiscreteDist,
    cap: usize,
}

impl CountingChain {
    /// Creates a chain with states `0 ..= cap`, starting at 0 reports
    /// (the paper's initial vector `u = [1 0 … 0]`, Eq (11)).
    pub fn new(cap: usize) -> Self {
        CountingChain {
            dist: DiscreteDist::point_mass(0),
            cap,
        }
    }

    /// The merged top state index.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Applies one stage: saturating-convolves the state distribution with
    /// the stage's increment distribution.
    pub fn step(&mut self, increment: &DiscreteDist) {
        self.dist = self.dist.convolve_saturating(increment, self.cap);
    }

    /// Applies the same stage `n` times (the Body stage runs `M − ms − 1`
    /// identical steps).
    pub fn run(&mut self, increment: &DiscreteDist, n: usize) {
        for _ in 0..n {
            self.step(increment);
        }
    }

    /// [`step`](Self::step) through a reusable [`Scratch`] arena:
    /// bit-identical values, zero heap allocations once the arena has
    /// warmed up to the chain's support size.
    pub fn step_with(&mut self, increment: &DiscreteDist, scratch: &mut Scratch) {
        self.dist
            .convolve_saturating_in_place(increment, self.cap, &mut scratch.conv);
    }

    /// [`run`](Self::run) through a reusable [`Scratch`] arena.
    pub fn run_with(&mut self, increment: &DiscreteDist, n: usize, scratch: &mut Scratch) {
        for _ in 0..n {
            self.step_with(increment, scratch);
        }
    }

    /// The current distribution of accumulated report counts.
    ///
    /// Its total mass is the product of the stage masses — less than 1 when
    /// stages were truncated; Eq (13)'s normalization is
    /// `self.distribution().normalized()`.
    pub fn distribution(&self) -> &DiscreteDist {
        &self.dist
    }

    /// Consumes the chain and returns the final distribution.
    pub fn into_distribution(self) -> DiscreteDist {
        self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;

    fn dist(v: &[f64]) -> DiscreteDist {
        DiscreteDist::new(v.to_vec()).unwrap()
    }

    #[test]
    fn matrix_rows_are_saturating_shifts() {
        let inc = dist(&[0.5, 0.3, 0.2]);
        let t = increment_matrix(&inc, 3);
        // From state 0: land on 0,1,2.
        assert_eq!(t.row(0), &[0.5, 0.3, 0.2, 0.0]);
        // From state 2: increments 1 and 2 both saturate at 3.
        assert_eq!(t.row(2), &[0.0, 0.0, 0.5, 0.5]);
        // Top state absorbs.
        assert_eq!(t.row(3), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn chain_matches_explicit_matrix_evolution() {
        let inc_a = dist(&[0.6, 0.25, 0.15]);
        let inc_b = dist(&[0.3, 0.5, 0.1, 0.1]);
        let cap = 6;

        let mut fast = CountingChain::new(cap);
        fast.step(&inc_a);
        fast.run(&inc_b, 3);
        fast.step(&inc_a);

        let mut slow = MarkovChain::with_initial_state(cap + 1, 0).unwrap();
        let ta = increment_matrix(&inc_a, cap);
        let tb = increment_matrix(&inc_b, cap);
        slow.step(&ta);
        slow.run(&tb, 3);
        slow.step(&ta);

        for (k, &p) in slow.distribution().iter().enumerate() {
            assert!((fast.distribution().pmf(k) - p).abs() < 1e-12, "state {k}");
        }
    }

    #[test]
    fn step_with_is_bit_identical_to_step() {
        use crate::scratch::Scratch;
        let inc_a = dist(&[0.6, 0.25, 0.15]);
        let inc_b = dist(&[0.3, 0.5, 0.1, 0.1]);
        let cap = 6;

        let mut plain = CountingChain::new(cap);
        plain.step(&inc_a);
        plain.run(&inc_b, 3);
        plain.step(&inc_a);

        let mut scratch = Scratch::new();
        let mut arena = CountingChain::new(cap);
        arena.step_with(&inc_a, &mut scratch);
        arena.run_with(&inc_b, 3, &mut scratch);
        arena.step_with(&inc_a, &mut scratch);

        let (p, a) = (plain.distribution(), arena.distribution());
        assert_eq!(p.as_slice().len(), a.as_slice().len());
        for (x, y) in p.as_slice().iter().zip(a.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn substochastic_increments_track_truncation_mass() {
        // A truncated stage with mass 0.9 applied 3 times leaves 0.9^3.
        let inc = dist(&[0.7, 0.2]);
        let mut chain = CountingChain::new(4);
        chain.run(&inc, 3);
        assert!((chain.distribution().total_mass() - 0.9f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn cap_zero_collapses_to_single_state() {
        let inc = dist(&[0.5, 0.5]);
        let mut chain = CountingChain::new(0);
        chain.run(&inc, 5);
        assert!((chain.distribution().pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_probability_unaffected_by_cap_above_threshold() {
        // P[>= k] is identical for any cap >= k: merging states beyond k
        // never changes the tail at k (the paper's merged-state argument).
        let inc = dist(&[0.4, 0.3, 0.2, 0.1]);
        let k = 4;
        let mut small = CountingChain::new(k);
        let mut large = CountingChain::new(40);
        for _ in 0..6 {
            small.step(&inc);
            large.step(&inc);
        }
        assert!(
            (small.distribution().tail_sum(k) - large.distribution().tail_sum(k)).abs() < 1e-12
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::chain::MarkovChain;
    use proptest::prelude::*;

    fn arb_increment() -> impl Strategy<Value = DiscreteDist> {
        proptest::collection::vec(0.0f64..1.0, 1..6).prop_map(|raw| {
            let total: f64 = raw.iter().sum();
            let scale = if total > 0.0 { 1.0 / total } else { 0.0 };
            let mut v: Vec<f64> = raw.iter().map(|x| x * scale).collect();
            if total == 0.0 {
                v[0] = 1.0;
            }
            DiscreteDist::new(v).unwrap()
        })
    }

    proptest! {
        #[test]
        fn convolution_and_matrix_agree(
            incs in proptest::collection::vec(arb_increment(), 1..5),
            cap in 1usize..10,
        ) {
            let mut fast = CountingChain::new(cap);
            let mut slow = MarkovChain::with_initial_state(cap + 1, 0).unwrap();
            for inc in &incs {
                fast.step(inc);
                slow.step(&increment_matrix(inc, cap));
            }
            for k in 0..=cap {
                prop_assert!((fast.distribution().pmf(k) - slow.distribution()[k]).abs() < 1e-10);
            }
        }

        #[test]
        fn mass_is_preserved_by_proper_increments(
            incs in proptest::collection::vec(arb_increment(), 1..6),
            cap in 1usize..8,
        ) {
            let mut chain = CountingChain::new(cap);
            for inc in &incs {
                chain.step(inc);
            }
            prop_assert!((chain.distribution().total_mass() - 1.0).abs() < 1e-9);
        }
    }
}
