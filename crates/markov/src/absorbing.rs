//! Absorbing-chain analysis.
//!
//! Used by the time-to-detection extension experiments: with the detection
//! threshold state `k` made absorbing, the expected number of sensing
//! periods until the system crosses `k` reports is the expected absorption
//! time of the counting chain.

use crate::matrix::TransitionMatrix;
use crate::scratch::Scratch;
use gbd_stats::StatsError;

/// Results of analyzing an absorbing chain.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsorbingAnalysis {
    /// Indices of the absorbing states, in ascending order.
    pub absorbing_states: Vec<usize>,
    /// `absorption_probability[t][a]`: probability that, starting from the
    /// `t`-th *transient* state, the chain is eventually absorbed in the
    /// `a`-th absorbing state.
    pub absorption_probability: Vec<Vec<f64>>,
    /// `expected_steps[t]`: expected steps to absorption from the `t`-th
    /// transient state.
    pub expected_steps: Vec<f64>,
    /// Indices of the transient states, in ascending order.
    pub transient_states: Vec<usize>,
}

/// Analyzes an absorbing Markov chain: identifies absorbing states
/// (`T[i][i] == 1`), then solves `(I − Q)·x = b` for the absorption
/// probabilities and expected absorption times.
///
/// # Errors
///
/// Returns [`StatsError::InvalidPmf`] if the chain has no absorbing state,
/// no transient state, or `(I − Q)` is numerically singular (some transient
/// state cannot reach absorption).
pub fn analyze_absorbing(t: &TransitionMatrix) -> Result<AbsorbingAnalysis, StatsError> {
    analyze_absorbing_with(t, &mut Scratch::new())
}

/// [`analyze_absorbing`] through a reusable [`Scratch`] arena.
///
/// The classification mask, the flat `(I − Q)` system and the right-hand
/// side block all live in the arena, so repeated solves over same-sized
/// chains (the time-to-detection sweeps) stop allocating intermediates;
/// only the returned [`AbsorbingAnalysis`] is freshly allocated. Values
/// are bit-identical to the allocating path: the elimination performs the
/// same operations in the same order, only the storage layout changed.
///
/// # Errors
///
/// Same contract as [`analyze_absorbing`].
pub fn analyze_absorbing_with(
    t: &TransitionMatrix,
    scratch: &mut Scratch,
) -> Result<AbsorbingAnalysis, StatsError> {
    let dim = t.dim();
    // O(n) classification: mark absorbing states once, partition by mask
    // (the seed version re-scanned the absorbing list per state, O(n²)).
    scratch.mask.clear();
    scratch.mask.resize(dim, false);
    scratch.absorbing.clear();
    scratch.transient.clear();
    for i in 0..dim {
        if t.get(i, i) >= 1.0 - 1e-12 {
            scratch.mask[i] = true;
            scratch.absorbing.push(i);
        } else {
            scratch.transient.push(i);
        }
    }
    if scratch.absorbing.is_empty() {
        return Err(StatsError::InvalidPmf {
            reason: "chain has no absorbing state",
        });
    }
    if scratch.transient.is_empty() {
        return Err(StatsError::InvalidPmf {
            reason: "chain has no transient state",
        });
    }
    let (transient, absorbing) = (&scratch.transient, &scratch.absorbing);
    let nt = transient.len();
    let na = absorbing.len();
    let m = na + 1;

    // Build I − Q over the transient states, flat row-major.
    scratch.flat_a.clear();
    scratch.flat_a.resize(nt * nt, 0.0);
    for (ri, &si) in transient.iter().enumerate() {
        for (rj, &sj) in transient.iter().enumerate() {
            scratch.flat_a[ri * nt + rj] = if ri == rj {
                1.0 - t.get(si, sj)
            } else {
                -t.get(si, sj)
            };
        }
    }

    // Right-hand sides: one column per absorbing state (R columns) plus the
    // all-ones column for expected steps.
    scratch.flat_b.clear();
    scratch.flat_b.resize(nt * m, 0.0);
    for (ri, &si) in transient.iter().enumerate() {
        for (ci, &sa) in absorbing.iter().enumerate() {
            scratch.flat_b[ri * m + ci] = t.get(si, sa);
        }
        scratch.flat_b[ri * m + na] = 1.0;
    }

    solve_multi_flat(&mut scratch.flat_a, &mut scratch.flat_b, nt, m)?;

    let solution = &scratch.flat_b;
    let mut absorption_probability = vec![vec![0.0; na]; nt];
    let mut expected_steps = vec![0.0; nt];
    for ri in 0..nt {
        for ci in 0..na {
            absorption_probability[ri][ci] = solution[ri * m + ci].clamp(0.0, 1.0);
        }
        expected_steps[ri] = solution[ri * m + na].max(0.0);
    }
    Ok(AbsorbingAnalysis {
        absorbing_states: absorbing.clone(),
        absorption_probability,
        expected_steps,
        transient_states: transient.clone(),
    })
}

/// Solves `A·X = B` (A: `n×n`, B: `n×m`, both flat row-major, solved in
/// place) by Gaussian elimination with partial pivoting.
///
/// Performs the same arithmetic in the same order as the seed's
/// nested-`Vec` solver (kept as the test oracle), so results are
/// bit-identical; only the storage is flat.
fn solve_multi_flat(
    a: &mut [f64],
    b: &mut [f64],
    n: usize,
    m: usize,
) -> Result<(), StatsError> {
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i * n + col]
                    .abs()
                    .partial_cmp(&a[j * n + col].abs())
                    .unwrap()
            })
            .unwrap();
        if a[pivot_row * n + col].abs() < 1e-13 {
            return Err(StatsError::InvalidPmf {
                reason: "singular system: some transient state cannot reach absorption",
            });
        }
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
            }
            for j in 0..m {
                b.swap(col * m + j, pivot_row * m + j);
            }
        }
        let pivot = a[col * n + col];
        for j in col..n {
            a[col * n + j] /= pivot;
        }
        for j in 0..m {
            b[col * m + j] /= pivot;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            for j in 0..m {
                b[row * m + j] -= factor * b[col * m + j];
            }
        }
    }
    Ok(())
}

/// The seed's nested-`Vec` Gaussian elimination, kept as the oracle the
/// flat solver is property-tested against bit for bit.
#[cfg(test)]
#[allow(clippy::needless_range_loop)] // double indexing into `a`/`b` rows
fn solve_multi_nested(
    mut a: Vec<Vec<f64>>,
    mut b: Vec<Vec<f64>>,
) -> Result<Vec<Vec<f64>>, StatsError> {
    let n = a.len();
    let m = b[0].len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot_row][col].abs() < 1e-13 {
            return Err(StatsError::InvalidPmf {
                reason: "singular system: some transient state cannot reach absorption",
            });
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        for j in col..n {
            a[col][j] /= pivot;
        }
        for j in 0..m {
            b[col][j] /= pivot;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row][j] -= factor * a[col][j];
            }
            for j in 0..m {
                b[row][j] -= factor * b[col][j];
            }
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gambler_ruin_three_states() {
        // States 0 (ruin, absorbing), 1 (transient), 2 (win, absorbing);
        // fair coin: from 1 go to 0 or 2 with probability 1/2.
        let t = TransitionMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let a = analyze_absorbing(&t).unwrap();
        assert_eq!(a.absorbing_states, vec![0, 2]);
        assert_eq!(a.transient_states, vec![1]);
        assert!((a.absorption_probability[0][0] - 0.5).abs() < 1e-12);
        assert!((a.absorption_probability[0][1] - 0.5).abs() < 1e-12);
        assert!((a.expected_steps[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_absorption_time() {
        // Stay with probability 1−p, absorb with probability p: expected
        // steps 1/p.
        let p = 0.2;
        let t = TransitionMatrix::from_rows(vec![vec![1.0 - p, p], vec![0.0, 1.0]]).unwrap();
        let a = analyze_absorbing(&t).unwrap();
        assert!((a.expected_steps[0] - 1.0 / p).abs() < 1e-10);
        assert!((a.absorption_probability[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_of_states_expected_time_adds() {
        // 0 → 1 → 2 (absorbing), each hop geometric with p = 0.5:
        // expected time from 0 is 4.
        let t = TransitionMatrix::from_rows(vec![
            vec![0.5, 0.5, 0.0],
            vec![0.0, 0.5, 0.5],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let a = analyze_absorbing(&t).unwrap();
        assert!((a.expected_steps[0] - 4.0).abs() < 1e-10);
        assert!((a.expected_steps[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn large_counting_chain_regression() {
        // ~1k-state saturating counting chain with the top state absorbing.
        // The seed's O(n²) `Vec::contains` classification made this scan
        // quadratic; the boolean mask keeps it linear. Expected absorption
        // time from state 0 must be (cap / mean increment) within rounding:
        // increments are 0/1/2 with mean 1, so ~cap steps, and each other
        // transient start strictly less.
        let dim = 1001;
        let cap = dim - 1;
        let inc = [0.25, 0.5, 0.25];
        let mut rows = vec![vec![0.0; dim]; dim];
        for (s, row) in rows.iter_mut().enumerate().take(cap) {
            for (m, &p) in inc.iter().enumerate() {
                row[(s + m).min(cap)] += p;
            }
        }
        rows[cap][cap] = 1.0;
        let t = TransitionMatrix::from_rows(rows).unwrap();
        let a = analyze_absorbing(&t).unwrap();
        assert_eq!(a.absorbing_states, vec![cap]);
        assert_eq!(a.transient_states.len(), cap);
        // Mean-1 increments: expected time from 0 is ~cap (renewal theory;
        // the saturating top edge only shaves a fraction of a step).
        assert!(
            (a.expected_steps[0] - cap as f64).abs() < 2.0,
            "expected ~{cap}, got {}",
            a.expected_steps[0]
        );
        // Monotone: starting closer to the cap absorbs sooner.
        for w in a.expected_steps.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        assert!((a.absorption_probability[0][0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scratch_reuse_across_solves_is_bit_identical() {
        let t1 = TransitionMatrix::from_rows(vec![
            vec![0.5, 0.25, 0.25],
            vec![0.1, 0.4, 0.5],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let t2 = TransitionMatrix::from_rows(vec![vec![0.8, 0.2], vec![0.0, 1.0]]).unwrap();
        let mut scratch = Scratch::new();
        // Interleave differently-sized solves through one arena.
        for t in [&t1, &t2, &t1, &t2] {
            let fresh = analyze_absorbing(t).unwrap();
            let reused = analyze_absorbing_with(t, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
            for (x, y) in fresh.expected_steps.iter().zip(&reused.expected_steps) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn flat_solver_is_bit_identical_to_nested_oracle() {
        // Deterministic pseudo-random systems: diagonally dominant so they
        // are well-conditioned, varied enough to exercise pivoting.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in [1usize, 2, 3, 5, 8, 13] {
            let m = 3;
            let mut a_nested = vec![vec![0.0; n]; n];
            let mut b_nested = vec![vec![0.0; m]; n];
            for i in 0..n {
                for a in a_nested[i].iter_mut() {
                    *a = next() - 0.5;
                }
                a_nested[i][i] += n as f64; // diagonal dominance
                for b in b_nested[i].iter_mut() {
                    *b = next();
                }
            }
            let mut a_flat: Vec<f64> = a_nested.iter().flatten().copied().collect();
            let mut b_flat: Vec<f64> = b_nested.iter().flatten().copied().collect();
            let want = solve_multi_nested(a_nested, b_nested).unwrap();
            solve_multi_flat(&mut a_flat, &mut b_flat, n, m).unwrap();
            for i in 0..n {
                for j in 0..m {
                    assert_eq!(
                        b_flat[i * m + j].to_bits(),
                        want[i][j].to_bits(),
                        "n={n} entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_chain_without_absorbing_state() {
        let t = TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        assert!(analyze_absorbing(&t).is_err());
    }

    #[test]
    fn rejects_all_absorbing() {
        let t = TransitionMatrix::identity(3);
        assert!(analyze_absorbing(&t).is_err());
    }

    #[test]
    fn rejects_unreachable_absorption() {
        // State 0 loops on itself forever (never reaches absorbing state 1's
        // basin) -> singular system... here state 0 is itself absorbing-like
        // but with mass 1 on itself it is classified absorbing, so craft a
        // 2-cycle instead.
        let t = TransitionMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert!(analyze_absorbing(&t).is_err());
    }
}
