//! Absorbing-chain analysis.
//!
//! Used by the time-to-detection extension experiments: with the detection
//! threshold state `k` made absorbing, the expected number of sensing
//! periods until the system crosses `k` reports is the expected absorption
//! time of the counting chain.

use crate::matrix::TransitionMatrix;
use gbd_stats::StatsError;

/// Results of analyzing an absorbing chain.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsorbingAnalysis {
    /// Indices of the absorbing states, in ascending order.
    pub absorbing_states: Vec<usize>,
    /// `absorption_probability[t][a]`: probability that, starting from the
    /// `t`-th *transient* state, the chain is eventually absorbed in the
    /// `a`-th absorbing state.
    pub absorption_probability: Vec<Vec<f64>>,
    /// `expected_steps[t]`: expected steps to absorption from the `t`-th
    /// transient state.
    pub expected_steps: Vec<f64>,
    /// Indices of the transient states, in ascending order.
    pub transient_states: Vec<usize>,
}

/// Analyzes an absorbing Markov chain: identifies absorbing states
/// (`T[i][i] == 1`), then solves `(I − Q)·x = b` for the absorption
/// probabilities and expected absorption times.
///
/// # Errors
///
/// Returns [`StatsError::InvalidPmf`] if the chain has no absorbing state,
/// no transient state, or `(I − Q)` is numerically singular (some transient
/// state cannot reach absorption).
pub fn analyze_absorbing(t: &TransitionMatrix) -> Result<AbsorbingAnalysis, StatsError> {
    let dim = t.dim();
    let absorbing: Vec<usize> = (0..dim).filter(|&i| t.get(i, i) >= 1.0 - 1e-12).collect();
    let transient: Vec<usize> = (0..dim).filter(|i| !absorbing.contains(i)).collect();
    if absorbing.is_empty() {
        return Err(StatsError::InvalidPmf {
            reason: "chain has no absorbing state",
        });
    }
    if transient.is_empty() {
        return Err(StatsError::InvalidPmf {
            reason: "chain has no transient state",
        });
    }
    let nt = transient.len();

    // Build I − Q over the transient states.
    let mut a = vec![vec![0.0; nt]; nt];
    for (ri, &si) in transient.iter().enumerate() {
        for (rj, &sj) in transient.iter().enumerate() {
            a[ri][rj] = if ri == rj {
                1.0 - t.get(si, sj)
            } else {
                -t.get(si, sj)
            };
        }
    }

    // Right-hand sides: one column per absorbing state (R columns) plus the
    // all-ones column for expected steps.
    let na = absorbing.len();
    let mut rhs = vec![vec![0.0; na + 1]; nt];
    for (ri, &si) in transient.iter().enumerate() {
        for (ci, &sa) in absorbing.iter().enumerate() {
            rhs[ri][ci] = t.get(si, sa);
        }
        rhs[ri][na] = 1.0;
    }

    let solution = solve_multi(a, rhs)?;

    let mut absorption_probability = vec![vec![0.0; na]; nt];
    let mut expected_steps = vec![0.0; nt];
    for ri in 0..nt {
        for ci in 0..na {
            absorption_probability[ri][ci] = solution[ri][ci].clamp(0.0, 1.0);
        }
        expected_steps[ri] = solution[ri][na].max(0.0);
    }
    Ok(AbsorbingAnalysis {
        absorbing_states: absorbing,
        absorption_probability,
        expected_steps,
        transient_states: transient,
    })
}

/// Solves `A·X = B` for multiple right-hand sides by Gaussian elimination
/// with partial pivoting.
#[allow(clippy::needless_range_loop)] // double indexing into `a`/`b` rows
fn solve_multi(
    mut a: Vec<Vec<f64>>,
    mut b: Vec<Vec<f64>>,
) -> Result<Vec<Vec<f64>>, StatsError> {
    let n = a.len();
    let m = b[0].len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot_row][col].abs() < 1e-13 {
            return Err(StatsError::InvalidPmf {
                reason: "singular system: some transient state cannot reach absorption",
            });
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        for j in col..n {
            a[col][j] /= pivot;
        }
        for j in 0..m {
            b[col][j] /= pivot;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row][j] -= factor * a[col][j];
            }
            for j in 0..m {
                b[row][j] -= factor * b[col][j];
            }
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gambler_ruin_three_states() {
        // States 0 (ruin, absorbing), 1 (transient), 2 (win, absorbing);
        // fair coin: from 1 go to 0 or 2 with probability 1/2.
        let t = TransitionMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let a = analyze_absorbing(&t).unwrap();
        assert_eq!(a.absorbing_states, vec![0, 2]);
        assert_eq!(a.transient_states, vec![1]);
        assert!((a.absorption_probability[0][0] - 0.5).abs() < 1e-12);
        assert!((a.absorption_probability[0][1] - 0.5).abs() < 1e-12);
        assert!((a.expected_steps[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_absorption_time() {
        // Stay with probability 1−p, absorb with probability p: expected
        // steps 1/p.
        let p = 0.2;
        let t = TransitionMatrix::from_rows(vec![vec![1.0 - p, p], vec![0.0, 1.0]]).unwrap();
        let a = analyze_absorbing(&t).unwrap();
        assert!((a.expected_steps[0] - 1.0 / p).abs() < 1e-10);
        assert!((a.absorption_probability[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_of_states_expected_time_adds() {
        // 0 → 1 → 2 (absorbing), each hop geometric with p = 0.5:
        // expected time from 0 is 4.
        let t = TransitionMatrix::from_rows(vec![
            vec![0.5, 0.5, 0.0],
            vec![0.0, 0.5, 0.5],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let a = analyze_absorbing(&t).unwrap();
        assert!((a.expected_steps[0] - 4.0).abs() < 1e-10);
        assert!((a.expected_steps[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_chain_without_absorbing_state() {
        let t = TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        assert!(analyze_absorbing(&t).is_err());
    }

    #[test]
    fn rejects_all_absorbing() {
        let t = TransitionMatrix::identity(3);
        assert!(analyze_absorbing(&t).is_err());
    }

    #[test]
    fn rejects_unreachable_absorption() {
        // State 0 loops on itself forever (never reaches absorbing state 1's
        // basin) -> singular system... here state 0 is itself absorbing-like
        // but with mass 1 on itself it is classified absorbing, so craft a
        // 2-cycle instead.
        let t = TransitionMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert!(analyze_absorbing(&t).is_err());
    }
}
