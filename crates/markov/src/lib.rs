#![warn(missing_docs)]
//! Discrete-time Markov chain substrate for the `sparse-groupdet` workspace.
//!
//! The M-S-approach of Zhang et al. (ICDCS 2008) assembles per-period
//! report-count distributions with a Markov chain whose states count the
//! detection reports accumulated so far (Figures 5–7 of the paper). This
//! crate provides:
//!
//! * [`matrix`] — row-stochastic transition matrices with validation;
//! * [`chain`] — generic DTMC distribution evolution `u ← u·T`;
//! * [`counting`] — the paper's *counting chain*: states `0 ..= cap` where a
//!   step adds an increment drawn from a per-stage distribution, saturating
//!   at the merged top state. Both an explicit-matrix evolution and an
//!   equivalent fast saturating-convolution evolution are provided and
//!   property-tested against each other;
//! * [`absorbing`] — absorbing-chain analysis (hitting probabilities and
//!   expected absorption time) used by the time-to-detection extension
//!   experiments.
//!
//! # Example
//!
//! ```
//! use gbd_markov::counting::CountingChain;
//! use gbd_stats::discrete::DiscreteDist;
//!
//! # fn main() -> Result<(), gbd_stats::StatsError> {
//! // Each period produces 0 or 1 report with probability 1/2 each; after
//! // 4 periods, P[>= 2 reports] = 11/16.
//! let per_period = DiscreteDist::new(vec![0.5, 0.5])?;
//! let mut chain = CountingChain::new(8);
//! for _ in 0..4 {
//!     chain.step(&per_period);
//! }
//! assert!((chain.distribution().tail_sum(2) - 11.0 / 16.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

//! All evolution kernels come in an allocating flavor and a `_with` flavor
//! threaded through a reusable [`scratch::Scratch`] arena; the `_with`
//! flavor produces bit-identical values with zero heap allocations after
//! warm-up, which is what the hot analytical path uses.

pub mod absorbing;
pub mod chain;
pub mod counting;
pub mod matrix;
pub mod scratch;
