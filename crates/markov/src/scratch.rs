//! Reusable scratch arena for allocation-free chain evolution.
//!
//! A full M-S assembly (Head → Body^(M−ms−1) → Tail_1..Tail_ms, Eqs
//! (12)–(13) of the paper) is a sequence of saturating convolutions plus,
//! for the time-to-detection extension, one absorbing-chain solve. Each of
//! those steps needs temporary buffers whose sizes stabilize after the
//! first assembly; [`Scratch`] owns them so the steady-state hot path
//! performs zero heap allocations.
//!
//! The arena is deliberately dumb: buffers are cleared and refilled by each
//! kernel, never read across calls, so threading one `Scratch` through an
//! arbitrary interleaving of counting-chain steps, matrix applications and
//! absorbing solves is always safe. Every `_with` kernel produces values
//! bit-identical to its allocating counterpart — the arena changes where
//! intermediates live, never what is computed.

/// Reusable buffers for the chain-evolution kernels.
///
/// Create one per worker (or use a thread-local) and thread it through
/// [`CountingChain::step_with`](crate::counting::CountingChain::step_with),
/// [`MarkovChain::step_with`](crate::chain::MarkovChain::step_with) and
/// [`analyze_absorbing_with`](crate::absorbing::analyze_absorbing_with).
///
/// # Example
///
/// ```
/// use gbd_markov::counting::CountingChain;
/// use gbd_markov::scratch::Scratch;
/// use gbd_stats::discrete::DiscreteDist;
///
/// # fn main() -> Result<(), gbd_stats::StatsError> {
/// let per_period = DiscreteDist::new(vec![0.5, 0.5])?;
/// let mut scratch = Scratch::new();
/// let mut chain = CountingChain::new(8);
/// for _ in 0..4 {
///     chain.step_with(&per_period, &mut scratch); // no allocation after warm-up
/// }
/// assert!((chain.distribution().tail_sum(2) - 11.0 / 16.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Scratch {
    /// Ping-pong buffer for convolution / matrix-vector products.
    pub(crate) conv: Vec<f64>,
    /// Absorbing-state classification mask (one flag per state).
    pub(crate) mask: Vec<bool>,
    /// Flat row-major `(I − Q)` system matrix.
    pub(crate) flat_a: Vec<f64>,
    /// Flat row-major right-hand-side block.
    pub(crate) flat_b: Vec<f64>,
    /// Transient state indices.
    pub(crate) transient: Vec<usize>,
    /// Absorbing state indices.
    pub(crate) absorbing: Vec<usize>,
}

impl Scratch {
    /// An empty arena; buffers grow to the working-set size on first use
    /// and are reused afterwards.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// The convolution ping-pong buffer, for callers that drive
    /// [`DiscreteDist`](gbd_stats::discrete::DiscreteDist) in-place kernels
    /// directly (e.g. per-stage report-distribution assembly).
    pub fn conv_buffer(&mut self) -> &mut Vec<f64> {
        &mut self.conv
    }

    /// Total `f64` capacity currently held (diagnostic; used by tests to
    /// assert the warm path stops growing).
    pub fn capacity(&self) -> usize {
        self.conv.capacity() + self.flat_a.capacity() + self.flat_b.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingChain;
    use gbd_stats::discrete::DiscreteDist;

    #[test]
    fn warm_scratch_capacity_is_stable() {
        let inc = DiscreteDist::new(vec![0.25, 0.5, 0.25]).unwrap();
        let mut scratch = Scratch::new();
        // Warm up.
        let mut chain = CountingChain::new(64);
        for _ in 0..10 {
            chain.step_with(&inc, &mut scratch);
        }
        let warm = scratch.capacity();
        // Re-run the identical workload: capacity must not grow.
        let mut chain = CountingChain::new(64);
        for _ in 0..10 {
            chain.step_with(&inc, &mut scratch);
        }
        assert_eq!(scratch.capacity(), warm);
    }
}
