//! Time-to-detection analysis.
//!
//! The paper computes only `P_M[X >= k]` — detection *somewhere* in the
//! window. For an operator, *when* detection happens matters too: a border
//! crosser found in minute 3 and one found in minute 19 are different
//! outcomes.
//!
//! Two estimators are provided:
//!
//! * [`analyze`] — fast, **arrival-attributed**: runs the M-S chain with
//!   the threshold state absorbing and reads the tail after every period.
//!   Because the M-S-approach marginalizes each sensor's per-period coins
//!   into its arrival period's stage, a report is credited up to `ms`
//!   periods early; the curve is therefore an *early-shifted* (stochastic
//!   upper) bound whose endpoint is the correct window probability.
//! * [`analyze_exact`] — exact, via the [`crate::t_approach`]: the
//!   Temporal approach carries enough state to place every report in the
//!   period it actually fires, so its per-period tail is the true
//!   first-passage curve. This is the one computation where the §3.2
//!   approach the paper rejects earns its state-space cost.

use crate::ms_approach::MsOptions;
use crate::params::SystemParams;
use crate::report_dist::stage_distribution;
use crate::CoreError;
use gbd_geometry::subarea::SubareaTable;
use gbd_markov::counting::CountingChain;

/// First-passage results: when the cumulative report count first reaches
/// `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeToDetection {
    /// `by_period[m − 1]` = normalized `P[detected by end of period m]`.
    /// The last entry equals the window detection probability.
    pub by_period: Vec<f64>,
    /// Normalized pmf of the detection period (index `m − 1`); sums to
    /// the window detection probability.
    pub period_pmf: Vec<f64>,
}

impl TimeToDetection {
    /// The window detection probability `P_M[X >= k]`.
    pub fn detection_probability(&self) -> f64 {
        *self.by_period.last().expect("at least one period")
    }

    /// Mean detection period conditioned on detection happening within the
    /// window; `None` when detection is impossible.
    pub fn mean_period_given_detected(&self) -> Option<f64> {
        let total: f64 = self.period_pmf.iter().sum();
        if total <= 0.0 {
            return None;
        }
        Some(
            self.period_pmf
                .iter()
                .enumerate()
                .map(|(idx, &p)| (idx + 1) as f64 * p)
                .sum::<f64>()
                / total,
        )
    }

    /// Smallest period by which the detection probability reaches `target`
    /// (e.g. the 90th percentile of detection time); `None` if never.
    pub fn period_quantile(&self, target: f64) -> Option<usize> {
        self.by_period
            .iter()
            .position(|&p| p >= target)
            .map(|idx| idx + 1)
    }
}

/// Computes the first-passage curve with the M-S-approach machinery: the
/// counting chain saturates at `k` (state `k` = "detected", absorbing),
/// and the tail at `k` is recorded after every period.
///
/// # Example
///
/// ```
/// use gbd_core::ms_approach::MsOptions;
/// use gbd_core::params::SystemParams;
/// use gbd_core::time_to_detection::analyze;
///
/// # fn main() -> Result<(), gbd_core::CoreError> {
/// let curve = analyze(&SystemParams::paper_defaults(), &MsOptions::default())?;
/// // The curve is a CDF over periods, ending at the window probability.
/// assert_eq!(curve.by_period.len(), 20);
/// assert!(curve.detection_probability() > 0.9);
/// # Ok(())
/// # }
/// ```
///
/// Normalization mirrors Eq (13): each period's probability is divided by
/// the mass retained *up to that period* so the curve is comparable to
/// simulation.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] on zero caps (see
/// [`crate::ms_approach::analyze`]).
pub fn analyze(params: &SystemParams, opts: &MsOptions) -> Result<TimeToDetection, CoreError> {
    if opts.g == 0 || opts.gh == 0 {
        return Err(CoreError::InvalidParameter {
            name: "g/gh",
            constraint: "truncation caps must be at least 1",
        });
    }
    let m = params.m_periods();
    let k = params.k();
    let table = SubareaTable::constant_speed(params.sensing_range(), params.step(), m);
    let mut chain = CountingChain::new(k);
    let mut by_period = Vec::with_capacity(m);
    for l in 1..=m {
        let mut areas = table.subareas(l);
        while areas.len() > 1 && *areas.last().unwrap() == 0.0 {
            areas.pop();
        }
        let cap = if l == 1 { opts.gh } else { opts.g }.min(params.n_sensors());
        let dist = stage_distribution(
            &areas,
            params.field_area(),
            params.n_sensors(),
            params.pd(),
            cap,
        );
        chain.step(&dist);
        let d = chain.distribution();
        by_period.push(d.tail_sum(k) / d.total_mass());
    }
    let mut period_pmf = Vec::with_capacity(m);
    let mut prev = 0.0;
    for &p in &by_period {
        period_pmf.push((p - prev).max(0.0));
        prev = p;
    }
    Ok(TimeToDetection {
        by_period,
        period_pmf,
    })
}

/// Computes the **exact** first-passage curve via the Temporal approach.
///
/// `max_states` bounds the T-approach's state set (see
/// [`crate::t_approach::analyze`]); the paper's parameters at `g = gh = 3`
/// typically need a budget in the hundreds of thousands.
///
/// # Errors
///
/// Propagates cap/state-budget errors from
/// [`crate::t_approach::analyze`].
pub fn analyze_exact(
    params: &SystemParams,
    opts: &MsOptions,
    max_states: usize,
) -> Result<TimeToDetection, CoreError> {
    let t = crate::t_approach::analyze(params, opts, max_states)?;
    let by_period = t.by_period;
    let mut period_pmf = Vec::with_capacity(by_period.len());
    let mut prev = 0.0;
    for &p in &by_period {
        period_pmf.push((p - prev).max(0.0));
        prev = p;
    }
    Ok(TimeToDetection {
        by_period,
        period_pmf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms_approach;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn curve_is_monotone_and_ends_at_window_probability() {
        let params = paper();
        let t = analyze(&params, &MsOptions::default()).unwrap();
        assert_eq!(t.by_period.len(), 20);
        let mut prev = 0.0;
        for &p in &t.by_period {
            assert!(p >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        let window = ms_approach::analyze(&params, &MsOptions::default())
            .unwrap()
            .detection_probability(5);
        // Same machinery, same caps: the endpoints agree tightly.
        assert!(
            (t.detection_probability() - window).abs() < 5e-3,
            "{} vs {window}",
            t.detection_probability()
        );
    }

    #[test]
    fn early_periods_rarely_detect() {
        // Arrival attribution credits a covering sensor's whole report
        // budget to period 1, so the fast curve starts visibly above zero;
        // the exact (temporal) curve cannot reach k = 5 in one period when
        // at most gh = 2 sensors are active.
        let t = analyze(&paper(), &MsOptions::default()).unwrap();
        assert!(t.by_period[0] < 0.25, "{}", t.by_period[0]);
        assert!(t.by_period[10] > 0.3);
        let params = paper().with_m_periods(8).with_n_sensors(120);
        let exact = analyze_exact(
            &params,
            &MsOptions {
                g: 2,
                gh: 2,
                eps: 0.0,
            },
            5_000_000,
        )
        .unwrap();
        assert_eq!(exact.by_period[0], 0.0);
        assert!(exact.by_period[1] < 0.01);
    }

    #[test]
    fn exact_curve_lags_arrival_attributed_curve() {
        // Arrival attribution credits a sensor's future reports to its
        // arrival period, so the fast curve stochastically dominates the
        // exact (T-approach) curve, and both share the window endpoint.
        let params = paper().with_m_periods(8).with_n_sensors(120);
        let opts = MsOptions {
            g: 2,
            gh: 2,
            eps: 0.0,
        };
        let fast = analyze(&params, &opts).unwrap();
        let exact = analyze_exact(&params, &opts, 5_000_000).unwrap();
        for (m, (f, e)) in fast.by_period.iter().zip(&exact.by_period).enumerate() {
            assert!(f + 1e-9 >= *e, "period {}: fast {f} < exact {e}", m + 1);
        }
        assert!((fast.detection_probability() - exact.detection_probability()).abs() < 1e-9);
        // And the lag is real: somewhere in the middle the curves differ.
        let max_gap = fast
            .by_period
            .iter()
            .zip(&exact.by_period)
            .map(|(f, e)| f - e)
            .fold(0.0f64, f64::max);
        assert!(max_gap > 0.01, "max gap {max_gap}");
    }

    #[test]
    fn mean_and_quantile_are_consistent() {
        let t = analyze(&paper(), &MsOptions::default()).unwrap();
        let mean = t.mean_period_given_detected().unwrap();
        assert!(mean > 5.0 && mean < 20.0, "mean {mean}");
        let q50 = t.period_quantile(t.detection_probability() * 0.5).unwrap();
        assert!(q50 as f64 <= mean + 4.0);
        assert!(t.period_quantile(1.1).is_none());
    }

    #[test]
    fn faster_target_more_likely_detected_by_mid_window() {
        // Unconditionally, a faster target accumulates covered area sooner:
        // P[detected by period 10] is higher at V = 10 than at V = 4.
        let slow = analyze(&paper().with_speed(4.0), &MsOptions::default()).unwrap();
        let fast = analyze(&paper().with_speed(10.0), &MsOptions::default()).unwrap();
        assert!(fast.by_period[9] > slow.by_period[9]);
    }

    #[test]
    fn impossible_detection_yields_none() {
        // pd = 0: no reports ever.
        let params = paper().with_pd(0.0);
        let t = analyze(&params, &MsOptions::default()).unwrap();
        assert_eq!(t.detection_probability(), 0.0);
        assert!(t.mean_period_given_detected().is_none());
    }

    #[test]
    fn estimator_edge_cases() {
        // Empty pmf (zero mass everywhere): no mean, and only target 0.0
        // has a quantile (period 1, trivially reached).
        let empty = TimeToDetection {
            by_period: vec![0.0; 4],
            period_pmf: vec![0.0; 4],
        };
        assert!(empty.mean_period_given_detected().is_none());
        assert_eq!(empty.period_quantile(0.0), Some(1));
        assert!(empty.period_quantile(0.5).is_none());
        assert!(empty.period_quantile(1.0).is_none());

        // All mass in one period: the conditional mean is that period
        // exactly, and every positive target at or below the endpoint
        // resolves to it.
        let spike = TimeToDetection {
            by_period: vec![0.0, 0.0, 0.4, 0.4],
            period_pmf: vec![0.0, 0.0, 0.4, 0.0],
        };
        let spike_mean = spike.mean_period_given_detected().unwrap();
        assert!((spike_mean - 3.0).abs() < 1e-12, "mean {spike_mean}");
        assert_eq!(spike.period_quantile(0.4), Some(3));
        assert_eq!(spike.period_quantile(1e-9), Some(3));
        assert!(spike.period_quantile(0.400001).is_none());

        // Certain detection: target 1.0 is the period where the curve
        // saturates; target 0.0 is always period 1.
        let certain = TimeToDetection {
            by_period: vec![0.25, 1.0, 1.0],
            period_pmf: vec![0.25, 0.75, 0.0],
        };
        assert_eq!(certain.period_quantile(1.0), Some(2));
        assert_eq!(certain.period_quantile(0.0), Some(1));
        let mean = certain.mean_period_given_detected().unwrap();
        assert!((mean - 1.75).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn pmf_sums_to_curve_endpoint() {
        let t = analyze(&paper(), &MsOptions::default()).unwrap();
        let total: f64 = t.period_pmf.iter().sum();
        assert!((total - t.detection_probability()).abs() < 1e-9);
    }
}
