#![warn(missing_docs)]
//! Analytical models of **group based detection in sparse sensor networks**
//! — the primary contribution of Zhang, Zhou, Son, Stankovic & Whitehouse,
//! *Performance Analysis of Group Based Detection for Sparse Sensor
//! Networks*, ICDCS 2008.
//!
//! A sparse sensor network declares a target detected when at least `k`
//! node-level detection reports arrive within `M` sensing periods that are
//! consistent with a target track. This crate computes the probability of
//! that event for a target crossing the field, without simulation:
//!
//! * [`single_period`] — the `M = 1` preliminary case (Eqs (1)–(2));
//! * [`ms_approach`] — the paper's headline **Markov chain based Spatial
//!   approach**: per-period NEDR report distributions assembled by a
//!   counting Markov chain (Head/Body/Tail stages, Eqs (6)–(13));
//! * [`s_approach`] — the Spatial approach over the whole Aggregate Region,
//!   including the paper-faithful exponential placement enumeration
//!   (Algorithm 1) used by the runtime comparison experiments;
//! * [`exact`] — an exact reference model (no sensor-count truncation),
//!   the `G → N` limit of the S-approach, used to quantify truncation
//!   error;
//! * [`accuracy`] — the truncation-accuracy equations (Eqs (5), (7), (9),
//!   (14)) and the required-`g`/`gh`/`G` solvers behind Figure 8;
//! * [`extension_h`] — the §4 extension: "at least `k` reports from at
//!   least `h` distinct nodes";
//! * [`varying_speed`] — the §6 future-work extension: per-period varying
//!   target speed;
//! * [`t_approach`] — the §3.2 Temporal approach the paper rejects,
//!   implemented exactly so the state explosion can be measured (its
//!   result provably equals the M-S-approach's);
//! * [`poisson_model`] — the Poisson-field variant of the analysis, under
//!   which the chain's independence assumption is exact;
//! * [`time_to_detection`] — first-passage analysis: `P[detected by
//!   period m]` and the conditional mean detection time;
//! * [`false_alarm`] — the §6 future-work "exact lower bound of `k`"
//!   under an independent node-level false-alarm model;
//! * [`design`] — the model inverted into design questions: sensors /
//!   sensing range needed for a target probability, patrol area a fleet
//!   can sustain.
//!
//! # Quickstart
//!
//! ```
//! use gbd_core::params::SystemParams;
//! use gbd_core::ms_approach::{self, MsOptions};
//!
//! # fn main() -> Result<(), gbd_core::CoreError> {
//! // The paper's evaluation settings at N = 240, V = 10 m/s.
//! let params = SystemParams::paper_defaults().with_n_sensors(240).with_speed(10.0);
//! let result = ms_approach::analyze(&params, &MsOptions::default())?;
//! let p = result.detection_probability(params.k());
//! assert!(p > 0.9 && p <= 1.0); // Figure 9(a): ~0.97 at this point
//! # Ok(())
//! # }
//! ```

pub mod accuracy;
pub mod baseline;
pub mod budget;
pub mod design;
pub mod exact;
pub mod extension_h;
pub mod false_alarm;
pub mod model;
pub mod ms_approach;
pub mod params;
pub mod poisson_model;
pub mod report_dist;
pub mod s_approach;
pub mod single_period;
pub mod t_approach;
pub mod time_to_detection;
pub mod varying_speed;

mod error;

pub use budget::ComputeBudget;
pub use error::CoreError;
pub use model::{DetectionModel, ReportDistribution};
pub use ms_approach::AnalysisResult;
pub use params::SystemParams;

/// The names almost every consumer of this crate needs:
/// `use gbd_core::prelude::*;`.
pub mod prelude {
    pub use crate::error::CoreError;
    pub use crate::model::{DetectionModel, ReportDistribution};
    pub use crate::ms_approach::MsOptions;
    pub use crate::params::SystemParams;
}
