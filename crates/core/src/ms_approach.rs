//! The Markov chain based Spatial approach (M-S-approach) — paper §3.4.
//!
//! The Aggregate Region is sliced into per-period NEDRs. For each period a
//! truncated report-count distribution is computed from the period's
//! coverage subareas (`gh` sensors considered in the Head stage, `g` in
//! every Body/Tail stage), and the distributions are assembled with the
//! counting Markov chain of Figures 5–7 / Eq (12). The final distribution
//! is sub-stochastic; Eq (13) normalizes it, and Eq (14) lower-bounds the
//! resulting accuracy.
//!
//! This implementation generalizes the paper's three-stage presentation to
//! arbitrary per-period step lengths (so `M <= ms` and varying speeds are
//! handled uniformly); for constant speed it reproduces the Head/Body/Tail
//! decomposition exactly, which the tests assert against the closed forms
//! of Eqs (6), (8) and (10).

use crate::budget::ComputeBudget;
use crate::params::SystemParams;
use crate::report_dist::{stage_accuracy_with, stage_distribution_with};
use crate::CoreError;
use gbd_geometry::subarea::SubareaTable;
use gbd_markov::counting::CountingChain;
use gbd_markov::scratch::Scratch;
use gbd_stats::binomial::PmfTable;
use gbd_stats::discrete::DiscreteDist;
use std::cell::RefCell;

/// Truncation options of the M-S-approach.
///
/// `gh` caps the number of sensors considered in the Head NEDR, `g` in
/// every Body and Tail NEDR. The paper's evaluation uses `g = gh = 3`
/// ("All our analysis results, when gh and g are 3, are obtained within
/// one minute").
///
/// `eps` optionally trims per-stage report distributions: after each stage
/// distribution is computed, the longest trailing support run carrying at
/// most `eps` total mass is discarded. The mass actually dropped is
/// accumulated over every stage application and surfaced as
/// [`AnalysisResult::truncation_error`], which bounds the pointwise error
/// of the raw assembled distribution. The default `eps = 0` trims nothing
/// and is bit-identical to the exact assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MsOptions {
    /// Sensor cap per Body/Tail stage (`g`).
    pub g: usize,
    /// Sensor cap in the Head stage (`gh`).
    pub gh: usize,
    /// Per-stage tail-mass truncation budget; `0.0` (the default) disables
    /// trimming. Must lie in `[0, 1)`.
    #[cfg_attr(feature = "serde", serde(default))]
    pub eps: f64,
}

/// `MsOptions` admits `Eq`: `eps` is validated to be finite (never NaN)
/// before any analysis runs, and option values are compared for caching,
/// where bitwise-equal-or-not is exactly the question.
impl Eq for MsOptions {}

impl MsOptions {
    /// Checks the field constraints every analysis entry point enforces:
    /// caps at least 1, `eps` finite and in `[0, 1)`.
    ///
    /// Callers that cache on option values (the engine's geometry layer)
    /// must validate *before* the cache lookup — a warm entry would
    /// otherwise mask the error a cold run reports.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.g == 0 || self.gh == 0 {
            return Err(CoreError::InvalidParameter {
                name: "g/gh",
                constraint: "truncation caps must be at least 1",
            });
        }
        if !self.eps.is_finite() || !(0.0..1.0).contains(&self.eps) {
            return Err(CoreError::InvalidParameter {
                name: "eps",
                constraint: "tail-mass truncation budget must lie in [0, 1)",
            });
        }
        Ok(())
    }
}

impl Default for MsOptions {
    /// The paper's evaluation setting: `g = gh = 3`, no tail trimming.
    fn default() -> Self {
        MsOptions {
            g: 3,
            gh: 3,
            eps: 0.0,
        }
    }
}

/// The outcome of an analytical run: the (sub-stochastic) distribution of
/// total report counts over `M` periods, plus its predicted accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    raw: DiscreteDist,
    predicted_accuracy: f64,
    truncation_error: f64,
}

impl AnalysisResult {
    pub(crate) fn new(raw: DiscreteDist, predicted_accuracy: f64) -> Self {
        AnalysisResult {
            raw,
            predicted_accuracy,
            truncation_error: 0.0,
        }
    }

    pub(crate) fn with_truncation(
        raw: DiscreteDist,
        predicted_accuracy: f64,
        truncation_error: f64,
    ) -> Self {
        AnalysisResult {
            raw,
            predicted_accuracy,
            truncation_error,
        }
    }

    /// Rebuilds a result from previously computed parts, for exact
    /// round-tripping through a persistence layer. The parts are trusted
    /// as-is (the raw distribution is already validated by construction);
    /// callers must only feed back values obtained from a real analysis.
    pub fn from_parts(
        raw: DiscreteDist,
        predicted_accuracy: f64,
        truncation_error: f64,
    ) -> Self {
        AnalysisResult {
            raw,
            predicted_accuracy,
            truncation_error,
        }
    }

    /// Accumulated `eps` tail-trimming error: the total probability mass
    /// dropped by [`MsOptions::eps`] truncation over every stage
    /// application of this run. Zero when `eps = 0` (the default). The raw
    /// distribution differs from the exact (untrimmed) assembly by at most
    /// this amount in total mass, and pointwise.
    pub fn truncation_error(&self) -> f64 {
        self.truncation_error
    }

    /// `P_M[X >= k]` with the Eq (13) normalization applied — the
    /// detection probability the paper reports in Figure 9(a).
    pub fn detection_probability(&self, k: usize) -> f64 {
        (self.raw.tail_sum(k) / self.raw.total_mass()).clamp(0.0, 1.0)
    }

    /// `P_M[X >= k]` **without** normalization — the raw truncated tail
    /// shown in Figure 9(b), which undershoots as truncation discards mass.
    pub fn detection_probability_unnormalized(&self, k: usize) -> f64 {
        self.raw.tail_sum(k)
    }

    /// The raw (sub-stochastic) report-count distribution.
    pub fn raw_distribution(&self) -> &DiscreteDist {
        &self.raw
    }

    /// The normalized report-count distribution (Eq (13)).
    pub fn normalized_distribution(&self) -> DiscreteDist {
        self.raw.normalized()
    }

    /// Total retained probability mass (`sum` in the paper's Eq (13)).
    pub fn retained_mass(&self) -> f64 {
        self.raw.total_mass()
    }

    /// The a-priori accuracy bound of Eq (14), `η = ξ_h · ξ^{M−1}`
    /// (generalized to the product of per-stage accuracies).
    ///
    /// The retained mass is exactly this product; the normalized result is
    /// typically *more* accurate than the bound suggests (§4 discusses
    /// why).
    pub fn predicted_accuracy(&self) -> f64 {
        self.predicted_accuracy
    }
}

/// Runs the M-S-approach for a constant-speed straight-line target.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if a truncation cap is zero
/// (a stage that can never see a sensor would make the analysis vacuous).
///
/// # Example
///
/// ```
/// use gbd_core::params::SystemParams;
/// use gbd_core::ms_approach::{analyze, MsOptions};
///
/// # fn main() -> Result<(), gbd_core::CoreError> {
/// let params = SystemParams::paper_defaults();
/// let result = analyze(&params, &MsOptions::default())?;
/// assert!(result.detection_probability(5) > 0.9);
/// # Ok(())
/// # }
/// ```
pub fn analyze(params: &SystemParams, opts: &MsOptions) -> Result<AnalysisResult, CoreError> {
    let steps = vec![params.step(); params.m_periods()];
    analyze_steps(params, &steps, opts)
}

/// Runs the (generalized) M-S-approach for a straight-line target with
/// explicit per-period step lengths — the §6 varying-speed extension.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `steps` is empty, its length
/// differs from `params.m_periods()`, any step is negative, or a cap is 0.
///
/// # Example
///
/// ```
/// use gbd_core::ms_approach::{analyze_steps, MsOptions};
/// use gbd_core::params::SystemParams;
///
/// # fn main() -> Result<(), gbd_core::CoreError> {
/// // A target that stops halfway through the window.
/// let params = SystemParams::paper_defaults();
/// let mut steps = vec![600.0; 20];
/// for s in steps.iter_mut().skip(10) {
///     *s = 0.0;
/// }
/// let paused = analyze_steps(&params, &steps, &MsOptions::default())?;
/// assert!(paused.detection_probability(5) < 0.978); // below the moving case
/// # Ok(())
/// # }
/// ```
pub fn analyze_steps(
    params: &SystemParams,
    steps: &[f64],
    opts: &MsOptions,
) -> Result<AnalysisResult, CoreError> {
    analyze_steps_budgeted(params, steps, opts, &ComputeBudget::unlimited())
}

/// [`analyze_steps`] under a cooperative [`ComputeBudget`]: the per-stage
/// assembly loop checkpoints between stages, so a run whose deadline passes
/// returns [`CoreError::DeadlineExceeded`] (with its stage progress)
/// instead of finishing arbitrarily late. A run that completes is
/// bit-identical to the unbudgeted one.
///
/// # Errors
///
/// Everything [`analyze_steps`] rejects, plus
/// [`CoreError::DeadlineExceeded`] when the budget's deadline trips.
pub fn analyze_steps_budgeted(
    params: &SystemParams,
    steps: &[f64],
    opts: &MsOptions,
    budget: &ComputeBudget,
) -> Result<AnalysisResult, CoreError> {
    MS_SCRATCH
        .with(|s| analyze_steps_budgeted_with(params, steps, opts, budget, &mut s.borrow_mut()))
}

thread_local! {
    /// Per-thread arena backing [`analyze_steps_budgeted`], so every
    /// caller of the plain API gets the allocation-free assembly without
    /// threading a scratch handle.
    static MS_SCRATCH: RefCell<MsScratch> = RefCell::new(MsScratch::new());
}

/// Reusable buffers for one thread's M-S assemblies.
///
/// Owns the counting-chain convolution arena, the per-stage convolution
/// ladder buffers, and the placement pmf table. After the first run of a
/// given geometry every assembly in
/// [`analyze_steps_budgeted_with`] reuses these buffers; the only
/// remaining allocations are the returned stage distributions and result.
#[derive(Debug)]
pub struct MsScratch {
    chain: Scratch,
    qn: DiscreteDist,
    conv: Vec<f64>,
    placement: PmfTable,
}

impl Default for MsScratch {
    fn default() -> Self {
        MsScratch::new()
    }
}

impl MsScratch {
    /// An empty arena; buffers warm up on first use.
    pub fn new() -> Self {
        MsScratch {
            chain: Scratch::new(),
            qn: DiscreteDist::point_mass(0),
            conv: Vec::new(),
            placement: PmfTable::new(),
        }
    }
}

/// [`analyze_steps_budgeted`] through an explicit [`MsScratch`] arena.
///
/// Bit-identical to the seed's allocating implementation for `eps = 0`
/// (the in-place kernels preserve every accumulation order), with two
/// structural speedups on top:
///
/// * **stage dedup** — stages with equal [`StageInput`]s (every Body stage
///   of a constant-speed run) are computed once and reused; recomputation
///   would be bitwise identical, so sharing is observationally free;
/// * **table-backed accuracy** — the placement pmf underlying `ξ` is
///   evaluated through a reusable [`PmfTable`].
///
/// # Errors
///
/// Same contract as [`analyze_steps_budgeted`].
pub fn analyze_steps_budgeted_with(
    params: &SystemParams,
    steps: &[f64],
    opts: &MsOptions,
    budget: &ComputeBudget,
    scratch: &mut MsScratch,
) -> Result<AnalysisResult, CoreError> {
    let inputs = stage_inputs(params.sensing_range(), steps, params.n_sensors(), opts)?;
    if inputs.len() != params.m_periods() {
        return Err(CoreError::InvalidParameter {
            name: "steps",
            constraint: "length must equal m_periods",
        });
    }
    let field_area = params.field_area();
    let n = params.n_sensors();
    let pd = params.pd();
    let support_cap: usize = inputs.iter().map(StageInput::support_bound).sum();
    // Distinct stages, plus per-input index into them. A linear scan is
    // right-sized: M is tens, and StageInput comparison is a short memcmp.
    let mut unique: Vec<(DiscreteDist, f64, f64)> = Vec::with_capacity(inputs.len());
    let mut unique_inputs: Vec<&StageInput> = Vec::with_capacity(inputs.len());
    let mut stage_of: Vec<usize> = Vec::with_capacity(inputs.len());
    for stage in &inputs {
        budget.checkpoint()?;
        let idx = match unique_inputs.iter().position(|u| *u == stage) {
            Some(idx) => idx,
            None => {
                let (dist, dropped) = stage_distribution_with(
                    &stage.areas,
                    field_area,
                    n,
                    pd,
                    stage.cap,
                    opts.eps,
                    &mut scratch.qn,
                    &mut scratch.conv,
                );
                let accuracy = stage_accuracy_with(
                    stage.areas.iter().sum(),
                    field_area,
                    n,
                    stage.cap,
                    &mut scratch.placement,
                );
                unique.push((dist, accuracy, dropped));
                unique_inputs.push(stage);
                unique.len() - 1
            }
        };
        stage_of.push(idx);
        budget.complete_stage();
    }
    let mut chain = CountingChain::new(support_cap.max(1));
    let mut predicted_accuracy = 1.0;
    let mut truncation_error = 0.0;
    for &idx in &stage_of {
        let (dist, accuracy, dropped) = &unique[idx];
        predicted_accuracy *= accuracy;
        truncation_error += dropped;
        chain.step_with(dist, &mut scratch.chain);
    }
    Ok(AnalysisResult::with_truncation(
        chain.into_distribution(),
        predicted_accuracy,
        truncation_error,
    ))
}

/// One memoizable stage of the M-S chain: an NEDR reduced to exactly the
/// inputs its report distribution depends on.
///
/// Stages with equal `areas`/`cap` have equal report distributions for the
/// same `(S, N, Pd)` — the identity `gbd-engine` exploits to share every
/// Body stage of a run, and whole stages across sweep points that only
/// differ in `N` or `Pd`.
#[derive(Debug, Clone, PartialEq)]
pub struct StageInput {
    /// Coverage subarea sizes of the stage's NEDR, trailing zero-area
    /// entries trimmed (`areas[i]` is covered by the DRs of `i + 1`
    /// periods).
    pub areas: Vec<f64>,
    /// Sensor cap for the stage: `gh` for the Head, `g` for Body/Tail
    /// stages, never above `N`.
    pub cap: usize,
}

impl StageInput {
    /// Upper bound on the stage's report count, `cap · coverage levels`.
    pub fn support_bound(&self) -> usize {
        self.cap * self.areas.len()
    }
}

/// Computes the per-stage inputs of a (generalized) M-S run: the NEDR
/// subarea decomposition for each period plus the period's sensor cap.
///
/// This is the geometric half of [`analyze_steps`], split out so callers
/// can memoize it on `(sensing_range, steps, n_sensors, opts)` — it is
/// independent of `Pd` and the field size.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `steps` is empty, any step
/// is negative or non-finite, or a cap is 0.
pub fn stage_inputs(
    sensing_range: f64,
    steps: &[f64],
    n_sensors: usize,
    opts: &MsOptions,
) -> Result<Vec<StageInput>, CoreError> {
    opts.validate()?;
    if steps.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "steps",
            constraint: "must contain at least one period",
        });
    }
    if steps.iter().any(|s| !s.is_finite() || *s < 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "steps",
            constraint: "must be finite and non-negative",
        });
    }
    let table = SubareaTable::from_steps(sensing_range, steps);
    let m = table.m_periods();
    let mut inputs = Vec::with_capacity(m);
    for l in 1..=m {
        let mut areas = table.subareas(l);
        while areas.len() > 1 && *areas.last().unwrap() == 0.0 {
            areas.pop();
        }
        let cap = if l == 1 { opts.gh } else { opts.g }.min(n_sensors);
        inputs.push(StageInput { areas, cap });
    }
    Ok(inputs)
}

/// Assembles precomputed per-stage `(report distribution, accuracy)` pairs
/// into the final result — the cheap last step of [`analyze_steps`], split
/// out so callers that cache stage distributions (`gbd-engine`) can share
/// them across runs. `support_cap` is the report-count bound of the
/// counting chain; pass the sum of [`StageInput::support_bound`] to match
/// [`analyze_steps`] exactly.
pub fn assemble_stages(stages: &[(DiscreteDist, f64)], support_cap: usize) -> AnalysisResult {
    let mut chain = CountingChain::new(support_cap.max(1));
    let mut predicted_accuracy = 1.0;
    for (dist, accuracy) in stages {
        predicted_accuracy *= accuracy;
        chain.step(dist);
    }
    AnalysisResult::new(chain.into_distribution(), predicted_accuracy)
}

/// [`assemble_stages`] for stages carrying an `eps`-truncation record:
/// each element is `(distribution, accuracy, dropped_mass)` and the
/// dropped masses accumulate into [`AnalysisResult::truncation_error`].
/// The chain runs through a [`Scratch`] arena, so assembly itself does not
/// allocate beyond the returned distribution.
pub fn assemble_stages_truncated(
    stages: &[(DiscreteDist, f64, f64)],
    support_cap: usize,
    scratch: &mut Scratch,
) -> AnalysisResult {
    let mut chain = CountingChain::new(support_cap.max(1));
    let mut predicted_accuracy = 1.0;
    let mut truncation_error = 0.0;
    for (dist, accuracy, dropped) in stages {
        predicted_accuracy *= accuracy;
        truncation_error += dropped;
        chain.step_with(dist, scratch);
    }
    AnalysisResult::with_truncation(
        chain.into_distribution(),
        predicted_accuracy,
        truncation_error,
    )
}

/// The stage structure of a constant-speed run, exposed for the
/// documentation examples and the stage-level tests: the Head stage plus
/// `M − ms − 1` identical Body stages plus `ms` distinct Tail stages when
/// `M > ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Subarea sizes of the Head NEDR (Eq (6)).
    pub head: Vec<f64>,
    /// Subarea sizes of a Body NEDR (Eq (8)); empty when `M <= ms + 1`.
    pub body: Vec<f64>,
    /// Subarea sizes of each Tail NEDR, `T_1 ..= T_ms` (Eq (10)).
    pub tails: Vec<Vec<f64>>,
}

/// Computes the constant-speed stage plan from the closed-form equations.
pub fn stage_plan(params: &SystemParams) -> StagePlan {
    use gbd_geometry::subarea::{area_b_eq8, area_h_eq6, area_t_eq10};
    let head = area_h_eq6(params.sensing_range(), params.step());
    let body = area_b_eq8(&head);
    let ms = params.ms();
    let tails: Vec<Vec<f64>> = (1..=ms.min(params.m_periods().saturating_sub(1)))
        .map(|j| area_t_eq10(&body, j))
        .collect();
    StagePlan { head, body, tails }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report_dist::stage_accuracy;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn paper_point_is_in_figure_9a_range() {
        // Figure 9(a): N = 240, V = 10 m/s ⇒ detection probability ≈ 0.97.
        let r = analyze(&paper(), &MsOptions::default()).unwrap();
        let p = r.detection_probability(5);
        assert!(p > 0.90 && p < 1.0, "p={p}");
    }

    #[test]
    fn detection_monotone_in_n() {
        let mut prev = 0.0;
        for n in [60, 90, 120, 150, 180, 210, 240] {
            let r = analyze(&paper().with_n_sensors(n), &MsOptions::default()).unwrap();
            let p = r.detection_probability(5);
            assert!(p > prev, "n={n}: {p} <= {prev}");
            prev = p;
        }
    }

    #[test]
    fn faster_target_detected_more_often() {
        // §4: "when the moving target's velocity is 10 m/s the detection
        // probability is higher than that when the moving velocity is 4 m/s".
        let slow = analyze(&paper().with_speed(4.0), &MsOptions::default()).unwrap();
        let fast = analyze(&paper().with_speed(10.0), &MsOptions::default()).unwrap();
        assert!(fast.detection_probability(5) > slow.detection_probability(5));
    }

    #[test]
    fn detection_decreasing_in_k() {
        let r = analyze(&paper(), &MsOptions::default()).unwrap();
        let mut prev = 1.1;
        for k in 1..=12 {
            let p = r.detection_probability(k);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn unnormalized_below_normalized() {
        let r = analyze(&paper(), &MsOptions::default()).unwrap();
        assert!(r.detection_probability_unnormalized(5) < r.detection_probability(5));
        assert!(r.retained_mass() < 1.0);
    }

    #[test]
    fn retained_mass_equals_eq14_product() {
        // The chain's leftover mass is exactly ξ_h · ξ^{M−1}.
        let p = paper();
        let opts = MsOptions::default();
        let r = analyze(&p, &opts).unwrap();
        let s = p.field_area();
        let n = p.n_sensors();
        let head_area = p.dr_area();
        let body_area = 2.0 * p.sensing_range() * p.step();
        let xi_h = stage_accuracy(head_area, s, n, opts.gh);
        let xi = stage_accuracy(body_area, s, n, opts.g);
        let eq14 = xi_h * xi.powi(p.m_periods() as i32 - 1);
        assert!((r.retained_mass() - eq14).abs() < 1e-9);
        assert!((r.predicted_accuracy() - eq14).abs() < 1e-12);
    }

    #[test]
    fn paper_accuracy_example_n240_v10() {
        // §4 quotes 95.6% accuracy at N = 240, V = 10 m/s with g = gh = 3.
        // Evaluating Eq (14) exactly as printed (Eqs (7) and (9) with the
        // head/body NEDR areas) gives 97.6%; the small gap with the quoted
        // figure is recorded in EXPERIMENTS.md. Both values say the same
        // thing: a few percent of mass is truncated, hence Figure 9(b)'s
        // visible undershoot and Figure 9(a)'s need for normalization.
        let r = analyze(
            &paper(),
            &MsOptions {
                g: 3,
                gh: 3,
                eps: 0.0,
            },
        )
        .unwrap();
        let acc = r.predicted_accuracy();
        assert!((0.94..=0.99).contains(&acc), "{acc}");
    }

    #[test]
    fn larger_caps_converge() {
        // Increasing g/gh must converge to a limit (the exact result).
        let p = paper();
        let small = analyze(
            &p,
            &MsOptions {
                g: 2,
                gh: 2,
                eps: 0.0,
            },
        )
        .unwrap();
        let mid = analyze(
            &p,
            &MsOptions {
                g: 4,
                gh: 4,
                eps: 0.0,
            },
        )
        .unwrap();
        let large = analyze(
            &p,
            &MsOptions {
                g: 7,
                gh: 7,
                eps: 0.0,
            },
        )
        .unwrap();
        let d_small_mid =
            (small.detection_probability(5) - large.detection_probability(5)).abs();
        let d_mid_large = (mid.detection_probability(5) - large.detection_probability(5)).abs();
        assert!(d_mid_large < d_small_mid);
        assert!(d_mid_large < 1e-3);
    }

    #[test]
    fn generalized_staging_matches_closed_forms() {
        // The per-period subareas used internally must equal Eq (6)/(8)/(10).
        let p = paper();
        let plan = stage_plan(&p);
        let table = SubareaTable::constant_speed(p.sensing_range(), p.step(), p.m_periods());
        let head = table.subareas(1);
        for (i, &e) in plan.head.iter().enumerate() {
            assert!((head[i] - e).abs() < 1e-6);
        }
        let body = table.subareas(3);
        for (i, &e) in plan.body.iter().enumerate() {
            assert!((body[i] - e).abs() < 1e-6);
        }
        for (j, tail) in plan.tails.iter().enumerate() {
            let l = p.m_periods() - p.ms() + (j + 1);
            let sub = table.subareas(l);
            for (i, &e) in tail.iter().enumerate() {
                assert!((sub[i] - e).abs() < 1e-6, "tail {j} i={i}");
            }
        }
    }

    #[test]
    fn constant_steps_equal_explicit_steps() {
        let p = paper();
        let a = analyze(&p, &MsOptions::default()).unwrap();
        let b =
            analyze_steps(&p, &vec![p.step(); p.m_periods()], &MsOptions::default()).unwrap();
        assert!(a.raw_distribution().max_abs_diff(b.raw_distribution()) < 1e-15);
    }

    #[test]
    fn short_window_m_less_than_ms_works() {
        // M = 3 < ms = 4: the generalized staging handles it.
        let p = paper().with_m_periods(3).with_k(2);
        let r = analyze(&p, &MsOptions::default()).unwrap();
        let pd = r.detection_probability(2);
        assert!(pd > 0.0 && pd < 1.0);
    }

    #[test]
    fn m_equals_one_matches_single_period_model() {
        // With M = 1 the M-S-approach must reproduce Eqs (1)–(2) (up to the
        // cap truncation; use a generous cap so truncation is negligible).
        let p = paper().with_m_periods(1).with_k(1);
        let r = analyze(
            &p,
            &MsOptions {
                g: 12,
                gh: 12,
                eps: 0.0,
            },
        )
        .unwrap();
        let analytical = crate::single_period::probability_at_least(&p, 1);
        assert!(
            (r.detection_probability(1) - analytical).abs() < 1e-6,
            "{} vs {analytical}",
            r.detection_probability(1)
        );
    }

    #[test]
    fn budgeted_run_matches_unbudgeted_and_cancels() {
        use std::time::Duration;
        let p = paper();
        let steps = vec![p.step(); p.m_periods()];
        let opts = MsOptions::default();
        let free = analyze_steps(&p, &steps, &opts).unwrap();
        let roomy = ComputeBudget::with_deadline(Duration::from_secs(3600));
        let budgeted = analyze_steps_budgeted(&p, &steps, &opts, &roomy).unwrap();
        assert_eq!(free, budgeted);
        assert_eq!(roomy.completed_stages(), p.m_periods());
        let expired = analyze_steps_budgeted(
            &p,
            &steps,
            &opts,
            &ComputeBudget::with_deadline(Duration::ZERO),
        );
        assert!(matches!(
            expired,
            Err(CoreError::DeadlineExceeded {
                completed_stages: 0,
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_options_and_steps() {
        let p = paper();
        assert!(analyze(
            &p,
            &MsOptions {
                g: 0,
                gh: 3,
                eps: 0.0
            }
        )
        .is_err());
        assert!(analyze_steps(&p, &[600.0; 3], &MsOptions::default()).is_err());
        assert!(analyze_steps(&p, &[-1.0; 20], &MsOptions::default()).is_err());
    }

    #[test]
    fn pd_one_upper_bounds_paper_pd() {
        let lo = analyze(&paper().with_pd(0.5), &MsOptions::default()).unwrap();
        let hi = analyze(&paper().with_pd(1.0), &MsOptions::default()).unwrap();
        assert!(hi.detection_probability(5) > lo.detection_probability(5));
    }
}
