use std::fmt;
use std::time::Duration;

/// Errors produced by the analytical models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A system parameter failed validation.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A lower-level numeric operation failed (propagated from `gbd-stats`).
    Numeric(gbd_stats::StatsError),
    /// A computation was cooperatively cancelled because its
    /// [`crate::budget::ComputeBudget`] deadline passed.
    DeadlineExceeded {
        /// Wall-clock time spent before cancellation.
        elapsed: Duration,
        /// Work units (chain stages, enumeration batches) finished before
        /// the deadline tripped.
        completed_stages: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            CoreError::Numeric(e) => write!(f, "numeric error: {e}"),
            CoreError::DeadlineExceeded {
                elapsed,
                completed_stages,
            } => write!(
                f,
                "deadline exceeded after {:.1} ms ({completed_stages} stages completed)",
                elapsed.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<gbd_stats::StatsError> for CoreError {
    fn from(e: gbd_stats::StatsError) -> Self {
        CoreError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidParameter {
            name: "pd",
            constraint: "must be in [0, 1]",
        };
        assert!(e.to_string().contains("pd"));
        let n: CoreError = gbd_stats::StatsError::InvalidPmf { reason: "x" }.into();
        assert!(std::error::Error::source(&n).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
