//! The Spatial approach (S-approach) — paper §3.3.
//!
//! The whole Aggregate Region is treated as a single stage, partitioned
//! into `Region(i)` subareas by coverage count, and the report distribution
//! is computed considering at most `G` sensors inside the ARegion.
//!
//! The paper evaluates this with Algorithm 1, whose runtime explodes
//! exponentially in `G` ("we need to wait at least many days to get the
//! results"); [`analyze_enumeration`] preserves that computational behavior
//! for the §3.4.5 runtime-comparison experiments, while [`analyze`] uses
//! the factorized convolution path so the S-approach *result* can also be
//! obtained quickly for validation.

use crate::budget::ComputeBudget;
use crate::ms_approach::AnalysisResult;
use crate::params::SystemParams;
use crate::report_dist::{
    stage_accuracy, stage_distribution, stage_distribution_enumeration_budgeted,
};
use crate::CoreError;
use gbd_geometry::subarea::SubareaTable;

/// Truncation option of the S-approach: the sensor cap `G` over the whole
/// Aggregate Region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SOptions {
    /// Maximum number of sensors considered inside the ARegion (`G`).
    pub cap_sensors: usize,
}

impl Default for SOptions {
    /// `G = 6`, the order of magnitude §3.3 calls computationally
    /// infeasible for Algorithm 1 (fine for the convolution path).
    fn default() -> Self {
        SOptions { cap_sensors: 6 }
    }
}

/// The `Region(i)` sizes of the whole Aggregate Region for a constant-speed
/// target (aggregating head, body and tail contributions).
pub fn region_sizes(params: &SystemParams) -> Vec<f64> {
    let table =
        SubareaTable::constant_speed(params.sensing_range(), params.step(), params.m_periods());
    table.region_sizes()
}

/// Runs the S-approach via the fast factorized path.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `cap_sensors == 0`.
pub fn analyze(params: &SystemParams, opts: &SOptions) -> Result<AnalysisResult, CoreError> {
    let regions = region_sizes(params);
    run(params, opts, &regions, stage_distribution)
}

/// Runs the S-approach via the paper-faithful Algorithm 1 enumeration.
///
/// Runtime is exponential in `cap_sensors`; with the paper's parameters it
/// becomes impractical beyond `G ≈ 5`, which is precisely the phenomenon
/// the M-S-approach was invented to avoid. Use for fidelity tests and the
/// runtime experiments only.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `cap_sensors == 0`.
pub fn analyze_enumeration(
    params: &SystemParams,
    opts: &SOptions,
) -> Result<AnalysisResult, CoreError> {
    analyze_enumeration_budgeted(params, opts, &ComputeBudget::unlimited())
}

/// [`analyze_enumeration`] under a cooperative [`ComputeBudget`]: the
/// Algorithm 1 recursion checkpoints every few thousand enumeration
/// leaves, so a `G` chosen too ambitiously is cancelled with
/// [`CoreError::DeadlineExceeded`] instead of running "at least many days"
/// (§3.3). A run that completes is bit-identical to the unbudgeted one.
///
/// # Errors
///
/// Everything [`analyze_enumeration`] rejects, plus
/// [`CoreError::DeadlineExceeded`] when the budget's deadline trips.
pub fn analyze_enumeration_budgeted(
    params: &SystemParams,
    opts: &SOptions,
    budget: &ComputeBudget,
) -> Result<AnalysisResult, CoreError> {
    if opts.cap_sensors == 0 {
        return Err(CoreError::InvalidParameter {
            name: "cap_sensors",
            constraint: "must be at least 1",
        });
    }
    let regions = region_sizes(params);
    let dist = stage_distribution_enumeration_budgeted(
        &regions,
        params.field_area(),
        params.n_sensors(),
        params.pd(),
        opts.cap_sensors,
        budget,
    )?;
    Ok(AnalysisResult::new(dist, eta_s(params, &regions, opts)))
}

fn run(
    params: &SystemParams,
    opts: &SOptions,
    regions: &[f64],
    stage: fn(&[f64], f64, usize, f64, usize) -> gbd_stats::discrete::DiscreteDist,
) -> Result<AnalysisResult, CoreError> {
    if opts.cap_sensors == 0 {
        return Err(CoreError::InvalidParameter {
            name: "cap_sensors",
            constraint: "must be at least 1",
        });
    }
    let dist = stage(
        regions,
        params.field_area(),
        params.n_sensors(),
        params.pd(),
        opts.cap_sensors,
    );
    Ok(AnalysisResult::new(dist, eta_s(params, regions, opts)))
}

/// The S-approach accuracy bound `η_S` over the whole Aggregate Region.
fn eta_s(params: &SystemParams, regions: &[f64], opts: &SOptions) -> f64 {
    stage_accuracy(
        regions.iter().sum(),
        params.field_area(),
        params.n_sensors(),
        opts.cap_sensors,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms_approach::{self, MsOptions};

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn region_sizes_partition_aregion() {
        let p = paper();
        let total: f64 = region_sizes(&p).iter().sum();
        assert!((total - p.aregion_area()).abs() < 1e-4);
    }

    #[test]
    fn s_approach_mass_is_eta_s() {
        let p = paper();
        let opts = SOptions { cap_sensors: 8 };
        let r = analyze(&p, &opts).unwrap();
        let eta = stage_accuracy(p.aregion_area(), p.field_area(), p.n_sensors(), 8);
        assert!((r.retained_mass() - eta).abs() < 1e-9);
        assert!((r.predicted_accuracy() - eta).abs() < 1e-12);
    }

    #[test]
    fn enumeration_matches_convolution_for_tiny_cap() {
        // Keep cap tiny: the enumeration path is exponential by design.
        let p = paper().with_n_sensors(60);
        let fast = analyze(&p, &SOptions { cap_sensors: 2 }).unwrap();
        let slow = analyze_enumeration(&p, &SOptions { cap_sensors: 2 }).unwrap();
        assert!(
            fast.raw_distribution()
                .max_abs_diff(slow.raw_distribution())
                < 1e-11
        );
    }

    #[test]
    fn s_and_ms_agree_when_truncation_is_mild() {
        // With generous caps both approaches approximate the same exact
        // distribution, so their normalized tails agree closely.
        let p = paper();
        let s = analyze(&p, &SOptions { cap_sensors: 24 }).unwrap();
        let ms = ms_approach::analyze(
            &p,
            &MsOptions {
                g: 8,
                gh: 8,
                eps: 0.0,
            },
        )
        .unwrap();
        let ds = s.detection_probability(5);
        let dms = ms.detection_probability(5);
        assert!((ds - dms).abs() < 2e-3, "S={ds} MS={dms}");
    }

    #[test]
    fn s_approach_needs_larger_cap_than_ms_for_same_accuracy() {
        // The crux of §3.4: the ARegion is much larger than any NEDR, so G
        // must exceed g for the same ξ.
        let p = paper();
        let target = 0.99f64;
        let mut g_needed = 0;
        while stage_accuracy(
            2.0 * p.sensing_range() * p.step(),
            p.field_area(),
            p.n_sensors(),
            g_needed,
        ) < target.powf(1.0 / p.m_periods() as f64)
        {
            g_needed += 1;
        }
        let mut cap_needed = 0;
        while stage_accuracy(p.aregion_area(), p.field_area(), p.n_sensors(), cap_needed)
            < target
        {
            cap_needed += 1;
        }
        assert!(cap_needed > g_needed, "G={cap_needed} g={g_needed}");
    }

    #[test]
    fn rejects_zero_cap() {
        assert!(analyze(&paper(), &SOptions { cap_sensors: 0 }).is_err());
        assert!(analyze_enumeration_budgeted(
            &paper(),
            &SOptions { cap_sensors: 0 },
            &ComputeBudget::unlimited()
        )
        .is_err());
    }

    #[test]
    fn budgeted_enumeration_cancels_an_expensive_cap() {
        use std::time::Duration;
        // G = 6 on the paper point is exactly the "many days" regime §3.3
        // warns about; a zero deadline must cancel it within the first
        // checkpoint interval instead of hanging the test suite.
        let expired = analyze_enumeration_budgeted(
            &paper(),
            &SOptions { cap_sensors: 6 },
            &ComputeBudget::with_deadline(Duration::ZERO),
        );
        assert!(matches!(
            expired,
            Err(crate::CoreError::DeadlineExceeded { .. })
        ));
    }
}
