//! The `M = 1` preliminary model (paper §3.1, Eqs (1)–(2)).
//!
//! When the system decision uses a single sensing period, the number of
//! reports is binomial: each of the `N` sensors independently lies in the
//! target's Detectable Region with probability `(2·Rs·V·t + π·Rs²)/S` and,
//! if so, reports with probability `Pd`.

use crate::params::SystemParams;
use gbd_stats::binomial::Binomial;

/// `p_indi`: probability that one uniformly placed sensor detects the
/// target during a single sensing period,
/// `Pd · (2·Rs·V·t + π·Rs²) / S`.
pub fn p_indi(params: &SystemParams) -> f64 {
    params.pd() * params.dr_area() / params.field_area()
}

/// The report-count distribution of a single period,
/// `X ~ B(N, p_indi)` — Eq (1).
pub fn report_distribution(params: &SystemParams) -> Binomial {
    Binomial::new(params.n_sensors() as u64, p_indi(params))
        .expect("p_indi is a valid probability by construction")
}

/// `P1[X = k]` — Eq (1).
pub fn probability_exactly(params: &SystemParams, k: usize) -> f64 {
    report_distribution(params).pmf(k as u64)
}

/// `P1[X >= k]` — Eq (2).
pub fn probability_at_least(params: &SystemParams, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    report_distribution(params).sf(k as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn p_indi_matches_formula() {
        let p = params();
        let expect =
            0.9 * (2.0 * 1000.0 * 600.0 + std::f64::consts::PI * 1e6) / (32_000.0 * 32_000.0);
        assert!((p_indi(&p) - expect).abs() < 1e-15);
        // Sparse network: a single sensor very rarely sees the target.
        assert!(p_indi(&p) < 0.005);
    }

    #[test]
    fn at_least_zero_is_certain() {
        assert_eq!(probability_at_least(&params(), 0), 1.0);
    }

    #[test]
    fn eq2_is_complement_of_eq1_sum() {
        let p = params();
        let k = 3;
        let direct = probability_at_least(&p, k);
        let complement: f64 = 1.0 - (0..k).map(|i| probability_exactly(&p, i)).sum::<f64>();
        assert!((direct - complement).abs() < 1e-12);
    }

    #[test]
    fn paper_motivation_m1_with_k5_is_hopeless_in_sparse_network() {
        // §3.1: "in sparse deployments, the probability of having more than
        // one report in one sensing period is very low" — with k = 5 and
        // M = 1, detection is essentially impossible, motivating M > 1.
        let p = params().with_n_sensors(240);
        assert!(probability_at_least(&p, 5) < 0.01);
        // Even a single report in one period is far from certain.
        assert!(probability_at_least(&p, 1) < 0.65);
    }

    #[test]
    fn monotone_in_n_and_speed() {
        let base = params().with_n_sensors(60);
        let more = params().with_n_sensors(240);
        assert!(probability_at_least(&more, 1) > probability_at_least(&base, 1));
        let slow = params().with_speed(4.0);
        let fast = params().with_speed(10.0);
        assert!(probability_at_least(&fast, 1) > probability_at_least(&slow, 1));
    }
}
