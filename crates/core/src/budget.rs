//! Cooperative compute budgets (deadlines) for the analytical backends.
//!
//! The expensive paths of this crate — the per-stage loop of the
//! M-S-approach and especially the exponential Algorithm 1 enumeration of
//! the S-approach (`O(ms^{2G})`) — can blow any latency budget. A
//! [`ComputeBudget`] threads a deadline through those loops as *cooperative
//! cancellation*: the computation calls [`ComputeBudget::checkpoint`] at
//! natural boundaries (between chain stages, every few thousand enumeration
//! leaves) and receives [`CoreError::DeadlineExceeded`] once the deadline
//! has passed, instead of running to completion long after the caller
//! stopped caring.
//!
//! A budget never changes *values*: a computation that finishes under its
//! deadline returns bit-identical results to one run with
//! [`ComputeBudget::unlimited`]. The budget only decides whether the
//! computation finishes at all.

use crate::CoreError;
use std::cell::Cell;
use std::time::{Duration, Instant};

/// A per-computation deadline with stage-progress accounting.
///
/// Cheap to create and to check; not `Sync` (one budget belongs to one
/// in-flight computation on one thread).
///
/// # Example
///
/// ```
/// use gbd_core::budget::ComputeBudget;
/// use std::time::Duration;
///
/// let budget = ComputeBudget::with_deadline(Duration::from_secs(3600));
/// assert!(budget.checkpoint().is_ok());
/// budget.complete_stage();
/// assert_eq!(budget.completed_stages(), 1);
///
/// let expired = ComputeBudget::with_deadline(Duration::ZERO);
/// assert!(expired.checkpoint().is_err());
/// ```
#[derive(Debug)]
pub struct ComputeBudget {
    start: Instant,
    deadline: Option<Duration>,
    completed_stages: Cell<usize>,
}

impl Default for ComputeBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl ComputeBudget {
    /// A budget whose checkpoints always pass (no deadline).
    pub fn unlimited() -> Self {
        ComputeBudget {
            start: Instant::now(),
            deadline: None,
            completed_stages: Cell::new(0),
        }
    }

    /// A budget that expires `deadline` after its creation.
    pub fn with_deadline(deadline: Duration) -> Self {
        ComputeBudget {
            start: Instant::now(),
            deadline: Some(deadline),
            completed_stages: Cell::new(0),
        }
    }

    /// Whether this budget carries a deadline at all.
    pub fn has_deadline(&self) -> bool {
        self.deadline.is_some()
    }

    /// Wall-clock time since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Records one completed unit of work (a chain stage, a sweep point).
    /// Reported back in [`CoreError::DeadlineExceeded::completed_stages`]
    /// so callers can see how far the computation got.
    pub fn complete_stage(&self) {
        self.completed_stages.set(self.completed_stages.get() + 1);
    }

    /// Number of stages completed so far.
    pub fn completed_stages(&self) -> usize {
        self.completed_stages.get()
    }

    /// Cooperative cancellation point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DeadlineExceeded`] when the deadline has
    /// passed, carrying the elapsed time and the stage progress.
    pub fn checkpoint(&self) -> Result<(), CoreError> {
        if let Some(deadline) = self.deadline {
            let elapsed = self.elapsed();
            if elapsed > deadline {
                return Err(CoreError::DeadlineExceeded {
                    elapsed,
                    completed_stages: self.completed_stages.get(),
                });
            }
        }
        Ok(())
    }

    /// Whether spending `extra` additional time would overrun the deadline.
    /// Always `false` for an unlimited budget. Used by callers that know a
    /// step's cost up front (e.g. an injected-latency fault or a retry
    /// backoff) and want to fail fast instead of paying it.
    pub fn would_exceed(&self, extra: Duration) -> bool {
        match self.deadline {
            Some(deadline) => self.elapsed() + extra > deadline,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = ComputeBudget::unlimited();
        for _ in 0..10 {
            b.complete_stage();
            assert!(b.checkpoint().is_ok());
        }
        assert!(!b.would_exceed(Duration::from_secs(1_000_000)));
        assert!(!b.has_deadline());
    }

    #[test]
    fn zero_deadline_trips_immediately_with_progress() {
        let b = ComputeBudget::with_deadline(Duration::ZERO);
        b.complete_stage();
        b.complete_stage();
        match b.checkpoint() {
            Err(CoreError::DeadlineExceeded {
                completed_stages, ..
            }) => assert_eq!(completed_stages, 2),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(b.has_deadline());
    }

    #[test]
    fn generous_deadline_passes() {
        let b = ComputeBudget::with_deadline(Duration::from_secs(3600));
        assert!(b.checkpoint().is_ok());
        assert!(!b.would_exceed(Duration::from_secs(1)));
        assert!(b.would_exceed(Duration::from_secs(7200)));
    }
}
