//! Truncation-accuracy equations and required-cap solvers (Figure 8).
//!
//! Eq (5): `η_S = Σ_{i≤G} C(N,i)(A_R/S)^i(1−A_R/S)^{N−i}` over the ARegion;
//! Eq (7): `ξ_h` with the Head NEDR area `2·Rs·V·t + π·Rs²`;
//! Eq (9): `ξ` with the Body/Tail NEDR area `2·Rs·V·t`;
//! Eq (14): `η_MS = ξ_h · ξ^{M−1}`.
//!
//! Given a user accuracy requirement `η_R`, the paper sets the per-stage
//! requirement `ξ ≥ η_R^{1/M}` (taking `ξ_h = ξ` for simplicity) and solves
//! for the smallest caps; [`required_caps`] reproduces exactly that
//! procedure, which generates Figure 8.

use crate::params::SystemParams;
use crate::report_dist::{stage_accuracy, stage_accuracy_with};
use gbd_stats::binomial::PmfTable;

/// The required truncation caps for a target analysis accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequiredCaps {
    /// Body/Tail-stage cap `g` of the M-S-approach.
    pub g: usize,
    /// Head-stage cap `gh` of the M-S-approach.
    pub gh: usize,
    /// ARegion cap `G` of the S-approach.
    pub g_s_approach: usize,
}

/// Smallest cap `c` such that the stage accuracy over a region of the given
/// area reaches `target`.
///
/// # Panics
///
/// Panics if `target` is not in `(0, 1]`.
pub fn required_cap(region_area: f64, field_area: f64, n_sensors: usize, target: f64) -> usize {
    assert!(
        target > 0.0 && target <= 1.0,
        "target accuracy must be in (0, 1]"
    );
    // One pmf-table fill serves the whole cap scan; each per-cap query is
    // bit-identical to the seed's per-call `stage_accuracy` (which
    // re-evaluated the full placement pmf tail for every candidate cap —
    // the O(N²) behaviour that dominated the Figure 8 sweep).
    let mut table = PmfTable::new();
    (0..=n_sensors)
        .find(|&c| {
            stage_accuracy_with(region_area, field_area, n_sensors, c, &mut table) >= target
        })
        .unwrap_or(n_sensors)
}

/// Solves for the Figure 8 quantities: `g` and `gh` such that
/// `ξ ≥ η_R^{1/M}` per stage, and `G` such that `η_S ≥ η_R`.
///
/// # Panics
///
/// Panics if `eta_r` is not in `(0, 1]`.
///
/// # Example
///
/// ```
/// use gbd_core::accuracy::required_caps;
/// use gbd_core::params::SystemParams;
///
/// // Figure 8 at N = 240: tiny caps for the M-S-approach, a large one
/// // for the S-approach.
/// let caps = required_caps(&SystemParams::paper_defaults(), 0.99);
/// assert!(caps.g <= 4 && caps.gh <= 7);
/// assert!(caps.g_s_approach >= 10);
/// ```
pub fn required_caps(params: &SystemParams, eta_r: f64) -> RequiredCaps {
    assert!(eta_r > 0.0 && eta_r <= 1.0, "eta_r must be in (0, 1]");
    let per_stage = eta_r.powf(1.0 / params.m_periods() as f64);
    let s = params.field_area();
    let n = params.n_sensors();
    let body_area = 2.0 * params.sensing_range() * params.step();
    RequiredCaps {
        g: required_cap(body_area, s, n, per_stage),
        gh: required_cap(params.dr_area(), s, n, per_stage),
        g_s_approach: required_cap(params.aregion_area(), s, n, eta_r),
    }
}

/// The Eq (14) accuracy of an M-S run with explicit caps,
/// `η_MS = ξ_h · ξ^{M−1}`.
pub fn predicted_accuracy_ms(params: &SystemParams, g: usize, gh: usize) -> f64 {
    let s = params.field_area();
    let n = params.n_sensors();
    let xi_h = stage_accuracy(params.dr_area(), s, n, gh);
    let xi = stage_accuracy(2.0 * params.sensing_range() * params.step(), s, n, g);
    xi_h * xi.powi(params.m_periods() as i32 - 1)
}

/// The Eq (5) accuracy of an S-approach run with cap `g_s`.
pub fn predicted_accuracy_s(params: &SystemParams, g_s: usize) -> f64 {
    stage_accuracy(
        params.aregion_area(),
        params.field_area(),
        params.n_sensors(),
        g_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn figure8_shape_g_much_smaller_than_big_g() {
        // Figure 8: across N = 60..260, G is significantly greater than
        // both g and gh, and gh >= g.
        for n in (60..=260).step_by(40) {
            let caps = required_caps(&paper().with_n_sensors(n), 0.99);
            assert!(caps.g_s_approach > caps.gh, "n={n}: {caps:?}");
            assert!(caps.gh >= caps.g, "n={n}: {caps:?}");
        }
    }

    #[test]
    fn figure8_caps_grow_with_n() {
        let lo = required_caps(&paper().with_n_sensors(60), 0.99);
        let hi = required_caps(&paper().with_n_sensors(260), 0.99);
        assert!(hi.g_s_approach > lo.g_s_approach);
        assert!(hi.g >= lo.g);
        assert!(hi.gh >= lo.gh);
    }

    #[test]
    fn figure8_magnitudes_match_paper() {
        // At the paper's settings the figure shows g, gh in the low single
        // digits and G around 8–13.
        let caps = required_caps(&paper().with_n_sensors(240), 0.99);
        assert!(caps.g <= 4, "{caps:?}");
        assert!(caps.gh <= 7, "{caps:?}");
        assert!((6..=16).contains(&caps.g_s_approach), "{caps:?}");
    }

    #[test]
    fn required_cap_achieves_target() {
        let p = paper();
        let target = 0.995;
        let c = required_cap(p.dr_area(), p.field_area(), p.n_sensors(), target);
        assert!(stage_accuracy(p.dr_area(), p.field_area(), p.n_sensors(), c) >= target);
        if c > 0 {
            assert!(stage_accuracy(p.dr_area(), p.field_area(), p.n_sensors(), c - 1) < target);
        }
    }

    #[test]
    fn predicted_accuracy_ms_meets_requirement_with_required_caps() {
        let p = paper();
        let caps = required_caps(&p, 0.99);
        assert!(predicted_accuracy_ms(&p, caps.g, caps.gh) >= 0.99 - 1e-12);
        assert!(predicted_accuracy_s(&p, caps.g_s_approach) >= 0.99 - 1e-12);
    }

    #[test]
    fn trivial_target_needs_no_sensors() {
        let p = paper();
        assert_eq!(required_cap(p.dr_area(), p.field_area(), 240, 1e-9), 0);
    }

    #[test]
    #[should_panic(expected = "eta_r")]
    fn bad_target_panics() {
        required_caps(&paper(), 0.0);
    }
}
