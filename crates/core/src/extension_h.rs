//! The §4 extension: "at least `k` reports from at least `h` distinct
//! nodes".
//!
//! The paper sketches the change: enlarge the Markov state space from
//! report counts to `(reports, nodes)` pairs (`hMZ + 1` states). This
//! module implements that enlarged chain as a two-dimensional saturating
//! counting distribution: each stage contributes a joint increment
//! `(m reports, d distinct reporting sensors)`, where a sensor counts
//! toward `d` iff it generated at least one report.

use crate::params::SystemParams;
use crate::report_dist::per_sensor_distribution;
use crate::CoreError;
use gbd_geometry::subarea::SubareaTable;
use gbd_stats::binomial::Binomial;

pub use crate::ms_approach::MsOptions;

/// A joint distribution over `(reports, reporting nodes)` with both axes
/// saturating at their caps (merged top states).
#[derive(Debug, Clone, PartialEq)]
pub struct JointDist {
    cap_r: usize,
    cap_n: usize,
    /// Row-major: `data[r * (cap_n + 1) + n]`.
    data: Vec<f64>,
}

impl JointDist {
    /// The point mass at `(0, 0)`.
    pub fn point_mass_zero(cap_r: usize, cap_n: usize) -> Self {
        let mut data = vec![0.0; (cap_r + 1) * (cap_n + 1)];
        data[0] = 1.0;
        JointDist { cap_r, cap_n, data }
    }

    fn zero(cap_r: usize, cap_n: usize) -> Self {
        JointDist {
            cap_r,
            cap_n,
            data: vec![0.0; (cap_r + 1) * (cap_n + 1)],
        }
    }

    /// Report-axis cap.
    pub fn cap_reports(&self) -> usize {
        self.cap_r
    }

    /// Node-axis cap.
    pub fn cap_nodes(&self) -> usize {
        self.cap_n
    }

    /// Probability mass at `(reports, nodes)` (saturated coordinates).
    pub fn pmf(&self, reports: usize, nodes: usize) -> f64 {
        if reports > self.cap_r || nodes > self.cap_n {
            return 0.0;
        }
        self.data[reports * (self.cap_n + 1) + nodes]
    }

    fn add(&mut self, reports: usize, nodes: usize, mass: f64) {
        let r = reports.min(self.cap_r);
        let n = nodes.min(self.cap_n);
        self.data[r * (self.cap_n + 1) + n] += mass;
    }

    /// Total retained mass.
    pub fn total_mass(&self) -> f64 {
        self.data.iter().sum()
    }

    /// `P[reports >= k AND nodes >= h]` over the retained mass.
    pub fn tail(&self, k: usize, h: usize) -> f64 {
        if k > self.cap_r || h > self.cap_n {
            return 0.0;
        }
        let mut total = 0.0;
        for r in k..=self.cap_r {
            for n in h..=self.cap_n {
                total += self.pmf(r, n);
            }
        }
        total
    }

    /// Saturating 2-D convolution (independent sum on both axes).
    ///
    /// # Panics
    ///
    /// Panics if the caps differ.
    pub fn convolve_saturating(&self, other: &JointDist) -> JointDist {
        assert_eq!(self.cap_r, other.cap_r, "report caps must match");
        assert_eq!(self.cap_n, other.cap_n, "node caps must match");
        let mut out = JointDist::zero(self.cap_r, self.cap_n);
        for r1 in 0..=self.cap_r {
            for n1 in 0..=self.cap_n {
                let a = self.pmf(r1, n1);
                if a == 0.0 {
                    continue;
                }
                for r2 in 0..=other.cap_r {
                    for n2 in 0..=other.cap_n {
                        let b = other.pmf(r2, n2);
                        if b != 0.0 {
                            out.add(r1 + r2, n1 + n2, a * b);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Result of the h-node analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct HAnalysisResult {
    joint: JointDist,
}

impl HAnalysisResult {
    /// Normalized `P[>= k reports from >= h nodes within M periods]`.
    pub fn detection_probability(&self, k: usize, h: usize) -> f64 {
        self.joint.tail(k, h) / self.joint.total_mass()
    }

    /// Unnormalized tail (the truncated-mass analogue of Figure 9(b)).
    pub fn detection_probability_unnormalized(&self, k: usize, h: usize) -> f64 {
        self.joint.tail(k, h)
    }

    /// Retained probability mass.
    pub fn retained_mass(&self) -> f64 {
        self.joint.total_mass()
    }

    /// The final joint distribution.
    pub fn joint(&self) -> &JointDist {
        &self.joint
    }
}

/// Runs the M-S-approach with the enlarged `(reports, nodes)` state space.
///
/// `h_cap` is the node-axis cap; choose it equal to the decision rule's `h`
/// (states with more nodes merge into it, exactly like the paper's merged
/// report state).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `h_cap == 0` or a truncation
/// cap is zero.
///
/// # Example
///
/// ```
/// use gbd_core::extension_h::{analyze, MsOptions};
/// use gbd_core::params::SystemParams;
///
/// # fn main() -> Result<(), gbd_core::CoreError> {
/// let params = SystemParams::paper_defaults();
/// let joint = analyze(&params, 3, &MsOptions::default())?;
/// // Requiring distinct witnesses can only lower the probability.
/// assert!(joint.detection_probability(5, 3) <= joint.detection_probability(5, 1));
/// # Ok(())
/// # }
/// ```
pub fn analyze(
    params: &SystemParams,
    h_cap: usize,
    opts: &MsOptions,
) -> Result<HAnalysisResult, CoreError> {
    if h_cap == 0 {
        return Err(CoreError::InvalidParameter {
            name: "h_cap",
            constraint: "must be at least 1",
        });
    }
    if opts.g == 0 || opts.gh == 0 {
        return Err(CoreError::InvalidParameter {
            name: "g/gh",
            constraint: "truncation caps must be at least 1",
        });
    }
    let m = params.m_periods();
    let table = SubareaTable::constant_speed(params.sensing_range(), params.step(), m);
    let n = params.n_sensors();
    let field_area = params.field_area();

    // Support bound on the report axis (same as the scalar M-S chain).
    let mut stage_inputs = Vec::with_capacity(m);
    let mut cap_r = 0usize;
    for l in 1..=m {
        let mut areas = table.subareas(l);
        while areas.len() > 1 && *areas.last().unwrap() == 0.0 {
            areas.pop();
        }
        let cap = if l == 1 { opts.gh } else { opts.g }.min(n);
        cap_r += cap * areas.len();
        stage_inputs.push((areas, cap));
    }
    cap_r = cap_r.max(1);

    let mut chain = JointDist::point_mass_zero(cap_r, h_cap);
    for (areas, cap) in &stage_inputs {
        let stage = stage_joint(areas, field_area, n, params.pd(), *cap, cap_r, h_cap);
        chain = chain.convolve_saturating(&stage);
    }
    Ok(HAnalysisResult { joint: chain })
}

/// Joint increment distribution of one stage: mixture over the (truncated)
/// number of sensors in the NEDR of the n-fold convolution of the
/// per-sensor joint `(m, 1_{m >= 1})`.
fn stage_joint(
    areas: &[f64],
    field_area: f64,
    n_sensors: usize,
    pd: f64,
    cap_sensors: usize,
    cap_r: usize,
    cap_n: usize,
) -> JointDist {
    let region_area: f64 = areas.iter().sum();
    if region_area <= 0.0 {
        return JointDist::point_mass_zero(cap_r, cap_n);
    }
    let placement =
        Binomial::new(n_sensors as u64, region_area / field_area).expect("valid fraction");
    let q = per_sensor_distribution(areas, pd);
    let mut per_sensor = JointDist::zero(cap_r, cap_n);
    for (m, &p) in q.as_slice().iter().enumerate() {
        per_sensor.add(m, usize::from(m >= 1), p);
    }
    let cap = cap_sensors.min(n_sensors);
    let mut acc = JointDist::zero(cap_r, cap_n);
    let mut q_n = JointDist::point_mass_zero(cap_r, cap_n);
    for n in 0..=cap {
        let w = placement.pmf(n as u64);
        if w > 0.0 {
            for r in 0..=cap_r {
                for d in 0..=cap_n {
                    let p = q_n.pmf(r, d);
                    if p != 0.0 {
                        acc.add(r, d, w * p);
                    }
                }
            }
        }
        if n < cap {
            q_n = q_n.convolve_saturating(&per_sensor);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms_approach;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn h_one_matches_scalar_ms_approach() {
        // "at least k reports from at least 1 node" == "at least k reports".
        let p = paper();
        let opts = MsOptions::default();
        let scalar = ms_approach::analyze(&p, &opts).unwrap();
        let joint = analyze(&p, 1, &opts).unwrap();
        for k in 1..=8 {
            let a = scalar.detection_probability(k);
            let b = joint.detection_probability(k, 1);
            assert!((a - b).abs() < 1e-9, "k={k}: {a} vs {b}");
        }
        assert!((scalar.retained_mass() - joint.retained_mass()).abs() < 1e-9);
    }

    #[test]
    fn probability_decreases_in_h() {
        let p = paper();
        let opts = MsOptions::default();
        let r = analyze(&p, 6, &opts).unwrap();
        let mut prev = 1.1;
        for h in 1..=6 {
            let prob = r.detection_probability(5, h);
            assert!(prob <= prev + 1e-12, "h={h}");
            prev = prob;
        }
    }

    #[test]
    fn h_requirement_bites_in_sparse_networks() {
        // In a sparse network one sensor often generates several of the k
        // reports; requiring k distinct nodes is substantially harder.
        let p = paper();
        let r = analyze(&p, 5, &MsOptions::default()).unwrap();
        let loose = r.detection_probability(5, 1);
        let strict = r.detection_probability(5, 5);
        assert!(strict < loose - 0.05, "loose={loose} strict={strict}");
    }

    #[test]
    fn tail_is_zero_beyond_caps() {
        let r = analyze(&paper(), 3, &MsOptions::default()).unwrap();
        assert_eq!(r.joint().tail(usize::MAX, 1), 0.0);
        assert_eq!(r.joint().tail(1, 4), 0.0);
    }

    #[test]
    fn nodes_never_exceed_reports() {
        // P[nodes >= h AND reports < h] must be zero: every reporting node
        // contributes at least one report.
        let r = analyze(&paper(), 3, &MsOptions::default()).unwrap();
        let j = r.joint();
        for reports in 0..3usize {
            for nodes in (reports + 1)..=3 {
                assert!(j.pmf(reports, nodes) < 1e-15, "({reports},{nodes})");
            }
        }
    }

    #[test]
    fn rejects_invalid_caps() {
        assert!(analyze(&paper(), 0, &MsOptions::default()).is_err());
        assert!(analyze(
            &paper(),
            2,
            &MsOptions {
                g: 0,
                gh: 1,
                eps: 0.0
            }
        )
        .is_err());
    }
}
