//! Design-space solvers: the paper's model, inverted.
//!
//! The conclusion of the paper sells the analysis as a design tool: "The
//! analysis helps a system designer understand the impact of various
//! system parameters in an easy way, without running extensive simulations
//! or deploying real systems." This module turns the forward model into
//! the questions designers actually ask:
//!
//! * how many sensors buy a target detection probability?
//! * what sensing range would the existing fleet need?
//! * how large an area can a fixed budget patrol?
//!
//! All solvers exploit the detection probability's monotonicity in the
//! designed parameter (each is asserted by the test suite) and bisect the
//! exact model, so no truncation caps leak into design decisions.

use crate::exact;
use crate::params::SystemParams;
use crate::CoreError;

/// Result of a design solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The solved parameter value.
    pub value: f64,
    /// Detection probability achieved at that value.
    pub achieved: f64,
}

fn validate_target(target: f64) -> Result<(), CoreError> {
    if !(0.0 < target && target < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "target",
            constraint: "must lie strictly between 0 and 1",
        });
    }
    Ok(())
}

/// Smallest sensor count `N` whose exact detection probability reaches
/// `target`, up to `n_max`.
///
/// Returns `None` if even `n_max` sensors are insufficient.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `target` is not in `(0, 1)`.
///
/// # Example
///
/// ```
/// use gbd_core::design::required_sensors;
/// use gbd_core::params::SystemParams;
///
/// # fn main() -> Result<(), gbd_core::CoreError> {
/// let params = SystemParams::paper_defaults();
/// let point = required_sensors(&params, 0.90, 1_000)?.expect("reachable");
/// // Figure 9(a): ~0.93 at N = 180, so the 0.90 threshold falls just below.
/// assert!(point.value >= 150.0 && point.value <= 180.0);
/// # Ok(())
/// # }
/// ```
pub fn required_sensors(
    params: &SystemParams,
    target: f64,
    n_max: usize,
) -> Result<Option<DesignPoint>, CoreError> {
    validate_target(target)?;
    let k = params.k();
    let p_of = |n: usize| exact::detection_probability(&params.with_n_sensors(n), k);
    if p_of(n_max) < target {
        return Ok(None);
    }
    let (mut lo, mut hi) = (0usize, n_max);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if p_of(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(DesignPoint {
        value: hi as f64,
        achieved: p_of(hi),
    }))
}

/// Smallest sensing range `Rs` (meters) reaching `target`, searched within
/// `[rs_lo, rs_hi]` by bisection to a 1 m tolerance.
///
/// Returns `None` if `rs_hi` is insufficient.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `target` is not in `(0, 1)`
/// or the bracket is invalid.
pub fn required_sensing_range(
    params: &SystemParams,
    target: f64,
    rs_lo: f64,
    rs_hi: f64,
) -> Result<Option<DesignPoint>, CoreError> {
    validate_target(target)?;
    if !(rs_lo > 0.0 && rs_hi > rs_lo && rs_hi.is_finite()) {
        return Err(CoreError::InvalidParameter {
            name: "rs_lo/rs_hi",
            constraint: "must satisfy 0 < rs_lo < rs_hi",
        });
    }
    let k = params.k();
    let p_of = |rs: f64| exact::detection_probability(&params.with_sensing_range(rs), k);
    if p_of(rs_hi) < target {
        return Ok(None);
    }
    let (mut lo, mut hi) = (rs_lo, rs_hi);
    if p_of(lo) >= target {
        return Ok(Some(DesignPoint {
            value: lo,
            achieved: p_of(lo),
        }));
    }
    while hi - lo > 1.0 {
        let mid = (lo + hi) / 2.0;
        if p_of(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(DesignPoint {
        value: hi,
        achieved: p_of(hi),
    }))
}

/// Largest square field side (meters) a fixed fleet can patrol while
/// keeping detection probability at least `target`, searched within
/// `[side_lo, side_hi]` to a 10 m tolerance.
///
/// Detection probability falls as the field grows (the same sensors spread
/// thinner), so this bisects the decreasing direction. Returns `None` if
/// even `side_lo` cannot reach the target.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `target` is not in `(0, 1)`
/// or the bracket is invalid.
pub fn max_field_side(
    params: &SystemParams,
    target: f64,
    side_lo: f64,
    side_hi: f64,
) -> Result<Option<DesignPoint>, CoreError> {
    validate_target(target)?;
    if !(side_lo > 0.0 && side_hi > side_lo && side_hi.is_finite()) {
        return Err(CoreError::InvalidParameter {
            name: "side_lo/side_hi",
            constraint: "must satisfy 0 < side_lo < side_hi",
        });
    }
    // The sparse-network model assumes the target's Aggregate Region fits
    // inside the field; below that the analysis premise is void.
    if side_lo * side_lo < params.aregion_area() {
        return Err(CoreError::InvalidParameter {
            name: "side_lo",
            constraint: "field must be large enough to contain the Aggregate Region",
        });
    }
    let k = params.k();
    let p_of = |side: f64| {
        let p = SystemParams::new(
            side,
            side,
            params.n_sensors(),
            params.sensing_range(),
            params.speed(),
            params.period_s(),
            params.pd(),
            params.m_periods(),
            k,
        )
        .expect("scaled params remain valid");
        exact::detection_probability(&p, k)
    };
    if p_of(side_lo) < target {
        return Ok(None);
    }
    if p_of(side_hi) >= target {
        return Ok(Some(DesignPoint {
            value: side_hi,
            achieved: p_of(side_hi),
        }));
    }
    let (mut lo, mut hi) = (side_lo, side_hi);
    while hi - lo > 10.0 {
        let mid = (lo + hi) / 2.0;
        if p_of(mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(DesignPoint {
        value: lo,
        achieved: p_of(lo),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn required_sensors_is_tight() {
        let p = paper();
        let point = required_sensors(&p, 0.9, 500).unwrap().unwrap();
        let n = point.value as usize;
        assert!(point.achieved >= 0.9);
        let below = exact::detection_probability(&p.with_n_sensors(n - 1), 5);
        assert!(below < 0.9, "n−1 already reaches the target: {below}");
    }

    #[test]
    fn required_sensors_unreachable_returns_none() {
        // Asking 99.9% detection with at most 30 sensors: hopeless.
        assert!(required_sensors(&paper(), 0.999, 30).unwrap().is_none());
    }

    #[test]
    fn required_range_bracket_behaviour() {
        let p = paper().with_n_sensors(120);
        let point = required_sensing_range(&p, 0.9, 100.0, 5_000.0)
            .unwrap()
            .unwrap();
        assert!(point.achieved >= 0.9);
        assert!(
            point.value > 1_000.0,
            "paper Rs=1km gives only ~0.78 at N=120"
        );
        // Tightness within the 1 m tolerance.
        let below = exact::detection_probability(&p.with_sensing_range(point.value - 2.0), 5);
        assert!(below < 0.9 + 1e-9);
        // Out-of-reach bracket.
        assert!(required_sensing_range(&p, 0.999999, 100.0, 1_100.0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn max_field_shrinks_with_stricter_targets() {
        let p = paper();
        let loose = max_field_side(&p, 0.8, 8_000.0, 200_000.0)
            .unwrap()
            .unwrap();
        let strict = max_field_side(&p, 0.95, 8_000.0, 200_000.0)
            .unwrap()
            .unwrap();
        assert!(loose.value > strict.value);
        assert!(strict.achieved >= 0.95);
        // The paper's own operating point: 240 sensors at 32 km reach ~0.98,
        // so a 0.95 target must allow at least a 32 km field.
        assert!(strict.value >= 32_000.0, "{}", strict.value);
    }

    #[test]
    fn max_field_none_when_infeasible() {
        let p = paper().with_n_sensors(5);
        assert!(max_field_side(&p, 0.99, 32_000.0, 64_000.0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn validation() {
        assert!(required_sensors(&paper(), 0.0, 100).is_err());
        assert!(required_sensors(&paper(), 1.0, 100).is_err());
        assert!(required_sensing_range(&paper(), 0.9, 0.0, 100.0).is_err());
        assert!(max_field_side(&paper(), 0.9, 100.0, 50.0).is_err());
        // Bracket below the Aggregate-Region footprint is rejected.
        assert!(max_field_side(&paper(), 0.9, 2_000.0, 50_000.0).is_err());
    }

    #[test]
    fn design_round_trip() {
        // Solve for N at a target, then verify the forward model at the
        // solved N meets it — across several targets.
        for target in [0.5, 0.7, 0.9, 0.97] {
            let point = required_sensors(&paper(), target, 1_000).unwrap().unwrap();
            assert!(point.achieved >= target, "target {target}");
        }
    }
}
