//! The [`DetectionModel`] abstraction: every analytical backend behind one
//! object-safe trait.
//!
//! The paper develops several ways to compute the same quantity — the
//! distribution of detection reports a straight-line target generates over
//! `M` sensing periods. Each lives in its own module with its own options
//! ([`crate::ms_approach`], [`crate::s_approach`], [`crate::exact`],
//! [`crate::t_approach`], [`crate::poisson_model`]). This module wraps each
//! in a unit struct implementing [`DetectionModel`], so callers that do not
//! care *which* approximation runs — the CLI, the evaluation engine, the
//! cross-backend agreement tests — can hold a `&dyn DetectionModel` and ask
//! for [`DetectionModel::report_distribution`].

use crate::exact;
use crate::ms_approach::{self, AnalysisResult, MsOptions};
use crate::params::SystemParams;
use crate::poisson_model;
use crate::s_approach::{self, SOptions};
use crate::t_approach;
use crate::CoreError;

/// The outcome every backend produces: a (possibly sub-stochastic) report
/// count distribution plus its predicted accuracy.
///
/// An alias of [`AnalysisResult`] — the backends already share the result
/// type; the alias names the role it plays in the [`DetectionModel`] API.
pub type ReportDistribution = AnalysisResult;

/// A backend that can compute the report-count distribution of a target
/// crossing the field.
///
/// Object safe: the engine and the CLI dispatch over `&dyn DetectionModel`.
///
/// # Example
///
/// ```
/// use gbd_core::prelude::*;
/// use gbd_core::model::{ExactModel, MsModel};
///
/// # fn main() -> Result<(), CoreError> {
/// let params = SystemParams::paper_defaults();
/// let models: [&dyn DetectionModel; 2] =
///     [&MsModel::default(), &ExactModel::default()];
/// for model in models {
///     let p = model.detection_probability(&params)?;
///     assert!(p > 0.9 && p <= 1.0);
/// }
/// # Ok(())
/// # }
/// ```
pub trait DetectionModel {
    /// Short stable identifier of the backend (e.g. `"ms"`, `"exact"`),
    /// used in CLI output and cache diagnostics.
    fn name(&self) -> &'static str;

    /// Computes the report-count distribution for `params`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when `params` or the backend's own options are
    /// outside the backend's domain (zero truncation caps, exhausted state
    /// budgets, …).
    fn report_distribution(
        &self,
        params: &SystemParams,
    ) -> Result<ReportDistribution, CoreError>;

    /// Normalized `P_M[X >= k]` at the threshold `params.k()`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DetectionModel::report_distribution`].
    fn detection_probability(&self, params: &SystemParams) -> Result<f64, CoreError> {
        Ok(self
            .report_distribution(params)?
            .detection_probability(params.k()))
    }
}

/// The paper's headline Markov chain based Spatial approach (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsModel {
    /// Truncation caps `g`/`gh`.
    pub opts: MsOptions,
}

impl DetectionModel for MsModel {
    fn name(&self) -> &'static str {
        "ms"
    }

    fn report_distribution(
        &self,
        params: &SystemParams,
    ) -> Result<ReportDistribution, CoreError> {
        ms_approach::analyze(params, &self.opts)
    }
}

/// The single-stage Spatial approach (§3.3), fast factorized path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SModel {
    /// Whole-ARegion sensor cap `G`.
    pub opts: SOptions,
}

impl DetectionModel for SModel {
    fn name(&self) -> &'static str {
        "s"
    }

    fn report_distribution(
        &self,
        params: &SystemParams,
    ) -> Result<ReportDistribution, CoreError> {
        s_approach::analyze(params, &self.opts)
    }
}

/// The exact reference model (no sensor-count truncation).
///
/// The returned distribution is saturated at `max(saturation_cap, k)`
/// (states at or above the cap merged), so tail probabilities at `k` are
/// exact while the support stays small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactModel {
    /// Saturation cap of the returned distribution; raised to `params.k()`
    /// when smaller.
    pub saturation_cap: usize,
}

impl Default for ExactModel {
    /// Cap 32: comfortably above every threshold the paper evaluates.
    fn default() -> Self {
        ExactModel { saturation_cap: 32 }
    }
}

impl DetectionModel for ExactModel {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn report_distribution(
        &self,
        params: &SystemParams,
    ) -> Result<ReportDistribution, CoreError> {
        let cap = self.saturation_cap.max(params.k());
        let dist = exact::report_distribution(params, cap);
        Ok(ReportDistribution::new(dist, 1.0))
    }
}

/// The Temporal approach the paper rejects (§3.2), with an explicit state
/// budget so the state explosion surfaces as an error, not a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TModel {
    /// Truncation caps `g`/`gh` (shared with the M-S-approach).
    pub opts: MsOptions,
    /// Abort when the live chain-state set exceeds this bound.
    pub max_states: usize,
}

impl Default for TModel {
    /// Paper caps with a 4-million-state budget — enough for small `M`/`N`
    /// study points, exhausted quickly at the paper's full scale (which is
    /// the point).
    fn default() -> Self {
        TModel {
            opts: MsOptions::default(),
            max_states: 4_000_000,
        }
    }
}

impl DetectionModel for TModel {
    fn name(&self) -> &'static str {
        "t"
    }

    fn report_distribution(
        &self,
        params: &SystemParams,
    ) -> Result<ReportDistribution, CoreError> {
        let result = t_approach::analyze(params, &self.opts, self.max_states)?;
        // The T-chain's leftover mass is the same per-stage accuracy
        // product the M-S-approach predicts (the two raw distributions are
        // identical).
        let accuracy = result.raw.total_mass();
        Ok(ReportDistribution::new(result.raw, accuracy))
    }
}

/// The Poisson-field variant: sensor counts `Poisson(λ·A)` instead of
/// `Binomial(N, A/S)`, making the chain's independence assumption exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoissonModel;

impl DetectionModel for PoissonModel {
    fn name(&self) -> &'static str {
        "poisson"
    }

    fn report_distribution(
        &self,
        params: &SystemParams,
    ) -> Result<ReportDistribution, CoreError> {
        poisson_model::analyze(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn trait_objects_dispatch() {
        let models: [&dyn DetectionModel; 4] = [
            &MsModel::default(),
            &SModel::default(),
            &ExactModel::default(),
            &PoissonModel,
        ];
        for model in models {
            let p = model.detection_probability(&paper()).unwrap();
            assert!(p > 0.5 && p <= 1.0, "{}: {p}", model.name());
            assert!(!model.name().is_empty());
        }
    }

    #[test]
    fn ms_model_matches_free_function() {
        let via_trait = MsModel::default().report_distribution(&paper()).unwrap();
        let direct = ms_approach::analyze(&paper(), &MsOptions::default()).unwrap();
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn exact_model_raises_cap_to_k() {
        let model = ExactModel { saturation_cap: 1 };
        let p = model.detection_probability(&paper()).unwrap();
        let reference = exact::detection_probability(&paper(), paper().k());
        assert!((p - reference).abs() < 1e-12);
    }

    #[test]
    fn t_model_small_point_matches_ms() {
        let params = paper().with_m_periods(4).with_n_sensors(60).with_k(2);
        let opts = MsOptions {
            g: 2,
            gh: 2,
            eps: 0.0,
        };
        let t = TModel {
            opts,
            max_states: 1_000_000,
        }
        .detection_probability(&params)
        .unwrap();
        let ms = MsModel { opts }.detection_probability(&params).unwrap();
        assert!((t - ms).abs() < 1e-9, "t={t} ms={ms}");
    }

    #[test]
    fn t_model_state_budget_error_propagates() {
        let model = TModel {
            opts: MsOptions::default(),
            max_states: 1,
        };
        assert!(model.report_distribution(&paper()).is_err());
    }
}
