//! System parameters shared by all analytical models.

use crate::CoreError;
use gbd_geometry::subarea::ms_periods;

/// The complete parameter set of the paper's system model.
///
/// | Symbol | Field | Paper default |
/// |--------|-------|---------------|
/// | `S`    | `field_width × field_height` | 32 000 m × 32 000 m |
/// | `N`    | `n_sensors` | 60–240 |
/// | `Rs`   | `sensing_range` | 1 000 m |
/// | `V`    | `speed` | 4 or 10 m/s |
/// | `t`    | `period_s` | 60 s |
/// | `Pd`   | `pd` | 0.9 |
/// | `M`    | `m_periods` | 20 |
/// | `k`    | `k` | 5 |
///
/// Construct with [`SystemParams::new`] or start from
/// [`SystemParams::paper_defaults`] and adjust with the `with_*` methods.
///
/// # Example
///
/// ```
/// use gbd_core::params::SystemParams;
///
/// let p = SystemParams::paper_defaults().with_n_sensors(120).with_speed(4.0);
/// assert_eq!(p.n_sensors(), 120);
/// assert_eq!(p.ms(), 9); // ceil(2*1000 / (4*60))
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemParams {
    field_width: f64,
    field_height: f64,
    n_sensors: usize,
    sensing_range: f64,
    speed: f64,
    period_s: f64,
    pd: f64,
    m_periods: usize,
    k: usize,
}

impl SystemParams {
    /// The evaluation settings of the paper's §4 ("suggested by researchers
    /// at the Office of Naval Research"): 32 km × 32 km field, `Rs` = 1 km,
    /// `t` = 1 min, `Pd` = 0.9, `M` = 20, `k` = 5, `V` = 10 m/s, `N` = 240.
    pub fn paper_defaults() -> Self {
        SystemParams {
            field_width: 32_000.0,
            field_height: 32_000.0,
            n_sensors: 240,
            sensing_range: 1_000.0,
            speed: 10.0,
            period_s: 60.0,
            pd: 0.9,
            m_periods: 20,
            k: 5,
        }
    }

    /// Creates a fully validated parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if any dimension, range,
    /// speed or period is not finite and positive, `pd` is outside
    /// `[0, 1]`, `m_periods == 0`, or `k == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        field_width: f64,
        field_height: f64,
        n_sensors: usize,
        sensing_range: f64,
        speed: f64,
        period_s: f64,
        pd: f64,
        m_periods: usize,
        k: usize,
    ) -> Result<Self, CoreError> {
        fn pos(name: &'static str, v: f64) -> Result<(), CoreError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(CoreError::InvalidParameter {
                    name,
                    constraint: "must be finite and positive",
                });
            }
            Ok(())
        }
        pos("field_width", field_width)?;
        pos("field_height", field_height)?;
        pos("sensing_range", sensing_range)?;
        pos("speed", speed)?;
        pos("period_s", period_s)?;
        if !(0.0..=1.0).contains(&pd) || !pd.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "pd",
                constraint: "must be in [0, 1]",
            });
        }
        if m_periods == 0 {
            return Err(CoreError::InvalidParameter {
                name: "m_periods",
                constraint: "must be at least 1",
            });
        }
        if k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                constraint: "must be at least 1",
            });
        }
        Ok(SystemParams {
            field_width,
            field_height,
            n_sensors,
            sensing_range,
            speed,
            period_s,
            pd,
            m_periods,
            k,
        })
    }

    /// Field width in meters.
    pub fn field_width(&self) -> f64 {
        self.field_width
    }

    /// Field height in meters.
    pub fn field_height(&self) -> f64 {
        self.field_height
    }

    /// Field area `S` in m².
    pub fn field_area(&self) -> f64 {
        self.field_width * self.field_height
    }

    /// Number of deployed sensors `N`.
    pub fn n_sensors(&self) -> usize {
        self.n_sensors
    }

    /// Sensing range `Rs` in meters.
    pub fn sensing_range(&self) -> f64 {
        self.sensing_range
    }

    /// Target speed `V` in m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Sensing-period length `t` in seconds.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Per-period detection probability `Pd` of a sensor covering the
    /// target.
    pub fn pd(&self) -> f64 {
        self.pd
    }

    /// Number of sensing periods `M` in the group-detection window.
    pub fn m_periods(&self) -> usize {
        self.m_periods
    }

    /// Report threshold `k` of the group-detection rule.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Distance traveled per sensing period, `V·t`.
    pub fn step(&self) -> f64 {
        self.speed * self.period_s
    }

    /// `ms = ceil(2·Rs / (V·t))`: periods needed to traverse a DR diameter.
    pub fn ms(&self) -> usize {
        ms_periods(self.sensing_range, self.step())
    }

    /// Area of one period's Detectable Region, `2·Rs·V·t + π·Rs²`.
    pub fn dr_area(&self) -> f64 {
        2.0 * self.sensing_range * self.step()
            + std::f64::consts::PI * self.sensing_range * self.sensing_range
    }

    /// Area of the Aggregate Region over `M` periods,
    /// `2·M·Rs·V·t + π·Rs²`.
    pub fn aregion_area(&self) -> f64 {
        2.0 * self.m_periods as f64 * self.sensing_range * self.step()
            + std::f64::consts::PI * self.sensing_range * self.sensing_range
    }

    /// Returns a copy with a different sensor count.
    pub fn with_n_sensors(mut self, n: usize) -> Self {
        self.n_sensors = n;
        self
    }

    /// Fallible version of [`SystemParams::with_n_sensors`].
    ///
    /// Never fails today (every `usize` sensor count is a valid model
    /// input, including 0); exists so callers building parameters from
    /// untrusted input can treat every field uniformly.
    pub fn try_with_n_sensors(self, n: usize) -> Result<Self, CoreError> {
        Ok(self.with_n_sensors(n))
    }

    /// Returns a copy with a different target speed, or
    /// [`CoreError::InvalidParameter`] if `speed` is not finite and
    /// positive.
    pub fn try_with_speed(mut self, speed: f64) -> Result<Self, CoreError> {
        if !speed.is_finite() || speed <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "speed",
                constraint: "must be finite and positive",
            });
        }
        self.speed = speed;
        Ok(self)
    }

    /// Returns a copy with a different target speed.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive; see
    /// [`SystemParams::try_with_speed`] for the fallible form.
    pub fn with_speed(self, speed: f64) -> Self {
        self.try_with_speed(speed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns a copy with a different report threshold `k`, or
    /// [`CoreError::InvalidParameter`] if `k == 0`.
    pub fn try_with_k(mut self, k: usize) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidParameter {
                name: "k",
                constraint: "must be at least 1",
            });
        }
        self.k = k;
        Ok(self)
    }

    /// Returns a copy with a different report threshold `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; see [`SystemParams::try_with_k`] for the
    /// fallible form.
    pub fn with_k(self, k: usize) -> Self {
        self.try_with_k(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns a copy with a different window length `M`, or
    /// [`CoreError::InvalidParameter`] if `m == 0`.
    pub fn try_with_m_periods(mut self, m: usize) -> Result<Self, CoreError> {
        if m == 0 {
            return Err(CoreError::InvalidParameter {
                name: "m_periods",
                constraint: "must be at least 1",
            });
        }
        self.m_periods = m;
        Ok(self)
    }

    /// Returns a copy with a different window length `M`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`; see [`SystemParams::try_with_m_periods`] for the
    /// fallible form.
    pub fn with_m_periods(self, m: usize) -> Self {
        self.try_with_m_periods(m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns a copy with a different per-period detection probability, or
    /// [`CoreError::InvalidParameter`] if `pd` is outside `[0, 1]`.
    pub fn try_with_pd(mut self, pd: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&pd) || !pd.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "pd",
                constraint: "must be in [0, 1]",
            });
        }
        self.pd = pd;
        Ok(self)
    }

    /// Returns a copy with a different per-period detection probability.
    ///
    /// # Panics
    ///
    /// Panics if `pd` is outside `[0, 1]`; see
    /// [`SystemParams::try_with_pd`] for the fallible form.
    pub fn with_pd(self, pd: f64) -> Self {
        self.try_with_pd(pd).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns a copy with a different sensing range, or
    /// [`CoreError::InvalidParameter`] if `rs` is not finite and positive.
    pub fn try_with_sensing_range(mut self, rs: f64) -> Result<Self, CoreError> {
        if !rs.is_finite() || rs <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "sensing_range",
                constraint: "must be finite and positive",
            });
        }
        self.sensing_range = rs;
        Ok(self)
    }

    /// Returns a copy with a different sensing range.
    ///
    /// # Panics
    ///
    /// Panics if `rs` is not finite and positive; see
    /// [`SystemParams::try_with_sensing_range`] for the fallible form.
    pub fn with_sensing_range(self, rs: f64) -> Self {
        self.try_with_sensing_range(rs)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Default for SystemParams {
    /// Same as [`SystemParams::paper_defaults`].
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_derived_quantities() {
        let p = SystemParams::paper_defaults();
        assert_eq!(p.field_area(), 32_000.0 * 32_000.0);
        assert_eq!(p.step(), 600.0);
        assert_eq!(p.ms(), 4);
        let dr = 2.0 * 1000.0 * 600.0 + std::f64::consts::PI * 1e6;
        assert!((p.dr_area() - dr).abs() < 1e-6);
        let ar = 2.0 * 20.0 * 1000.0 * 600.0 + std::f64::consts::PI * 1e6;
        assert!((p.aregion_area() - ar).abs() < 1e-6);
    }

    #[test]
    fn slow_target_ms() {
        let p = SystemParams::paper_defaults().with_speed(4.0);
        assert_eq!(p.ms(), 9);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let ok = SystemParams::new(1.0, 1.0, 1, 1.0, 1.0, 1.0, 0.5, 1, 1);
        assert!(ok.is_ok());
        assert!(SystemParams::new(0.0, 1.0, 1, 1.0, 1.0, 1.0, 0.5, 1, 1).is_err());
        assert!(SystemParams::new(1.0, 1.0, 1, 1.0, 1.0, 1.0, 1.5, 1, 1).is_err());
        assert!(SystemParams::new(1.0, 1.0, 1, 1.0, 1.0, 1.0, 0.5, 0, 1).is_err());
        assert!(SystemParams::new(1.0, 1.0, 1, 1.0, 1.0, 1.0, 0.5, 1, 0).is_err());
        assert!(SystemParams::new(1.0, 1.0, 1, -2.0, 1.0, 1.0, 0.5, 1, 1).is_err());
    }

    #[test]
    fn with_methods_update_fields() {
        let p = SystemParams::paper_defaults()
            .with_n_sensors(60)
            .with_speed(4.0)
            .with_k(3)
            .with_m_periods(10)
            .with_pd(0.8)
            .with_sensing_range(500.0);
        assert_eq!(p.n_sensors(), 60);
        assert_eq!(p.speed(), 4.0);
        assert_eq!(p.k(), 3);
        assert_eq!(p.m_periods(), 10);
        assert_eq!(p.pd(), 0.8);
        assert_eq!(p.sensing_range(), 500.0);
    }

    #[test]
    #[should_panic(expected = "must be at least 1")]
    fn with_k_zero_panics() {
        SystemParams::paper_defaults().with_k(0);
    }

    #[test]
    fn try_with_methods_validate() {
        let p = SystemParams::paper_defaults();
        assert_eq!(p.try_with_speed(4.0).unwrap().speed(), 4.0);
        assert!(p.try_with_speed(0.0).is_err());
        assert!(p.try_with_speed(f64::NAN).is_err());
        assert_eq!(p.try_with_k(3).unwrap().k(), 3);
        assert!(p.try_with_k(0).is_err());
        assert_eq!(p.try_with_m_periods(7).unwrap().m_periods(), 7);
        assert!(p.try_with_m_periods(0).is_err());
        assert_eq!(p.try_with_pd(0.5).unwrap().pd(), 0.5);
        assert!(p.try_with_pd(1.5).is_err());
        assert_eq!(
            p.try_with_sensing_range(500.0).unwrap().sensing_range(),
            500.0
        );
        assert!(p.try_with_sensing_range(-1.0).is_err());
        assert_eq!(p.try_with_n_sensors(60).unwrap().n_sensors(), 60);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(SystemParams::default(), SystemParams::paper_defaults());
    }
}
