//! Analytical false-alarm model and the lower bound of `k` — the paper's
//! first item of future work, implemented.
//!
//! §6: "we plan to study how to obtain the exact lower bound of `k` based
//! on a specified false alarm model. This exact lower bound can provide
//! statistical guarantee that no possible sequencing of false alarms
//! result in a system level false alarm."
//!
//! Under the standard node-level noise model (each sensor misfires
//! independently with probability `pf` per sensing period), the number of
//! noise reports in an `M`-period window is `Binomial(N·M, pf)`. A
//! *count-based* detector alarms when that count reaches `k`, so
//!
//! `P_fa(k) = P[Binomial(N·M, pf) >= k]`
//!
//! and the smallest `k` with `P_fa(k) <= ε` is the sought bound. Any
//! track-consistency filter only discards noise reports, so the bound is
//! conservative for the full group detector: the guarantee carries over.
//! (The simulation side of this claim is measured by
//! `gbd-sim::false_alarm` and the `false_alarm_study` experiment.)

use crate::params::SystemParams;
use crate::CoreError;
use gbd_stats::binomial::Binomial;

/// Node-level false alarm model: independent misfire probability per
/// sensor per sensing period.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FalseAlarmModel {
    /// Per-sensor, per-period false alarm probability.
    pub pf: f64,
}

impl FalseAlarmModel {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `pf` is outside `[0, 1]`.
    pub fn new(pf: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&pf) || !pf.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "pf",
                constraint: "must be in [0, 1]",
            });
        }
        Ok(FalseAlarmModel { pf })
    }

    /// Distribution of noise reports in one `M`-period window:
    /// `Binomial(N·M, pf)`.
    pub fn window_noise(&self, params: &SystemParams) -> Binomial {
        Binomial::new((params.n_sensors() * params.m_periods()) as u64, self.pf)
            .expect("validated pf")
    }

    /// System-level false alarm probability of a count-based detector with
    /// threshold `k` (an upper bound for any track-filtering detector).
    pub fn system_false_alarm_probability(&self, params: &SystemParams, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        self.window_noise(params).sf(k as u64 - 1)
    }

    /// Expected number of noise reports per window, `N·M·pf`.
    pub fn expected_noise_reports(&self, params: &SystemParams) -> f64 {
        (params.n_sensors() * params.m_periods()) as f64 * self.pf
    }
}

/// The paper's future-work bound: the smallest `k` whose count-based
/// system false alarm probability is at most `epsilon`.
///
/// Returns `None` if even `k = N·M + 1` (more reports than sensor-periods
/// exist — impossible) would be needed, which only happens for
/// `epsilon = 0` with `pf > 0`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `epsilon` is not in
/// `(0, 1]`.
pub fn required_k(
    params: &SystemParams,
    model: &FalseAlarmModel,
    epsilon: f64,
) -> Result<usize, CoreError> {
    if !(epsilon > 0.0 && epsilon <= 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "epsilon",
            constraint: "must be in (0, 1]",
        });
    }
    let max_k = params.n_sensors() * params.m_periods() + 1;
    for k in 1..=max_k {
        if model.system_false_alarm_probability(params, k) <= epsilon {
            return Ok(k);
        }
    }
    Ok(max_k)
}

/// The detection/false-alarm operating point at a given `k`: the ROC-style
/// pair the `false_alarm_study` experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Threshold `k`.
    pub k: usize,
    /// Detection probability of a real target (M-S-approach, normalized).
    pub p_detect: f64,
    /// Count-based system false alarm probability (upper bound for the
    /// filtered detector).
    pub p_false_alarm: f64,
}

/// Sweeps `k = 1 ..= k_max` and returns the operating curve.
///
/// # Errors
///
/// Propagates analysis errors from
/// [`crate::ms_approach::analyze`].
pub fn operating_curve(
    params: &SystemParams,
    model: &FalseAlarmModel,
    k_max: usize,
    opts: &crate::ms_approach::MsOptions,
) -> Result<Vec<OperatingPoint>, CoreError> {
    let analysis = crate::ms_approach::analyze(params, opts)?;
    Ok((1..=k_max)
        .map(|k| OperatingPoint {
            k,
            p_detect: analysis.detection_probability(k),
            p_false_alarm: model.system_false_alarm_probability(params, k),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms_approach::MsOptions;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn model_validation() {
        assert!(FalseAlarmModel::new(-0.1).is_err());
        assert!(FalseAlarmModel::new(1.1).is_err());
        assert!(FalseAlarmModel::new(0.001).is_ok());
    }

    #[test]
    fn window_noise_mean() {
        let m = FalseAlarmModel::new(0.001).unwrap();
        // 240 sensors x 20 periods x 0.001 = 4.8 expected noise reports.
        assert!((m.expected_noise_reports(&paper()) - 4.8).abs() < 1e-12);
        assert!((m.window_noise(&paper()).mean() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn false_alarm_probability_decreasing_in_k() {
        let m = FalseAlarmModel::new(0.001).unwrap();
        let p = paper();
        let mut prev = 1.0;
        for k in 1..=20 {
            let pf = m.system_false_alarm_probability(&p, k);
            assert!(pf <= prev + 1e-12);
            prev = pf;
        }
        assert_eq!(m.system_false_alarm_probability(&p, 0), 1.0);
    }

    #[test]
    fn required_k_guarantees_epsilon() {
        let p = paper();
        let m = FalseAlarmModel::new(0.001).unwrap();
        for eps in [0.1, 0.01, 0.001] {
            let k = required_k(&p, &m, eps).unwrap();
            assert!(m.system_false_alarm_probability(&p, k) <= eps);
            if k > 1 {
                assert!(m.system_false_alarm_probability(&p, k - 1) > eps);
            }
        }
    }

    #[test]
    fn paper_k5_is_justified_for_low_noise() {
        // With pf = 1e-4 (a decent sensor), the paper's k = 5 bounds the
        // count-based window false alarm rate below 1%.
        let p = paper();
        let m = FalseAlarmModel::new(1e-4).unwrap();
        let k = required_k(&p, &m, 0.01).unwrap();
        assert!(k <= 5, "k={k}");
    }

    #[test]
    fn noisier_sensors_need_larger_k() {
        let p = paper();
        let quiet = required_k(&p, &FalseAlarmModel::new(1e-4).unwrap(), 0.01).unwrap();
        let noisy = required_k(&p, &FalseAlarmModel::new(2e-3).unwrap(), 0.01).unwrap();
        assert!(noisy > quiet, "{noisy} vs {quiet}");
    }

    #[test]
    fn zero_noise_needs_k_one() {
        let p = paper();
        let m = FalseAlarmModel::new(0.0).unwrap();
        assert_eq!(required_k(&p, &m, 0.001).unwrap(), 1);
    }

    #[test]
    fn operating_curve_trades_detection_for_false_alarms() {
        let p = paper().with_n_sensors(150);
        let m = FalseAlarmModel::new(0.001).unwrap();
        let curve = operating_curve(&p, &m, 10, &MsOptions::default()).unwrap();
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1].p_detect <= w[0].p_detect + 1e-12);
            assert!(w[1].p_false_alarm <= w[0].p_false_alarm + 1e-12);
        }
    }

    #[test]
    fn bad_epsilon_rejected() {
        let m = FalseAlarmModel::new(0.001).unwrap();
        assert!(required_k(&paper(), &m, 0.0).is_err());
        assert!(required_k(&paper(), &m, 1.5).is_err());
    }
}
