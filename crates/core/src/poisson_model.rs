//! Poisson-field approximation of the M-S-approach.
//!
//! The paper models the deployment as exactly `N` uniform sensors, making
//! per-region sensor counts `Binomial(N, A/S)`. The standard alternative
//! in coverage analysis is a spatial **Poisson point process** of
//! intensity `λ = N/S`, under which per-region counts are
//! `Poisson(λ·A)` and — unlike the binomial model — counts in disjoint
//! regions are *exactly* independent, so the M-S chain's independence
//! assumption becomes exact rather than approximate.
//!
//! This module provides the Poisson variant of the per-stage report
//! distribution and the assembled analysis, used by the
//! `ablation_poisson` experiment to quantify when the (simpler, slightly
//! more tractable) Poisson model is an adequate stand-in for the paper's
//! binomial one. For the paper's sparse regimes the two agree to well
//! under 1 %.

use crate::ms_approach::AnalysisResult;
use crate::params::SystemParams;
use crate::report_dist::per_sensor_distribution;
use crate::CoreError;
use gbd_geometry::subarea::SubareaTable;
use gbd_markov::counting::CountingChain;
use gbd_stats::discrete::DiscreteDist;
use gbd_stats::poisson::Poisson;

/// Mass below which the Poisson arrival tail is truncated (the retained
/// mass is reported through [`AnalysisResult::retained_mass`]).
const TAIL_EPS: f64 = 1e-12;

/// Report distribution of one stage under a Poisson field of intensity
/// `n_sensors / field_area`: a compound Poisson of the per-sensor mixture.
///
/// # Panics
///
/// Panics if inputs are invalid (see
/// [`per_sensor_distribution`]).
pub fn stage_distribution_poisson(
    areas: &[f64],
    field_area: f64,
    n_sensors: usize,
    pd: f64,
) -> DiscreteDist {
    let region_area: f64 = areas.iter().sum();
    if region_area <= 0.0 {
        return DiscreteDist::point_mass(0);
    }
    let lambda = n_sensors as f64 * region_area / field_area;
    let arrivals = Poisson::new(lambda).expect("non-negative rate");
    let q = per_sensor_distribution(areas, pd);
    // Truncate arrivals where the remaining tail is negligible.
    let mut cap = 0usize;
    while arrivals.sf(cap as u64) > TAIL_EPS && cap < 10 * (lambda.ceil() as usize + 10) {
        cap += 1;
    }
    let mut acc = vec![0.0; cap * q.support_max() + 1];
    let mut q_n = DiscreteDist::point_mass(0);
    for n in 0..=cap {
        let w = arrivals.pmf(n as u64);
        if w > 0.0 {
            for (m, &p) in q_n.as_slice().iter().enumerate() {
                acc[m] += w * p;
            }
        }
        if n < cap {
            q_n = q_n.convolve(&q);
        }
    }
    DiscreteDist::new(acc).expect("compound Poisson is sub-stochastic")
}

/// Runs the M-S-approach under the Poisson-field model (no `g`/`gh` caps
/// needed: the compound Poisson is truncated only at negligible mass).
///
/// # Errors
///
/// Currently infallible for valid [`SystemParams`]; returns `Result` for
/// signature symmetry with [`crate::ms_approach::analyze`].
pub fn analyze(params: &SystemParams) -> Result<AnalysisResult, CoreError> {
    let m = params.m_periods();
    let table = SubareaTable::constant_speed(params.sensing_range(), params.step(), m);
    let mut stage_dists = Vec::with_capacity(m);
    let mut support_cap = 0usize;
    for l in 1..=m {
        let mut areas = table.subareas(l);
        while areas.len() > 1 && *areas.last().unwrap() == 0.0 {
            areas.pop();
        }
        let dist = stage_distribution_poisson(
            &areas,
            params.field_area(),
            params.n_sensors(),
            params.pd(),
        );
        support_cap += dist.support_max();
        stage_dists.push(dist);
    }
    support_cap = support_cap.max(1);
    let mut chain = CountingChain::new(support_cap);
    let mut retained = 1.0;
    for dist in &stage_dists {
        retained *= dist.total_mass();
        chain.step(dist);
    }
    Ok(AnalysisResult::new(chain.into_distribution(), retained))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms_approach::{self, MsOptions};

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn stage_poisson_close_to_binomial_in_sparse_regime() {
        use crate::report_dist::stage_distribution;
        let areas = [900.0, 600.0, 300.0];
        let field = 1_000_000.0;
        let poisson = stage_distribution_poisson(&areas, field, 240, 0.9);
        let binomial = stage_distribution(&areas, field, 240, 0.9, 240);
        // Poisson(λ) vs Binomial(N, λ/N) differ at O(λ²/N) ≈ 1e-3 here.
        assert!(poisson.max_abs_diff(&binomial) < 1e-3);
    }

    #[test]
    fn poisson_analysis_close_to_binomial_analysis() {
        for n in [60usize, 240] {
            for v in [4.0, 10.0] {
                let params = paper().with_n_sensors(n).with_speed(v);
                let poisson = analyze(&params).unwrap().detection_probability(5);
                let binomial = ms_approach::analyze(
                    &params,
                    &MsOptions {
                        g: 8,
                        gh: 8,
                        eps: 0.0,
                    },
                )
                .unwrap()
                .detection_probability(5);
                assert!(
                    (poisson - binomial).abs() < 0.01,
                    "N={n} V={v}: poisson {poisson:.4} vs binomial {binomial:.4}"
                );
            }
        }
    }

    #[test]
    fn poisson_retains_essentially_all_mass() {
        let r = analyze(&paper()).unwrap();
        assert!(r.retained_mass() > 1.0 - 1e-6);
        // Hence normalized and raw tails coincide.
        assert!(
            (r.detection_probability(5) - r.detection_probability_unnormalized(5)).abs() < 1e-6
        );
    }

    #[test]
    fn poisson_monotone_in_n() {
        let mut prev = 0.0;
        for n in [60usize, 120, 180, 240] {
            let p = analyze(&paper().with_n_sensors(n))
                .unwrap()
                .detection_probability(5);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn empty_stage_is_point_mass() {
        let d = stage_distribution_poisson(&[0.0], 1e6, 100, 0.9);
        assert_eq!(d.pmf(0), 1.0);
    }
}
