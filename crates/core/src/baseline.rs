//! Seed-faithful baselines for the hot analytical path.
//!
//! These functions preserve the algorithm shape the repository had before
//! the flat-kernel rewrite: uncached `ln n!` evaluation, a fresh
//! allocation per convolution, per-stage recomputation (no stage dedup),
//! and the allocating counting-chain step. They exist for two reasons:
//!
//! * **oracle** — the optimized path promises to be *bit-identical* to
//!   this one for `eps = 0`; the property tests at the bottom of this
//!   module (and the unit tests across `gbd-stats`/`gbd-markov`) pin that
//!   promise down against randomized [`SystemParams`];
//! * **honest "before" timings** — `BENCH_pr4.json` reports a
//!   baseline → optimized trajectory, and the baseline leg runs this
//!   module rather than a re-measurement of old commits.
//!
//! Nothing here is reachable from the production call graph; the engine,
//! server, and CLI all use [`crate::ms_approach`].

use crate::budget::ComputeBudget;
use crate::ms_approach::{AnalysisResult, MsOptions, StageInput};
use crate::params::SystemParams;
use crate::CoreError;
use gbd_markov::counting::CountingChain;
use gbd_stats::discrete::DiscreteDist;
use gbd_stats::gamma::ln_factorial_uncached;

/// `ln C(n, k)` evaluated without the memo table — the arithmetic is the
/// expression [`gbd_stats::gamma::ln_binomial_coef`] memoizes, so the two
/// agree bit for bit.
fn ln_binomial_coef_uncached(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial_uncached(n) - ln_factorial_uncached(k) - ln_factorial_uncached(n - k)
}

/// `Binomial::pmf` with uncached log-factorials: same branch structure,
/// same log-domain expression.
fn pmf_uncached(n: u64, p: f64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_pmf =
        ln_binomial_coef_uncached(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln_pmf.exp()
}

/// `Binomial::cdf` with uncached pmf terms: smaller-tail branch and
/// ascending summation order preserved.
fn cdf_uncached(n: u64, p: f64, k: u64) -> f64 {
    if k >= n {
        return 1.0;
    }
    let mean = n as f64 * p;
    if (k as f64) < mean {
        (0..=k).map(|i| pmf_uncached(n, p, i)).sum::<f64>().min(1.0)
    } else {
        let sf = ((k + 1)..=n)
            .map(|i| pmf_uncached(n, p, i))
            .sum::<f64>()
            .min(1.0);
        (1.0 - sf).clamp(0.0, 1.0)
    }
}

/// Seed [`stage_accuracy`](crate::report_dist::stage_accuracy): the full
/// placement tail is re-summed per call, term by term.
pub fn stage_accuracy_baseline(
    region_area: f64,
    field_area: f64,
    n_sensors: usize,
    cap_sensors: usize,
) -> f64 {
    assert!(field_area > 0.0, "field area must be positive");
    assert!(
        (0.0..=field_area).contains(&region_area),
        "region area must lie in [0, field area]"
    );
    cdf_uncached(
        n_sensors as u64,
        region_area / field_area,
        cap_sensors as u64,
    )
}

/// Seed [`per_sensor_distribution`](crate::report_dist::per_sensor_distribution)
/// with uncached pmf terms.
fn per_sensor_distribution_baseline(areas: &[f64], pd: f64) -> DiscreteDist {
    assert!((0.0..=1.0).contains(&pd), "pd must be in [0, 1]");
    assert!(
        areas.iter().all(|&a| a >= 0.0 && a.is_finite()),
        "areas must be non-negative"
    );
    let total: f64 = areas.iter().sum();
    if total <= 0.0 {
        return DiscreteDist::point_mass(0);
    }
    let max_cov = areas.len();
    let mut pmf = vec![0.0; max_cov + 1];
    for (idx, &area) in areas.iter().enumerate() {
        if area == 0.0 {
            continue;
        }
        let periods = idx + 1;
        let w = area / total;
        for (m, slot) in pmf.iter_mut().enumerate().take(periods + 1) {
            *slot += w * pmf_uncached(periods as u64, pd, m as u64);
        }
    }
    DiscreteDist::new(pmf).expect("mixture of binomials is a valid pmf")
}

/// Seed [`stage_distribution`](crate::report_dist::stage_distribution):
/// every rung of the convolution ladder allocates a fresh vector.
pub fn stage_distribution_baseline(
    areas: &[f64],
    field_area: f64,
    n_sensors: usize,
    pd: f64,
    cap_sensors: usize,
) -> DiscreteDist {
    let region_area: f64 = areas.iter().sum();
    if region_area <= 0.0 {
        return DiscreteDist::point_mass(0);
    }
    let placement_p = region_area / field_area;
    let q = per_sensor_distribution_baseline(areas, pd);
    let cap = cap_sensors.min(n_sensors);
    let mut acc = vec![0.0; cap * q.support_max() + 1];
    let mut q_n = DiscreteDist::point_mass(0); // q^{*0}
    for n in 0..=cap {
        let w = pmf_uncached(n_sensors as u64, placement_p, n as u64);
        if w > 0.0 {
            for (m, &p) in q_n.as_slice().iter().enumerate() {
                acc[m] += w * p;
            }
        }
        if n < cap {
            q_n = q_n.convolve(&q);
        }
    }
    DiscreteDist::new(acc).expect("binomial mixture of convolutions is sub-stochastic")
}

/// Seed [`analyze_steps`](crate::ms_approach::analyze_steps): one
/// allocating stage computation per period (every Body stage recomputed)
/// followed by the allocating counting-chain assembly. Ignores
/// [`MsOptions::eps`] — the seed had no tail trimming — so the result is
/// the exact assembly the optimized path's `truncation_error` bounds
/// against.
///
/// # Errors
///
/// Same validation as [`analyze_steps`](crate::ms_approach::analyze_steps).
pub fn analyze_steps_baseline(
    params: &SystemParams,
    steps: &[f64],
    opts: &MsOptions,
) -> Result<AnalysisResult, CoreError> {
    let exact = MsOptions { eps: 0.0, ..*opts };
    let inputs = crate::ms_approach::stage_inputs(
        params.sensing_range(),
        steps,
        params.n_sensors(),
        &exact,
    )?;
    if inputs.len() != params.m_periods() {
        return Err(CoreError::InvalidParameter {
            name: "steps",
            constraint: "length must equal m_periods",
        });
    }
    let field_area = params.field_area();
    let n = params.n_sensors();
    let pd = params.pd();
    let support_cap: usize = inputs.iter().map(StageInput::support_bound).sum();
    let budget = ComputeBudget::unlimited();
    let mut chain = CountingChain::new(support_cap.max(1));
    let mut predicted_accuracy = 1.0;
    for stage in &inputs {
        budget.checkpoint()?;
        let dist = stage_distribution_baseline(&stage.areas, field_area, n, pd, stage.cap);
        let accuracy =
            stage_accuracy_baseline(stage.areas.iter().sum(), field_area, n, stage.cap);
        predicted_accuracy *= accuracy;
        chain.step(&dist);
        budget.complete_stage();
    }
    Ok(AnalysisResult::new(
        chain.into_distribution(),
        predicted_accuracy,
    ))
}

/// Convenience wrapper: [`analyze_steps_baseline`] over constant steps.
///
/// # Errors
///
/// Same contract as [`analyze_steps_baseline`].
pub fn analyze_baseline(
    params: &SystemParams,
    opts: &MsOptions,
) -> Result<AnalysisResult, CoreError> {
    let steps = vec![params.step(); params.m_periods()];
    analyze_steps_baseline(params, &steps, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms_approach::analyze_steps;
    use crate::report_dist::{stage_accuracy, stage_distribution};

    fn assert_bitwise(a: &DiscreteDist, b: &DiscreteDist, what: &str) {
        assert_eq!(a.as_slice().len(), b.as_slice().len(), "{what}: support");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn baseline_stage_kernels_match_optimized_bitwise() {
        let areas = [900.0, 600.0, 300.0];
        let field = 1_000_000.0;
        for cap in [0usize, 1, 3, 5] {
            let a = stage_distribution_baseline(&areas, field, 240, 0.9, cap);
            let b = stage_distribution(&areas, field, 240, 0.9, cap);
            assert_bitwise(&a, &b, "stage dist");
            let xa = stage_accuracy_baseline(1800.0, field, 240, cap);
            let xb = stage_accuracy(1800.0, field, 240, cap);
            assert_eq!(xa.to_bits(), xb.to_bits(), "cap={cap}");
        }
    }

    #[test]
    fn baseline_full_run_matches_optimized_bitwise_at_paper_point() {
        let p = SystemParams::paper_defaults();
        let steps = vec![p.step(); p.m_periods()];
        let opts = MsOptions::default();
        let seed = analyze_steps_baseline(&p, &steps, &opts).unwrap();
        let fast = analyze_steps(&p, &steps, &opts).unwrap();
        assert_bitwise(seed.raw_distribution(), fast.raw_distribution(), "raw");
        assert_eq!(
            seed.predicted_accuracy().to_bits(),
            fast.predicted_accuracy().to_bits()
        );
        assert_eq!(fast.truncation_error(), 0.0);
    }

    #[test]
    fn baseline_ignores_eps() {
        let p = SystemParams::paper_defaults().with_m_periods(5).with_k(2);
        let steps = vec![p.step(); p.m_periods()];
        let with_eps = MsOptions {
            eps: 1e-6,
            ..MsOptions::default()
        };
        let a = analyze_steps_baseline(&p, &steps, &MsOptions::default()).unwrap();
        let b = analyze_steps_baseline(&p, &steps, &with_eps).unwrap();
        assert_bitwise(a.raw_distribution(), b.raw_distribution(), "eps ignored");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ms_approach::analyze_steps;
    use proptest::prelude::*;

    /// Randomized paper-plausible system parameters plus a per-period step
    /// profile (constant or varying) — the oracle domain for the
    /// bit-identity property.
    fn arb_case() -> impl Strategy<Value = (SystemParams, Vec<f64>, MsOptions)> {
        (
            (
                10usize..300,     // n_sensors
                1usize..12,       // m_periods
                0.0f64..=1.0,     // pd
                200.0f64..2000.0, // sensing range
            ),
            (
                1usize..5, // g
                1usize..5, // gh
                proptest::collection::vec(0.0f64..2000.0, 12..13),
                0usize..2, // constant vs varying speed profile
            ),
        )
            .prop_map(|((n, m, pd, rs), (g, gh, raw_steps, constant))| {
                let params = SystemParams::paper_defaults()
                    .with_n_sensors(n)
                    .with_m_periods(m)
                    .with_k(1)
                    .with_pd(pd)
                    .with_sensing_range(rs);
                let steps = if constant == 0 {
                    vec![params.step(); m]
                } else {
                    raw_steps[..m].to_vec()
                };
                (params, steps, MsOptions { g, gh, eps: 0.0 })
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite: the flat/scratch path is bit-identical to the seed's
        /// nested allocating implementation for `eps = 0`, across
        /// randomized parameters and step profiles.
        #[test]
        fn optimized_path_is_bit_identical_to_seed_baseline(
            (params, steps, opts) in arb_case(),
        ) {
            let seed = analyze_steps_baseline(&params, &steps, &opts).unwrap();
            let fast = analyze_steps(&params, &steps, &opts).unwrap();
            let a = seed.raw_distribution().as_slice();
            let b = fast.raw_distribution().as_slice();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            prop_assert_eq!(
                seed.predicted_accuracy().to_bits(),
                fast.predicted_accuracy().to_bits()
            );
            prop_assert_eq!(fast.truncation_error(), 0.0);
        }

        /// Satellite: with `eps > 0`, the deviation from the exact assembly
        /// never exceeds the reported `truncation_error` (up to fp slop),
        /// and the per-run error stays within `eps` per stage application.
        #[test]
        fn eps_error_never_exceeds_reported_bound(
            (params, steps, opts) in arb_case(),
            eps in 1e-12f64..1e-4,
        ) {
            let trimmed_opts = MsOptions { eps, ..opts };
            let exact = analyze_steps_baseline(&params, &steps, &opts).unwrap();
            let trimmed = analyze_steps(&params, &steps, &trimmed_opts).unwrap();
            let err = trimmed.truncation_error();
            prop_assert!(err >= 0.0);
            // Each stage application may drop at most eps of mass.
            prop_assert!(err <= eps * steps.len() as f64 + 1e-15);
            // The dropped mass bounds the final distribution's deviation,
            // in total mass and pointwise (convolution against
            // sub-stochastic stage pmfs is an L1 contraction).
            let lost = exact.retained_mass() - trimmed.retained_mass();
            prop_assert!(lost >= -1e-12);
            prop_assert!(lost <= err + 1e-12);
            let diff = exact.raw_distribution().max_abs_diff(trimmed.raw_distribution());
            prop_assert!(diff <= err + 1e-12, "diff {} err {}", diff, err);
        }
    }
}
