//! The exact reference model (no sensor-count truncation).
//!
//! Because sensors are placed independently and uniformly, the total number
//! of reports over `M` periods is the sum of `N` i.i.d. per-sensor counts,
//! where a single sensor's count is the mixture
//!
//! `q_full(m) = (1 − A/S)·δ₀(m) + Σ_i (Region(i)/S)·Binom(m; i, Pd)`
//!
//! over the whole Aggregate Region. The `N`-fold convolution of `q_full`
//! is therefore the *exact* distribution the paper's S- and M-S-approaches
//! approximate — it is the `G → N` limit of the S-approach. It exists in
//! this reproduction (the paper does not exploit the factorization) to
//! quantify the truncation and normalization errors of Figures 9(a)/9(b).

use crate::params::SystemParams;
use crate::s_approach::region_sizes;
use gbd_geometry::subarea::SubareaTable;
use gbd_stats::binomial::Binomial;
use gbd_stats::discrete::DiscreteDist;

/// The per-sensor full-field report distribution `q_full`.
pub fn per_sensor_full(params: &SystemParams) -> DiscreteDist {
    per_sensor_full_from_regions(&region_sizes(params), params.field_area(), params.pd())
}

/// `q_full` from explicit region sizes (used by the varying-speed path).
///
/// # Panics
///
/// Panics if the regions do not fit in the field or `pd` is invalid.
pub fn per_sensor_full_from_regions(regions: &[f64], field_area: f64, pd: f64) -> DiscreteDist {
    assert!(field_area > 0.0, "field area must be positive");
    assert!((0.0..=1.0).contains(&pd), "pd must be in [0, 1]");
    let total: f64 = regions.iter().sum();
    assert!(total <= field_area, "regions exceed the field");
    let mut pmf = vec![0.0; regions.len() + 1];
    pmf[0] = 1.0 - total / field_area;
    for (idx, &area) in regions.iter().enumerate() {
        if area == 0.0 {
            continue;
        }
        let periods = idx + 1;
        let b = Binomial::new(periods as u64, pd).expect("validated pd");
        for (m, slot) in pmf.iter_mut().enumerate().take(periods + 1) {
            *slot += (area / field_area) * b.pmf(m as u64);
        }
    }
    DiscreteDist::new(pmf).expect("valid mixture")
}

/// Exact distribution of the total report count, saturated at `cap`
/// (states `cap ..` merged). Choose `cap >= k` to read exact tail
/// probabilities at `k`.
pub fn report_distribution(params: &SystemParams, cap: usize) -> DiscreteDist {
    per_sensor_full(params).self_convolve_saturating(params.n_sensors(), cap)
}

/// Exact `P_M[X >= k]` for a constant-speed straight-line target.
///
/// # Example
///
/// ```
/// use gbd_core::params::SystemParams;
/// use gbd_core::exact;
///
/// let p = SystemParams::paper_defaults();
/// let exact = exact::detection_probability(&p, 5);
/// assert!(exact > 0.9 && exact < 1.0);
/// ```
pub fn detection_probability(params: &SystemParams, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    // Long convolution chains accumulate ~1e-13 of floating error; clamp
    // so the result is always a probability.
    report_distribution(params, k).tail_sum(k).clamp(0.0, 1.0)
}

/// Exact `P_M[X >= k]` for explicit per-period step lengths.
///
/// # Panics
///
/// Panics if `steps` length differs from `params.m_periods()`.
pub fn detection_probability_steps(params: &SystemParams, steps: &[f64], k: usize) -> f64 {
    assert_eq!(
        steps.len(),
        params.m_periods(),
        "steps length must equal m_periods"
    );
    if k == 0 {
        return 1.0;
    }
    let table = SubareaTable::from_steps(params.sensing_range(), steps);
    let q =
        per_sensor_full_from_regions(&table.region_sizes(), params.field_area(), params.pd());
    q.self_convolve_saturating(params.n_sensors(), k)
        .tail_sum(k)
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms_approach::{self, MsOptions};
    use crate::s_approach::{self, SOptions};

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn per_sensor_full_is_proper() {
        let q = per_sensor_full(&paper());
        assert!((q.total_mass() - 1.0).abs() < 1e-10);
        // Sparse network: overwhelmingly no report.
        assert!(q.pmf(0) > 0.95);
    }

    #[test]
    fn exact_equals_m1_binomial_when_m_is_1() {
        let p = paper().with_m_periods(1);
        let exact = detection_probability(&p, 1);
        let analytic = crate::single_period::probability_at_least(&p, 1);
        assert!((exact - analytic).abs() < 1e-9, "{exact} vs {analytic}");
    }

    #[test]
    fn ms_approach_converges_to_exact() {
        // Raising g/gh removes the truncation error, but a small residual
        // remains: the M-S chain treats per-NEDR sensor counts as
        // independent binomials, while with a fixed N they are multinomially
        // correlated. At the paper's parameters the residual is ~1e-3 —
        // invisible at Figure 9's scale, and the same approximation the
        // paper's own chain makes.
        let p = paper();
        let exact = detection_probability(&p, 5);
        let mut prev_err = f64::INFINITY;
        for caps in [2usize, 4, 8] {
            let r = ms_approach::analyze(
                &p,
                &MsOptions {
                    g: caps,
                    gh: caps,
                    eps: 0.0,
                },
            )
            .unwrap();
            let err = (r.detection_probability(5) - exact).abs();
            assert!(err <= prev_err + 1e-9, "caps={caps}: {err} > {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 2e-3, "converged error {prev_err}");
    }

    #[test]
    fn s_approach_converges_to_exact() {
        let p = paper();
        let exact = detection_probability(&p, 5);
        let r = s_approach::analyze(&p, &SOptions { cap_sensors: 30 }).unwrap();
        assert!((r.detection_probability(5) - exact).abs() < 1e-6);
    }

    #[test]
    fn unnormalized_truncated_tail_is_a_lower_bound() {
        // Discarding placement configurations can only remove probability
        // mass from every tail: Figure 9(b) sits below the exact curve.
        let p = paper();
        let exact = detection_probability(&p, 5);
        for caps in [1usize, 2, 3, 4] {
            let r = ms_approach::analyze(
                &p,
                &MsOptions {
                    g: caps,
                    gh: caps,
                    eps: 0.0,
                },
            )
            .unwrap();
            assert!(
                r.detection_probability_unnormalized(5) <= exact + 1e-12,
                "caps={caps}"
            );
        }
    }

    #[test]
    fn constant_steps_variant_agrees() {
        let p = paper();
        let a = detection_probability(&p, 5);
        let b = detection_probability_steps(&p, &[p.step(); 20], 5);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn k_zero_is_certain() {
        assert_eq!(detection_probability(&paper(), 0), 1.0);
    }

    #[test]
    fn monotone_in_n_and_v() {
        let p60 = detection_probability(&paper().with_n_sensors(60), 5);
        let p240 = detection_probability(&paper().with_n_sensors(240), 5);
        assert!(p240 > p60);
        let slow = detection_probability(&paper().with_speed(4.0), 5);
        let fast = detection_probability(&paper().with_speed(10.0), 5);
        assert!(fast > slow);
    }
}

/// A class of identical sensors within a heterogeneous fleet.
///
/// The paper assumes all sensors share one sensing range and `Pd`; because
/// the exact model factorizes over sensors, fleets mixing several sensor
/// types (e.g. a few long-range sonars among many short-range ones) are
/// analyzable by convolving per-class contributions.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorClass {
    /// Number of sensors of this class.
    pub count: usize,
    /// Sensing range of this class in meters.
    pub sensing_range: f64,
    /// Per-period detection probability of this class.
    pub pd: f64,
}

/// Exact report-count distribution for a heterogeneous fleet, saturated at
/// `cap`: the independent sum of per-class contributions, each the
/// `count`-fold convolution of that class's per-sensor mixture.
///
/// The target still moves in a straight line with `params`' speed, window
/// and field; `params`' own `n_sensors`, `sensing_range` and `pd` are
/// ignored in favor of `classes`.
///
/// # Panics
///
/// Panics if `classes` is empty or a class has an invalid range or `pd`.
pub fn report_distribution_classes(
    params: &SystemParams,
    classes: &[SensorClass],
    cap: usize,
) -> DiscreteDist {
    assert!(!classes.is_empty(), "need at least one sensor class");
    let mut total = DiscreteDist::point_mass(0);
    for class in classes {
        let table = SubareaTable::constant_speed(
            class.sensing_range,
            params.step(),
            params.m_periods(),
        );
        let q =
            per_sensor_full_from_regions(&table.region_sizes(), params.field_area(), class.pd);
        let class_dist = q.self_convolve_saturating(class.count, cap);
        total = total.convolve_saturating(&class_dist, cap);
    }
    total
}

/// Exact `P_M[X >= k]` for a heterogeneous fleet.
///
/// # Example
///
/// ```
/// use gbd_core::exact::{detection_probability_classes, SensorClass};
/// use gbd_core::params::SystemParams;
///
/// let params = SystemParams::paper_defaults();
/// // 20 long-range sonars plus 200 short-range hydrophones.
/// let classes = [
///     SensorClass { count: 20, sensing_range: 3_000.0, pd: 0.9 },
///     SensorClass { count: 200, sensing_range: 500.0, pd: 0.9 },
/// ];
/// let p = detection_probability_classes(&params, &classes, 5);
/// assert!(p > 0.0 && p < 1.0);
/// ```
pub fn detection_probability_classes(
    params: &SystemParams,
    classes: &[SensorClass],
    k: usize,
) -> f64 {
    if k == 0 {
        return 1.0;
    }
    report_distribution_classes(params, classes, k)
        .tail_sum(k)
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod hetero_tests {
    use super::*;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn single_class_matches_homogeneous_model() {
        let p = paper();
        let classes = [SensorClass {
            count: 240,
            sensing_range: 1000.0,
            pd: 0.9,
        }];
        let hetero = detection_probability_classes(&p, &classes, 5);
        let homo = detection_probability(&p, 5);
        assert!((hetero - homo).abs() < 1e-12, "{hetero} vs {homo}");
    }

    #[test]
    fn split_into_identical_classes_is_invariant() {
        let p = paper();
        let one = [SensorClass {
            count: 240,
            sensing_range: 1000.0,
            pd: 0.9,
        }];
        let two = [
            SensorClass {
                count: 100,
                sensing_range: 1000.0,
                pd: 0.9,
            },
            SensorClass {
                count: 140,
                sensing_range: 1000.0,
                pd: 0.9,
            },
        ];
        let a = detection_probability_classes(&p, &one, 5);
        let b = detection_probability_classes(&p, &two, 5);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn better_class_mix_detects_more() {
        let p = paper();
        let short_only = [SensorClass {
            count: 240,
            sensing_range: 500.0,
            pd: 0.9,
        }];
        let mixed = [
            SensorClass {
                count: 220,
                sensing_range: 500.0,
                pd: 0.9,
            },
            SensorClass {
                count: 20,
                sensing_range: 3000.0,
                pd: 0.9,
            },
        ];
        let a = detection_probability_classes(&p, &short_only, 5);
        let b = detection_probability_classes(&p, &mixed, 5);
        assert!(b > a, "{b} vs {a}");
    }

    #[test]
    fn class_order_does_not_matter() {
        let p = paper();
        let ab = [
            SensorClass {
                count: 100,
                sensing_range: 800.0,
                pd: 0.8,
            },
            SensorClass {
                count: 50,
                sensing_range: 2000.0,
                pd: 0.95,
            },
        ];
        let ba = [ab[1], ab[0]];
        let x = detection_probability_classes(&p, &ab, 5);
        let y = detection_probability_classes(&p, &ba, 5);
        assert!((x - y).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sensor class")]
    fn empty_classes_panics() {
        report_distribution_classes(&paper(), &[], 5);
    }
}
