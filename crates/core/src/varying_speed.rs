//! The §6 future-work extension: targets traveling at varying speeds.
//!
//! The generalized M-S staging in [`crate::ms_approach::analyze_steps`]
//! already accepts arbitrary per-period step lengths; this module adds the
//! speed-sequence plumbing and a conservative band: for a speed known only
//! to lie in `[v_min, v_max]`, the constant-speed analyses at the extremes
//! bracket the detection probability (the ARegion grows monotonically with
//! every step length).

use crate::ms_approach::{analyze_steps, AnalysisResult, MsOptions};
use crate::params::SystemParams;
use crate::CoreError;

/// Converts a per-period speed sequence (m/s) into step lengths (m).
///
/// # Panics
///
/// Panics if any speed is negative or not finite.
pub fn steps_from_speeds(speeds: &[f64], period_s: f64) -> Vec<f64> {
    assert!(period_s > 0.0, "period must be positive");
    speeds
        .iter()
        .map(|&v| {
            assert!(
                v.is_finite() && v >= 0.0,
                "speeds must be finite and non-negative"
            );
            v * period_s
        })
        .collect()
}

/// Runs the M-S-approach for an explicit per-period speed sequence.
///
/// # Errors
///
/// Propagates [`CoreError::InvalidParameter`] from
/// [`analyze_steps`].
///
/// # Example
///
/// ```
/// use gbd_core::ms_approach::MsOptions;
/// use gbd_core::params::SystemParams;
/// use gbd_core::varying_speed::analyze_speeds;
///
/// # fn main() -> Result<(), gbd_core::CoreError> {
/// let params = SystemParams::paper_defaults();
/// // Accelerate mid-window: 4 m/s for 10 periods, then 10 m/s.
/// let speeds: Vec<f64> = (0..20).map(|i| if i < 10 { 4.0 } else { 10.0 }).collect();
/// let r = analyze_speeds(&params, &speeds, &MsOptions::default())?;
/// let p = r.detection_probability(5);
/// assert!(p > 0.7 && p < 0.98); // between the constant-speed extremes
/// # Ok(())
/// # }
/// ```
pub fn analyze_speeds(
    params: &SystemParams,
    speeds: &[f64],
    opts: &MsOptions,
) -> Result<AnalysisResult, CoreError> {
    let steps = steps_from_speeds(speeds, params.period_s());
    analyze_steps(params, &steps, opts)
}

/// Detection-probability band for a target whose (unknown) per-period speed
/// lies in `[v_min, v_max]`: the constant-speed analyses at the two
/// extremes.
///
/// Returns `(lower, upper)` probabilities for threshold `k`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the bounds are invalid.
pub fn detection_probability_band(
    params: &SystemParams,
    v_min: f64,
    v_max: f64,
    k: usize,
    opts: &MsOptions,
) -> Result<(f64, f64), CoreError> {
    if !(v_min.is_finite() && v_max.is_finite() && v_min > 0.0 && v_max >= v_min) {
        return Err(CoreError::InvalidParameter {
            name: "v_min/v_max",
            constraint: "must satisfy 0 < v_min <= v_max",
        });
    }
    let lo = crate::ms_approach::analyze(&params.with_speed(v_min), opts)?;
    let hi = crate::ms_approach::analyze(&params.with_speed(v_max), opts)?;
    Ok((lo.detection_probability(k), hi.detection_probability(k)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn steps_from_speeds_scales_by_period() {
        assert_eq!(steps_from_speeds(&[4.0, 10.0], 60.0), vec![240.0, 600.0]);
    }

    #[test]
    fn constant_speed_sequence_matches_constant_analysis() {
        let p = paper();
        let constant = crate::ms_approach::analyze(&p, &MsOptions::default()).unwrap();
        let via_speeds = analyze_speeds(&p, &[10.0; 20], &MsOptions::default()).unwrap();
        assert!(
            constant
                .raw_distribution()
                .max_abs_diff(via_speeds.raw_distribution())
                < 1e-12
        );
    }

    #[test]
    fn mixed_speeds_fall_inside_band() {
        let p = paper();
        let opts = MsOptions::default();
        // Alternating 4 and 10 m/s.
        let speeds: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 4.0 } else { 10.0 })
            .collect();
        let mixed = analyze_speeds(&p, &speeds, &opts)
            .unwrap()
            .detection_probability(5);
        let (lo, hi) = detection_probability_band(&p, 4.0, 10.0, 5, &opts).unwrap();
        assert!(lo < hi);
        assert!(
            mixed >= lo - 1e-9 && mixed <= hi + 1e-9,
            "mixed={mixed} band=({lo},{hi})"
        );
    }

    #[test]
    fn pausing_target_detected_less_often() {
        let p = paper();
        let opts = MsOptions::default();
        let moving = analyze_speeds(&p, &[10.0; 20], &opts)
            .unwrap()
            .detection_probability(5);
        let mut speeds = vec![10.0; 20];
        for s in speeds.iter_mut().skip(10) {
            *s = 0.0; // target stops halfway
        }
        let pausing = analyze_speeds(&p, &speeds, &opts)
            .unwrap()
            .detection_probability(5);
        assert!(pausing < moving);
    }

    #[test]
    fn band_rejects_bad_bounds() {
        let p = paper();
        assert!(detection_probability_band(&p, 10.0, 4.0, 5, &MsOptions::default()).is_err());
        assert!(detection_probability_band(&p, 0.0, 4.0, 5, &MsOptions::default()).is_err());
    }
}
