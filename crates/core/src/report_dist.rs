//! Per-stage report-count distributions.
//!
//! Every stage of the spatial approaches (the Head NEDR, each Body/Tail
//! NEDR, or the whole Aggregate Region in the S-approach) is described by
//! the sizes of its coverage subareas: `areas[i − 1]` is the size of the
//! region where a sensor covers the target for exactly `i` periods. The
//! stage's *report distribution* is the probability of `m` detection
//! reports being generated from the stage, considering at most
//! `cap_sensors` sensors inside it (the paper's `g`/`gh`/`G` truncation).
//!
//! Two equivalent computations are provided:
//!
//! * [`stage_distribution`] — the fast path. The paper's ordered placement
//!   enumeration factorizes: summing `∏ Region(r_j)/S` over ordered tuples
//!   gives `(A/S)^n`, so the stage distribution is a binomial mixture of
//!   n-fold convolutions of the per-sensor mixture
//!   `q(m) = Σ_i (areas[i]/A)·Binom(m; i, Pd)`;
//! * [`stage_distribution_enumeration`] — the paper-faithful Algorithm 1:
//!   explicit recursion over each considered sensor's (region, report
//!   count) pair. Exponential in `cap_sensors`; kept for fidelity and for
//!   the S-approach runtime experiments.
//!
//! Both are property-tested to agree to 1e-12.

use crate::budget::ComputeBudget;
use crate::CoreError;
use gbd_stats::binomial::{Binomial, PmfTable};
use gbd_stats::discrete::DiscreteDist;

/// How many enumeration leaves are visited between two budget checkpoints
/// in [`stage_distribution_enumeration_budgeted`]. Small enough to cancel
/// an exploding `G` within milliseconds, large enough that the clock read
/// is invisible in the profile.
const ENUMERATION_CHECK_INTERVAL: u64 = 8_192;

/// Per-sensor report distribution for a sensor placed uniformly inside the
/// stage region: `q(m) = Σ_i (areas[i−1]/A) · Binom(m; i, pd)`.
///
/// Returns a point mass at 0 if the region is empty.
///
/// # Panics
///
/// Panics if any area is negative or `pd` is outside `[0, 1]`.
pub fn per_sensor_distribution(areas: &[f64], pd: f64) -> DiscreteDist {
    assert!((0.0..=1.0).contains(&pd), "pd must be in [0, 1]");
    assert!(
        areas.iter().all(|&a| a >= 0.0 && a.is_finite()),
        "areas must be non-negative"
    );
    let total: f64 = areas.iter().sum();
    if total <= 0.0 {
        return DiscreteDist::point_mass(0);
    }
    let max_cov = areas.len();
    let mut pmf = vec![0.0; max_cov + 1];
    for (idx, &area) in areas.iter().enumerate() {
        if area == 0.0 {
            continue;
        }
        let periods = idx + 1;
        let w = area / total;
        let b = Binomial::new(periods as u64, pd).expect("validated pd");
        for (m, slot) in pmf.iter_mut().enumerate().take(periods + 1) {
            *slot += w * b.pmf(m as u64);
        }
    }
    DiscreteDist::new(pmf).expect("mixture of binomials is a valid pmf")
}

/// Truncation accuracy `ξ` of a stage (Eqs (5), (7), (9)): the probability
/// that at most `cap_sensors` of the `N` sensors fall inside the stage
/// region, `Σ_{i≤cap} C(N,i)·(A/S)^i·(1−A/S)^{N−i}`.
///
/// # Panics
///
/// Panics if `field_area <= 0` or `region_area` is negative or exceeds the
/// field area.
pub fn stage_accuracy(
    region_area: f64,
    field_area: f64,
    n_sensors: usize,
    cap_sensors: usize,
) -> f64 {
    assert!(field_area > 0.0, "field area must be positive");
    assert!(
        (0.0..=field_area).contains(&region_area),
        "region area must lie in [0, field area]"
    );
    let b = Binomial::new(n_sensors as u64, region_area / field_area).expect("valid fraction");
    b.cdf(cap_sensors as u64)
}

/// [`stage_accuracy`] through a reusable [`PmfTable`]: bit-identical
/// values, but the placement pmf is evaluated once per `(N, A/S)` pair
/// instead of once per tail term per query. The table is refilled only
/// when the distribution changes, so cap scans
/// ([`required_cap`](crate::accuracy::required_cap)) and per-stage loops
/// amortize the log-domain work.
///
/// # Panics
///
/// Same conditions as [`stage_accuracy`].
pub fn stage_accuracy_with(
    region_area: f64,
    field_area: f64,
    n_sensors: usize,
    cap_sensors: usize,
    table: &mut PmfTable,
) -> f64 {
    assert!(field_area > 0.0, "field area must be positive");
    assert!(
        (0.0..=field_area).contains(&region_area),
        "region area must lie in [0, field area]"
    );
    let p = region_area / field_area;
    if table.n() != n_sensors as u64 || table.p() != p || table.as_slice().is_empty() {
        let b = Binomial::new(n_sensors as u64, p).expect("valid fraction");
        table.fill(&b);
    }
    table.cdf(cap_sensors as u64)
}

/// Report distribution of a stage, truncated at `cap_sensors` sensors —
/// the fast (convolution) path.
///
/// The returned distribution is sub-stochastic: its total mass equals the
/// stage accuracy `ξ` from [`stage_accuracy`].
///
/// # Panics
///
/// Panics on the same conditions as [`per_sensor_distribution`] and
/// [`stage_accuracy`].
pub fn stage_distribution(
    areas: &[f64],
    field_area: f64,
    n_sensors: usize,
    pd: f64,
    cap_sensors: usize,
) -> DiscreteDist {
    let region_area: f64 = areas.iter().sum();
    if region_area <= 0.0 {
        return DiscreteDist::point_mass(0);
    }
    let placement =
        Binomial::new(n_sensors as u64, region_area / field_area).expect("valid fraction");
    let q = per_sensor_distribution(areas, pd);
    let cap = cap_sensors.min(n_sensors);
    let mut acc = vec![0.0; cap * q.support_max() + 1];
    let mut q_n = DiscreteDist::point_mass(0); // q^{*0}
    for n in 0..=cap {
        let w = placement.pmf(n as u64);
        if w > 0.0 {
            for (m, &p) in q_n.as_slice().iter().enumerate() {
                acc[m] += w * p;
            }
        }
        if n < cap {
            q_n = q_n.convolve(&q);
        }
    }
    DiscreteDist::new(acc).expect("binomial mixture of convolutions is sub-stochastic")
}

/// [`stage_distribution`] with reusable scratch buffers and optional
/// tail-mass truncation; returns `(distribution, dropped_mass)`.
///
/// The convolution ladder runs through `qn`/`conv` in place (no
/// intermediate allocations once they are warm), with accumulation order
/// identical to [`stage_distribution`], so with `eps = 0` the result is
/// bit-identical and `dropped_mass == 0.0` exactly. With `eps > 0`, the
/// longest trailing support run carrying at most `eps` total mass is
/// discarded from the returned distribution and reported as
/// `dropped_mass`; the retained entries are untouched, so the truncated
/// distribution differs from the exact one by at most `dropped_mass`
/// pointwise (and in total mass).
///
/// # Panics
///
/// Same conditions as [`stage_distribution`].
// Kernel entry point: the scratch buffers are threaded explicitly so the
// caller owns their lifetime, which is the whole design.
#[allow(clippy::too_many_arguments)]
pub fn stage_distribution_with(
    areas: &[f64],
    field_area: f64,
    n_sensors: usize,
    pd: f64,
    cap_sensors: usize,
    eps: f64,
    qn: &mut DiscreteDist,
    conv: &mut Vec<f64>,
) -> (DiscreteDist, f64) {
    let region_area: f64 = areas.iter().sum();
    if region_area <= 0.0 {
        return (DiscreteDist::point_mass(0), 0.0);
    }
    let placement =
        Binomial::new(n_sensors as u64, region_area / field_area).expect("valid fraction");
    let q = per_sensor_distribution(areas, pd);
    let cap = cap_sensors.min(n_sensors);
    let mut acc = vec![0.0; cap * q.support_max() + 1];
    qn.set_point_mass(0); // q^{*0}
    for n in 0..=cap {
        let w = placement.pmf(n as u64);
        if w > 0.0 {
            for (m, &p) in qn.as_slice().iter().enumerate() {
                acc[m] += w * p;
            }
        }
        if n < cap {
            qn.convolve_in_place(&q, conv);
        }
    }
    let mut out =
        DiscreteDist::new(acc).expect("binomial mixture of convolutions is sub-stochastic");
    let dropped = out.truncate_tail_mass(eps);
    (out, dropped)
}

/// Report distribution of a stage via the paper's Algorithm 1: explicit
/// recursion over ordered sensor placements `(Region(r_1), …, Region(r_n))`
/// and per-sensor report counts.
///
/// Runtime grows as `(Σ_i (i + 1))^{cap_sensors}` — this is the
/// computational-explosion behavior §3.3 describes for the S-approach, kept
/// deliberately unfactored. Use [`stage_distribution`] everywhere except
/// fidelity tests and the runtime experiments.
///
/// # Panics
///
/// Same conditions as [`stage_distribution`].
pub fn stage_distribution_enumeration(
    areas: &[f64],
    field_area: f64,
    n_sensors: usize,
    pd: f64,
    cap_sensors: usize,
) -> DiscreteDist {
    stage_distribution_enumeration_budgeted(
        areas,
        field_area,
        n_sensors,
        pd,
        cap_sensors,
        &ComputeBudget::unlimited(),
    )
    .expect("an unlimited budget cannot be exceeded")
}

/// [`stage_distribution_enumeration`] under a cooperative
/// [`ComputeBudget`]: the depth-first recursion checkpoints every few
/// thousand leaves, so the exponential blow-up §3.3 describes becomes a
/// bounded-latency [`CoreError::DeadlineExceeded`] instead of a hang. A
/// run that completes is bit-identical to the unbudgeted one.
///
/// # Errors
///
/// Returns [`CoreError::DeadlineExceeded`] when the budget's deadline
/// passes mid-enumeration.
///
/// # Panics
///
/// Same input-validation conditions as [`stage_distribution`].
pub fn stage_distribution_enumeration_budgeted(
    areas: &[f64],
    field_area: f64,
    n_sensors: usize,
    pd: f64,
    cap_sensors: usize,
    budget: &ComputeBudget,
) -> Result<DiscreteDist, CoreError> {
    assert!(field_area > 0.0, "field area must be positive");
    assert!((0.0..=1.0).contains(&pd), "pd must be in [0, 1]");
    budget.checkpoint()?;
    let region_area: f64 = areas.iter().sum();
    if region_area <= 0.0 {
        return Ok(DiscreteDist::point_mass(0));
    }
    let cap = cap_sensors.min(n_sensors);
    let max_reports: usize = areas.len();
    let mut acc = vec![0.0; cap * max_reports + 1];

    // Per-sensor elementary events: (reports m, weight (area_r/S)·p(m, r)).
    // Precomputed once; the recursion multiplies them out per placement.
    let mut events: Vec<(usize, f64)> = Vec::new();
    for (idx, &area) in areas.iter().enumerate() {
        let periods = idx + 1;
        let b = Binomial::new(periods as u64, pd).expect("validated pd");
        for m in 0..=periods {
            events.push((m, (area / field_area) * b.pmf(m as u64)));
        }
    }

    // n = 0 term: probability of no sensor in the region.
    let none = Binomial::new(n_sensors as u64, region_area / field_area)
        .expect("valid fraction")
        .pmf(0);
    acc[0] += none;

    let mut leaves: u64 = 0;
    for n in 1..=cap {
        let base = gbd_stats::gamma::binomial_coef(n_sensors as u64, n as u64)
            * (1.0 - region_area / field_area).powi((n_sensors - n) as i32);
        // Depth-first enumeration of the n-tuple of per-sensor events.
        enumerate_tuples(&events, n, 0, base, &mut acc, budget, &mut leaves)?;
        budget.complete_stage();
    }
    Ok(DiscreteDist::new(acc).expect("enumeration yields a sub-stochastic pmf"))
}

fn enumerate_tuples(
    events: &[(usize, f64)],
    remaining: usize,
    reports_so_far: usize,
    weight: f64,
    acc: &mut [f64],
    budget: &ComputeBudget,
    leaves: &mut u64,
) -> Result<(), CoreError> {
    if remaining == 0 {
        acc[reports_so_far] += weight;
        *leaves += 1;
        if (*leaves).is_multiple_of(ENUMERATION_CHECK_INTERVAL) {
            budget.checkpoint()?;
        }
        return Ok(());
    }
    for &(m, w) in events {
        if w == 0.0 {
            continue;
        }
        enumerate_tuples(
            events,
            remaining - 1,
            reports_so_far + m,
            weight * w,
            acc,
            budget,
            leaves,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIELD: f64 = 1_000_000.0;

    #[test]
    fn per_sensor_distribution_is_proper() {
        let q = per_sensor_distribution(&[30.0, 20.0, 10.0], 0.9);
        assert!((q.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(q.support_max(), 3);
    }

    #[test]
    fn per_sensor_single_region_is_binomial() {
        let q = per_sensor_distribution(&[0.0, 0.0, 42.0], 0.7);
        let b = Binomial::new(3, 0.7).unwrap();
        for m in 0..=3usize {
            assert!((q.pmf(m) - b.pmf(m as u64)).abs() < 1e-14);
        }
    }

    #[test]
    fn per_sensor_empty_region_is_point_mass() {
        let q = per_sensor_distribution(&[0.0, 0.0], 0.9);
        assert_eq!(q.pmf(0), 1.0);
    }

    #[test]
    fn per_sensor_pd_zero_never_reports() {
        let q = per_sensor_distribution(&[10.0, 10.0], 0.0);
        assert_eq!(q.pmf(0), 1.0);
        assert_eq!(q.tail_sum(1), 0.0);
    }

    #[test]
    fn stage_mass_equals_xi() {
        let areas = [900.0, 600.0, 300.0];
        for cap in [0usize, 1, 2, 3, 5] {
            let d = stage_distribution(&areas, FIELD, 240, 0.9, cap);
            let xi = stage_accuracy(1800.0, FIELD, 240, cap);
            assert!((d.total_mass() - xi).abs() < 1e-12, "cap={cap}");
        }
    }

    #[test]
    fn stage_accuracy_increases_with_cap_to_one() {
        let mut prev = 0.0;
        for cap in 0..10 {
            let xi = stage_accuracy(1800.0, FIELD, 240, cap);
            assert!(xi >= prev);
            prev = xi;
        }
        assert!((stage_accuracy(1800.0, FIELD, 240, 240) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stage_accuracy_with_is_bit_identical_and_reuses_table() {
        let mut table = PmfTable::new();
        for n in [0usize, 3, 60, 240] {
            for cap in [0usize, 1, 3, 7, 240] {
                for area in [0.0, 1800.0, 500_000.0, FIELD] {
                    let want = stage_accuracy(area, FIELD, n, cap);
                    let got = stage_accuracy_with(area, FIELD, n, cap, &mut table);
                    assert_eq!(got.to_bits(), want.to_bits(), "n={n} cap={cap} area={area}");
                }
            }
        }
    }

    #[test]
    fn stage_distribution_with_zero_eps_is_bit_identical() {
        let areas = [900.0, 600.0, 300.0];
        let mut qn = DiscreteDist::point_mass(0);
        let mut conv = Vec::new();
        for cap in [0usize, 1, 2, 3, 5] {
            let want = stage_distribution(&areas, FIELD, 240, 0.9, cap);
            let (got, dropped) =
                stage_distribution_with(&areas, FIELD, 240, 0.9, cap, 0.0, &mut qn, &mut conv);
            assert_eq!(dropped, 0.0);
            assert_eq!(got.as_slice().len(), want.as_slice().len(), "cap={cap}");
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(g.to_bits(), w.to_bits(), "cap={cap}");
            }
        }
    }

    #[test]
    fn stage_distribution_with_eps_reports_its_error() {
        let areas = [900.0, 600.0, 300.0];
        let mut qn = DiscreteDist::point_mass(0);
        let mut conv = Vec::new();
        let exact = stage_distribution(&areas, FIELD, 240, 0.9, 3);
        // Just enough budget to trim the final support entry (and possibly
        // a bit more), so the trim provably engages.
        let eps = exact.pmf(exact.support_max()) * 1.0001;
        assert!(eps > 0.0);
        let (trimmed, dropped) =
            stage_distribution_with(&areas, FIELD, 240, 0.9, 3, eps, &mut qn, &mut conv);
        assert!(dropped <= eps);
        assert!(dropped > 0.0, "paper-sized tails carry trimmable mass");
        assert!(trimmed.support_max() < exact.support_max());
        assert!(exact.max_abs_diff(&trimmed) <= dropped);
        assert!((exact.total_mass() - trimmed.total_mass() - dropped).abs() < 1e-15);
    }

    #[test]
    fn enumeration_matches_convolution_small() {
        let areas = [500.0, 250.0, 125.0];
        for cap in [0usize, 1, 2, 3] {
            let fast = stage_distribution(&areas, FIELD, 60, 0.9, cap);
            let slow = stage_distribution_enumeration(&areas, FIELD, 60, 0.9, cap);
            assert!(fast.max_abs_diff(&slow) < 1e-12, "cap={cap}");
        }
    }

    #[test]
    fn enumeration_matches_convolution_many_regions() {
        // A slow target: 10 coverage classes (ms = 9).
        let areas: Vec<f64> = (1..=10).map(|i| 100.0 / i as f64).collect();
        let fast = stage_distribution(&areas, FIELD, 120, 0.8, 2);
        let slow = stage_distribution_enumeration(&areas, FIELD, 120, 0.8, 2);
        assert!(fast.max_abs_diff(&slow) < 1e-12);
    }

    #[test]
    fn cap_is_clamped_to_n() {
        let areas = [100_000.0];
        let a = stage_distribution(&areas, FIELD, 3, 0.9, 50);
        let b = stage_distribution(&areas, FIELD, 3, 0.9, 3);
        assert!(a.max_abs_diff(&b) < 1e-15);
        assert!((a.total_mass() - 1.0).abs() < 1e-12); // cap >= N: no truncation
    }

    #[test]
    fn empty_region_stage_is_point_mass() {
        let d = stage_distribution(&[0.0], FIELD, 240, 0.9, 3);
        assert_eq!(d.pmf(0), 1.0);
        assert!((d.total_mass() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn more_sensors_shift_mass_upward() {
        let areas = [900.0, 600.0, 300.0];
        let few = stage_distribution(&areas, FIELD, 60, 0.9, 6).normalized();
        let many = stage_distribution(&areas, FIELD, 240, 0.9, 6).normalized();
        assert!(many.tail_sum(1) > few.tail_sum(1));
        assert!(many.mean() > few.mean());
    }

    #[test]
    #[should_panic(expected = "pd")]
    fn bad_pd_panics() {
        per_sensor_distribution(&[1.0], 1.5);
    }

    #[test]
    fn budgeted_enumeration_matches_and_cancels() {
        use std::time::Duration;
        let areas = [500.0, 250.0, 125.0];
        let free = stage_distribution_enumeration(&areas, FIELD, 60, 0.9, 3);
        let budgeted = stage_distribution_enumeration_budgeted(
            &areas,
            FIELD,
            60,
            0.9,
            3,
            &ComputeBudget::with_deadline(Duration::from_secs(3600)),
        )
        .unwrap();
        assert!(free.max_abs_diff(&budgeted) < 1e-15);
        let expired = stage_distribution_enumeration_budgeted(
            &areas,
            FIELD,
            60,
            0.9,
            3,
            &ComputeBudget::with_deadline(Duration::ZERO),
        );
        assert!(matches!(expired, Err(CoreError::DeadlineExceeded { .. })));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn enumeration_equals_convolution(
            areas in proptest::collection::vec(0.0f64..5_000.0, 1..5),
            n_sensors in 1usize..100,
            pd in 0.0f64..=1.0,
            cap in 0usize..3,
        ) {
            let field = 1_000_000.0;
            let fast = stage_distribution(&areas, field, n_sensors, pd, cap);
            let slow = stage_distribution_enumeration(&areas, field, n_sensors, pd, cap);
            prop_assert!(fast.max_abs_diff(&slow) < 1e-11);
        }

        #[test]
        fn mass_never_exceeds_one(
            areas in proptest::collection::vec(0.0f64..5_000.0, 1..6),
            n_sensors in 0usize..300,
            pd in 0.0f64..=1.0,
            cap in 0usize..6,
        ) {
            let d = stage_distribution(&areas, 1_000_000.0, n_sensors, pd, cap);
            prop_assert!(d.total_mass() <= 1.0 + 1e-9);
        }
    }
}
